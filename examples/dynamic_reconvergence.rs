//! Dynamic networks: link failures, stale state and re-convergence
//! (Section 3.2 of the paper).
//!
//! A data-center-style leaf–spine fabric running the bounded hop-count
//! algebra loses a spine; the routing state it is left with is stale and
//! partially nonsense, yet — because the algebra is finite and strictly
//! increasing — the asynchronous computation re-converges to the unique
//! fixed point of the *new* topology, under a harsh schedule, without any
//! coordination.
//!
//! Run with: `cargo run --example dynamic_reconvergence`

use dbf_routing::prelude::*;
use dbf_routing::topology::generators;

fn main() {
    // 3 spines (0..3), 6 leaves (3..9).
    let fabric = generators::leaf_spine(3, 6).with_weights(|_, _| 1u64);
    let alg = BoundedHopCount::new(10);

    // Epoch 1: converge on the full fabric.
    let adj_full = AdjacencyMatrix::from_topology(&fabric);

    // Epoch 2: spine 0 dies — every link incident to it disappears.
    let mut degraded = fabric.clone();
    for leaf in 3..9 {
        degraded.remove_link(0, leaf);
    }
    let adj_degraded = AdjacencyMatrix::from_topology(&degraded);

    let mut run = DynamicRun::new();
    run.push_epoch(
        "full fabric",
        adj_full.clone(),
        Schedule::random(9, 400, ScheduleParams::default(), 1),
    );
    run.push_epoch(
        "spine 0 fails",
        adj_degraded.clone(),
        Schedule::random(9, 600, ScheduleParams::harsh(), 2),
    );

    let outcomes = run.execute(&alg, &RoutingState::identity(&alg, 9));

    for epoch in &outcomes {
        println!(
            "epoch '{}': σ-stable = {}, activations = {}",
            epoch.label, epoch.outcome.sigma_stable, epoch.outcome.activations
        );
    }

    // Leaf-to-leaf traffic still flows (through the surviving spines)…
    let after = &outcomes[1].outcome.final_state;
    println!(
        "\nleaf 3 → leaf 8 hop count after the failure: {}",
        after.get(3, 8)
    );
    assert_eq!(after.get(3, 8), &NatInf::fin(2));
    // …and the re-converged state is exactly the fixed point of the new
    // topology, as absolute convergence demands.
    let reference =
        iterate_to_fixed_point(&alg, &adj_degraded, &RoutingState::identity(&alg, 9), 100);
    assert_eq!(after, &reference.state);
    println!("re-converged state matches the fixed point of the degraded fabric");

    // The dead spine is unreachable from everyone.
    for leaf in 3..9 {
        assert_eq!(after.get(leaf, 0), &NatInf::Inf);
    }
    println!("spine 0 is correctly unreachable from every leaf");
}
