//! A policy-rich BGP-like network written in the Section 7 safe-by-design
//! policy language: route filtering, community tagging and conditional
//! preference manipulation — and still guaranteed to converge, even with
//! session resets and arbitrary message timing.
//!
//! The scenario is the classic "backup link" intent: AS 0 buys transit from
//! two upstreams (1 and 2), wants all traffic to prefer upstream 1, and
//! tags routes learned from upstream 2 so that its own customers can
//! recognise them.
//!
//! Run with: `cargo run --example policy_rich_bgp`

use dbf_routing::bgp::policy::{Condition, Policy};
use dbf_routing::prelude::*;
use dbf_routing::topology::Topology;

const BACKUP: u32 = 200;

fn main() {
    // Topology: 0 is the customer AS; 1 and 2 are its upstreams; 3 is a
    // remote destination reachable through either upstream; 4 is 0's own
    // customer.
    //
    //        3
    //       / \
    //      1   2
    //       \ /
    //        0
    //        |
    //        4
    let mut topo: Topology<Policy> = Topology::new(5);
    let id = Policy::identity;
    topo.set_link(1, 3, id());
    topo.set_link(2, 3, id());
    topo.set_link(0, 1, id());
    topo.set_link(0, 2, id());
    topo.set_link(0, 4, id());

    // Import policy at 0 for routes from upstream 2: tag them as backup and
    // deprefer them.
    topo.set_edge(
        0,
        2,
        Policy::AddComm(BACKUP).then(Policy::when(
            Condition::InComm(BACKUP),
            Policy::IncrPrefBy(50),
        )),
    );
    // 0's customer (AS 4) filters anything still carrying the backup tag —
    // a conditional policy, i.e. exactly the kind of route map that breaks
    // distributivity.
    topo.set_edge(
        4,
        0,
        Policy::when(Condition::InComm(BACKUP), Policy::Reject),
    );

    println!("running the BGP-like engine with session resets...\n");
    let report = BgpEngine::new(
        &topo,
        BgpConfig {
            session_resets: 4,
            seed: 11,
            ..BgpConfig::default()
        },
    )
    .run();

    println!(
        "converged = {} after {} updates ({} withdrawals, {} table changes)\n",
        report.converged,
        report.stats.updates_sent,
        report.stats.withdrawals_sent,
        report.stats.table_changes
    );

    for (who, label) in [
        (0usize, "AS 0 (dual-homed customer)"),
        (4usize, "AS 4 (0's customer)"),
    ] {
        println!("{label} routing table:");
        for dest in 0..5 {
            let r = report.final_state.get(who, dest);
            println!("  → {dest}: {r:?}");
        }
        println!();
    }

    // The intent was honoured: 0 reaches 3 via upstream 1 (level 0, no tag)…
    let r03 = report.final_state.get(0, 3);
    assert_eq!(r03.simple_path().unwrap().nodes(), &[0, 1, 3]);
    // …and the backup path via 2 exists in principle but was depreffed, so
    // the chosen route carries no backup tag, and 4 is therefore not cut off.
    let r43 = report.final_state.get(4, 3);
    assert!(
        !r43.is_invalid(),
        "AS 4 still reaches 3 through the primary path"
    );
    println!("intent honoured: primary via AS 1, backup depreffed, customer unaffected");
}
