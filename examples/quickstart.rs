//! Quickstart: the same routing problem solved synchronously, under an
//! adversarial asynchronous schedule, and by the message-level simulator —
//! all three agree, as Theorem 7/11 of the paper promise.
//!
//! Run with: `cargo run --example quickstart`

use dbf_routing::prelude::*;
use dbf_routing::topology::generators;

fn main() {
    // A small service-provider-ish topology: a ring of six routers with a
    // chord, and per-link latencies.
    let mut shape = generators::ring(6);
    shape.set_link(0, 3, ());
    let latency = |i: usize, j: usize| NatInf::fin(((i * 3 + j * 5) % 7 + 1) as u64);
    let topo = shape.with_weights(latency);

    let alg = ShortestPaths::new();
    let adj = AdjacencyMatrix::from_topology(&topo);
    let clean = RoutingState::identity(&alg, 6);

    // 1. The synchronous model: repeated application of σ.
    let sync = iterate_to_fixed_point(&alg, &adj, &clean, 100);
    println!(
        "synchronous:  converged in {} rounds of σ (stable = {})",
        sync.iterations, sync.converged
    );

    // 2. The asynchronous iterate δ under a harsh schedule: messages are
    //    delayed, duplicated and reordered, nodes activate sporadically.
    let schedule = Schedule::random(6, 400, ScheduleParams::harsh(), 2024);
    let asynchronous = run_delta(&alg, &adj, &clean, &schedule);
    println!(
        "asynchronous: {} activations, σ-stable = {}, same answer = {}",
        asynchronous.activations,
        asynchronous.sigma_stable,
        asynchronous.final_state == sync.state
    );

    // 3. The message-level simulator with loss, duplication and reordering.
    let sim = EventSim::new(&alg, &adj, SimConfig::adversarial(7)).run();
    println!(
        "simulator:    {} messages ({} lost, {} duplicated), same answer = {}",
        sim.stats.sent,
        sim.stats.lost,
        sim.stats.duplicated,
        sim.final_state == sync.state
    );

    // Print node 0's routing table.
    println!("\nnode 0's routing table (destination: best latency):");
    for dest in 0..6 {
        println!("  → {dest}: {}", sync.state.get(0, dest));
    }

    assert_eq!(asynchronous.final_state, sync.state);
    assert_eq!(sim.final_state, sync.state);
    println!("\nall three computations agree — absolute convergence in action");
}
