//! Count-to-infinity and its cures — the motivation for Section 5 of the
//! paper.
//!
//! Plain shortest-path distance-vector routing converges from a *clean*
//! start, but from an arbitrary (stale) state it can count to infinity: two
//! routers bounce a route to a vanished destination back and forth, each
//! time one hop longer.  The paper's Theorem 7 explains the classic RIP fix
//! (make the carrier finite with a hop limit), and Theorem 11 the BGP-style
//! fix (track paths and drop loops).  This example shows all three
//! behaviours side by side.
//!
//! Run with: `cargo run --example count_to_infinity`

use dbf_routing::prelude::*;
use dbf_routing::topology::generators;
use dbf_routing::topology::Topology;

fn main() {
    // Nodes 0 and 1 are connected; node 2 has just disappeared, but both
    // survivors still hold stale routes towards it through each other.
    let mut shape: Topology<()> = Topology::new(3);
    shape.set_link(0, 1, ());

    // ── 1. Unbounded distance-vector: the asynchronous iterate never
    //       stabilises within the horizon; the metric just keeps growing.
    let alg = ShortestPaths::new();
    let adj = AdjacencyMatrix::<ShortestPaths>::from_fn(3, |i, j| {
        if shape.has_edge(i, j) {
            Some(NatInf::fin(1))
        } else {
            None
        }
    });
    let mut stale = RoutingState::identity(&alg, 3);
    stale.set(0, 2, NatInf::fin(5));
    stale.set(1, 2, NatInf::fin(5));
    let out = run_delta(&alg, &adj, &stale, &Schedule::synchronous(3, 300));
    println!("unbounded distance-vector after 300 rounds:");
    println!(
        "  node 0's metric to the vanished node 2: {}   (σ-stable: {})",
        out.final_state.get(0, 2),
        out.sigma_stable
    );

    // ── 2. The RIP cure: a finite carrier (hop limit 15).  The same stale
    //       state now counts up to the limit and then flushes to ∞.
    let report = RipEngine::new(
        &shape,
        RipConfig {
            split_horizon: SplitHorizon::Off, // keep the pathology visible
            route_timeout: u64::MAX / 4,      // timeouts disabled: the limit does the work
            max_time: 20_000,
            ..RipConfig::default()
        },
    )
    .with_stale_route(0, 2, NatInf::fin(5), Some(1))
    .with_stale_route(1, 2, NatInf::fin(5), Some(0))
    .run();
    println!("\nRIP-like engine (hop limit 15) from the same stale state:");
    println!(
        "  node 0's metric to node 2: {}   (converged: {}, table changes: {})",
        report.final_state.get(0, 2),
        report.converged,
        report.stats.table_changes
    );

    // ── 3. The path-vector cure: routes carry their paths, loops are
    //       dropped, and the stale routes are flushed after a single
    //       exchange — no counting at all.
    let pv = PathVector::new(ShortestPaths::new(), 3);
    let ring = generators::line(2); // only nodes 0 and 1 are connected
    let mut topo3: Topology<NatInf> = Topology::new(3);
    for (i, j, _) in ring.edges() {
        topo3.set_edge(i, j, NatInf::fin(1));
    }
    let adj_pv = lift_topology(&pv, &topo3);
    let stale_pv = RoutingState::from_fn(3, |i, j| {
        if i == j {
            pv.trivial()
        } else if j == 2 {
            // a stale claim of reaching 2 through the other survivor
            pv.lift_route(
                NatInf::fin(5),
                SimplePath::from_nodes(vec![i, 1 - i, 2]).unwrap(),
            )
        } else {
            pv.invalid()
        }
    });
    let out_pv = run_delta(&pv, &adj_pv, &stale_pv, &Schedule::synchronous(3, 50));
    println!("\npath-vector lifting from the same stale state:");
    println!(
        "  node 0's route to node 2: {:?}   (σ-stable: {})",
        out_pv.final_state.get(0, 2),
        out_pv.sigma_stable
    );

    assert!(!out.sigma_stable, "unbounded DV must keep counting");
    assert!(report.converged, "the hop limit must cure the count");
    assert!(out_pv.sigma_stable, "path tracking must cure the count");
    assert!(out_pv.final_state.get(0, 2).is_invalid());
    println!("\nsummary: unbounded DV diverges; RIP counts to its limit; path-vector flushes immediately");
}
