//! BGP wedgies and oscillation — and how the increasing condition removes
//! them.
//!
//! The DISAGREE configuration has two stable states: which one the network
//! ends up in depends purely on message timing, and once it is in the
//! unintended one, getting out requires coordinated manual intervention
//! (RFC 4264 calls these "BGP wedgies").  The BAD GADGET has *no* stable
//! state and oscillates forever.  Both are expressible in today's BGP; the
//! paper's strictly-increasing condition outlaws exactly these
//! configurations, and this example shows the difference concretely.
//!
//! Run with: `cargo run --example bgp_wedgie`

use dbf_routing::prelude::*;

fn main() {
    // ── DISAGREE: same starting state, two different schedules, two
    //    different outcomes.
    let alg = SppAlgebra::disagree();
    let adj = alg.adjacency();
    let clean = RoutingState::identity(&alg, 3);

    let mut node1_first = Schedule::synchronous(3, 60);
    let mut node2_first = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        node1_first.set_activation(t, 2, false);
        node2_first.set_activation(t, 1, false);
    }

    let out_a = run_delta(&alg, &adj, &clean, &node1_first);
    let out_b = run_delta(&alg, &adj, &clean, &node2_first);
    println!("DISAGREE (the wedgie):");
    println!(
        "  schedule A (node 1 moves first): 1→0 via {:?}, 2→0 via {:?}",
        out_a.final_state.get(1, 0).simple_path().unwrap(),
        out_a.final_state.get(2, 0).simple_path().unwrap(),
    );
    println!(
        "  schedule B (node 2 moves first): 1→0 via {:?}, 2→0 via {:?}",
        out_b.final_state.get(1, 0).simple_path().unwrap(),
        out_b.final_state.get(2, 0).simple_path().unwrap(),
    );
    assert_ne!(out_a.final_state, out_b.final_state);
    println!("  → the outcome depends on timing: absolute convergence fails\n");

    // ── BAD GADGET: no stable state at all.
    let bad = SppAlgebra::bad_gadget();
    let bad_adj = bad.adjacency();
    let out = iterate_to_fixed_point(&bad, &bad_adj, &RoutingState::identity(&bad, 4), 1_000);
    println!("BAD GADGET:");
    println!(
        "  after {} synchronous rounds: converged = {}",
        out.iterations, out.converged
    );
    assert!(!out.converged);
    println!("  → persistent oscillation, exactly as Varadhan/Griffin observed\n");

    // ── The cure: the same DISAGREE topology with *increasing* preferences
    //    (each node prefers its own direct route).  Both schedules now give
    //    the same answer.
    use std::collections::BTreeMap;
    let mut prefs = BTreeMap::new();
    prefs.insert((1usize, vec![1usize, 0usize]), 0u32);
    prefs.insert((1, vec![1, 2, 0]), 1);
    prefs.insert((2, vec![2, 0]), 0);
    prefs.insert((2, vec![2, 1, 0]), 1);
    let fixed = SppAlgebra::new(3, 0, prefs);
    let fixed_adj = fixed.adjacency();
    let clean = RoutingState::identity(&fixed, 3);
    let mut node1_first = Schedule::synchronous(3, 60);
    let mut node2_first = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        node1_first.set_activation(t, 2, false);
        node2_first.set_activation(t, 1, false);
    }
    let out_a = run_delta(&fixed, &fixed_adj, &clean, &node1_first);
    let out_b = run_delta(&fixed, &fixed_adj, &clean, &node2_first);
    println!("DISAGREE with increasing preferences:");
    println!(
        "  schedule A: 1→0 via {:?};  schedule B: 1→0 via {:?}",
        out_a.final_state.get(1, 0).simple_path().unwrap(),
        out_b.final_state.get(1, 0).simple_path().unwrap(),
    );
    assert_eq!(out_a.final_state, out_b.final_state);
    println!("  → one predictable outcome, whatever the timing: the wedgie is gone");
}
