//! Integration tests reproducing the paper's tables directly:
//!
//! * **Table 1** — the algebraic property matrix for every bundled algebra
//!   (which laws are required, which optional ones each algebra satisfies);
//! * **Table 2** — each example algebra solves its stated path problem:
//!   the DBF fixed point matches an independent exhaustive-path oracle for
//!   the distributive algebras.

use dbf_routing::algebra::combinators::prod::DirectProduct;
use dbf_routing::algebra::instances::longest::LongestPaths;
use dbf_routing::algebra::properties::PropertyReport;
use dbf_routing::prelude::*;
use dbf_routing::topology::generators;

#[test]
fn table1_property_matrix_for_the_bundled_algebras() {
    // (name, report, expect_increasing, expect_strictly, expect_distributive)
    let rows = vec![
        (
            PropertyReport::analyse("shortest-paths", &ShortestPaths::new(), 1, 48, 16),
            true,
            true,
            true,
        ),
        (
            PropertyReport::analyse("longest-paths", &LongestPaths::new(), 2, 48, 16),
            false,
            false,
            true,
        ),
        (
            PropertyReport::analyse("widest-paths", &WidestPaths::new(), 3, 48, 16),
            true,
            false,
            true,
        ),
        (
            PropertyReport::analyse("most-reliable", &MostReliablePaths::new(), 4, 48, 16),
            true,
            true,
            true,
        ),
        (
            PropertyReport::analyse_exhaustive("hop-count(15)", &BoundedHopCount::rip(), 5, 16),
            true,
            true,
            true,
        ),
        (
            PropertyReport::analyse(
                "filtered-shortest",
                &FilteredShortestPaths::new(),
                6,
                48,
                24,
            ),
            true,
            true,
            false,
        ),
        (
            PropertyReport::analyse(
                "stratified-shortest",
                &StratifiedShortestPaths::new(),
                7,
                48,
                24,
            ),
            true,
            true,
            false,
        ),
        (
            PropertyReport::analyse("bgp-section7", &BgpAlgebra::new(5), 8, 48, 24),
            true,
            true,
            false,
        ),
        (
            PropertyReport::analyse("gao-rexford", &GaoRexford::new(5), 9, 48, 24),
            true,
            true,
            false,
        ),
        (
            PropertyReport::analyse(
                "path-vector(shortest)",
                &PathVector::new(ShortestPaths::new(), 5),
                10,
                48,
                24,
            ),
            true,
            true,
            false,
        ),
    ];

    for (report, incr, strict, distr) in rows {
        assert!(
            report.satisfies_required_laws(),
            "{}: every bundled algebra must satisfy the Definition 1 laws",
            report.algebra
        );
        assert_eq!(
            report.increasing.holds(),
            incr,
            "{}: increasing",
            report.algebra
        );
        assert_eq!(
            report.strictly_increasing.holds(),
            strict,
            "{}: strictly increasing",
            report.algebra
        );
        assert_eq!(
            report.distributive.holds(),
            distr,
            "{}: distributive",
            report.algebra
        );
    }

    // The deliberately broken direct product is rejected by the checkers.
    let broken = PropertyReport::analyse(
        "direct-product (broken)",
        &DirectProduct::new(WidestPaths::new(), ShortestPaths::new()),
        11,
        32,
        8,
    );
    assert!(!broken.satisfies_required_laws());
    assert!(!broken.selective.holds());
}

#[test]
fn table2_algebras_solve_their_path_problems() {
    let shape = generators::connected_random(6, 0.5, 13);

    // shortest paths: min-plus
    {
        let alg = ShortestPaths::new();
        let topo = shape.with_weights(|i, j| NatInf::fin(((i * 7 + j * 3) % 9 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);
        assert_eq!(out.state, exhaustive_path_optimum(&alg, &adj));
    }

    // widest paths: max-min (bottleneck bandwidth)
    {
        let alg = WidestPaths::new();
        let topo = shape.with_weights(|i, j| NatInf::fin(((i * 5 + j) % 50 + 10) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);
        assert_eq!(out.state, exhaustive_path_optimum(&alg, &adj));
    }

    // most reliable paths: max-times
    {
        let alg = MostReliablePaths::new();
        let topo =
            shape.with_weights(|i, j| alg.edge(0.5 + 0.45 * (((i * 3 + j) % 10) as f64) / 10.0));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);
        assert_eq!(out.state, exhaustive_path_optimum(&alg, &adj));
        // reachability sanity: every pair on a connected graph has a
        // non-zero success probability
        for (i, j, r) in out.state.entries() {
            if i != j {
                assert!(r.value() > 0.0, "({i},{j}) should be reachable");
            }
        }
    }

    // bounded hop count (the RIP algebra): agrees with unbounded shortest
    // paths under unit weights because the network is small
    {
        let alg = BoundedHopCount::rip();
        let topo = shape.with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);

        let unit = ShortestPaths::new();
        let unit_topo = shape.with_weights(|_, _| NatInf::fin(1));
        let unit_adj = AdjacencyMatrix::from_topology(&unit_topo);
        let unit_out =
            iterate_to_fixed_point(&unit, &unit_adj, &RoutingState::identity(&unit, 6), 100);
        for (i, j, r) in out.state.entries() {
            assert_eq!(r, unit_out.state.get(i, j), "hop counts agree at ({i},{j})");
        }
    }

    // longest paths (the non-increasing row of Table 2): satisfies the
    // required laws but its fixed point on a cyclic graph is the degenerate
    // all-∞ state, unlike the exhaustive simple-path optimum
    {
        let alg = LongestPaths::new();
        let topo = shape.with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 400);
        if out.converged {
            for (i, j, r) in out.state.entries() {
                if i != j {
                    assert_eq!(r, &NatInf::Inf);
                }
            }
        }
    }
}
