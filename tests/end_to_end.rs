//! End-to-end integration tests spanning every crate in the workspace:
//! the same routing problems are solved by the synchronous iterate, the
//! asynchronous iterate, the message-level simulator, the protocol engines
//! and the threaded runtime, and all of them must agree.

use dbf_routing::algebra::algebra::SplitMix64;
use dbf_routing::asynch::convergence::{schedule_ensemble, state_ensemble};
use dbf_routing::bgp::algebra::random_policy;
use dbf_routing::bgp::policy::Policy;
use dbf_routing::prelude::*;
use dbf_routing::topology::{generators, Topology};

/// Every execution model agrees on a widest-paths problem (an increasing but
/// not strictly increasing algebra, exercised through the path-vector
/// lifting where strictness is needed).
#[test]
fn all_execution_models_agree_on_widest_paths() {
    let alg = WidestPaths::new();
    let topo = generators::connected_random(7, 0.4, 9)
        .with_weights(|i, j| NatInf::fin(((i * 11 + j * 3) % 40 + 10) as u64));
    let adj = AdjacencyMatrix::from_topology(&topo);
    let clean = RoutingState::identity(&alg, 7);

    let reference = iterate_to_fixed_point(&alg, &adj, &clean, 200);
    assert!(reference.converged);

    // asynchronous iterate under several schedules
    for seed in 0..3 {
        let sched = Schedule::random(7, 400, ScheduleParams::harsh(), seed);
        let out = run_delta(&alg, &adj, &clean, &sched);
        assert!(out.sigma_stable);
        assert_eq!(out.final_state, reference.state);
    }

    // message-level simulator with faults
    let sim = EventSim::new(&alg, &adj, SimConfig::adversarial(3)).run();
    assert!(sim.sigma_stable);
    assert_eq!(sim.final_state, reference.state);

    // genuinely concurrent threaded runtime
    let threaded = run_threaded(&alg, &adj, &clean, ThreadedConfig::default());
    assert!(threaded.sigma_stable);
    assert_eq!(threaded.final_state, reference.state);
}

/// The RIP-like engine, the hop-count algebra's δ and the σ fixed point all
/// agree on a mid-sized random topology.
#[test]
fn rip_engine_agrees_with_the_algebraic_model() {
    let shape = generators::connected_random(9, 0.3, 31);
    let alg = BoundedHopCount::rip();
    let adj = AdjacencyMatrix::<BoundedHopCount>::from_fn(9, |i, j| {
        if shape.has_edge(i, j) {
            Some(1u64)
        } else {
            None
        }
    });
    let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 9), 100);
    assert!(reference.converged);

    // protocol engine (with loss)
    let report = RipEngine::new(&shape, RipConfig::lossy(5, 0.15)).run();
    assert!(report.converged);
    assert_eq!(report.final_state, reference.state);

    // asynchronous iterate from a garbage state
    let pool = alg.all_routes();
    let states = state_ensemble(&alg, 9, &pool, 2, 5);
    let schedules = schedule_ensemble(9, 400, 2, 6);
    let result = check_absolute_convergence(&alg, &adj, &states, &schedules).unwrap();
    assert_eq!(result.fixed_point, reference.state);
}

/// The BGP-like protocol engine and the Section 7 algebra's synchronous
/// fixed point agree under randomly generated policies, and the policy-rich
/// stable state is only locally (not globally) optimal.
#[test]
fn bgp_engine_agrees_with_the_section7_algebra() {
    let n = 6;
    let shape = generators::connected_random(n, 0.45, 77);
    let mut rng = SplitMix64::new(123);
    let topo: Topology<Policy> = shape.with_weights(|_, _| random_policy(&mut rng, 2));

    let alg = dbf_routing::bgp::BgpAlgebra::new(n);
    let adj = alg.adjacency_from_topology(&topo);
    let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
    assert!(reference.converged);

    let report = BgpEngine::new(
        &topo,
        BgpConfig {
            seed: 9,
            session_resets: 3,
            ..BgpConfig::default()
        },
    )
    .run();
    assert!(report.converged);
    assert_eq!(report.final_state, reference.state);

    // local optimality: the fixed point is stable but no better than the
    // exhaustive all-paths optimum
    let oracle = exhaustive_path_optimum(&alg, &adj);
    for (i, j, r) in reference.state.entries() {
        assert!(
            alg.route_le(oracle.get(i, j), r),
            "({i},{j}): global optimum must be at least as preferred"
        );
    }
}

/// Dynamic-network reconvergence across the whole stack: a policy change and
/// a link failure mid-run, with the final state checked against the new
/// topology's fixed point.
#[test]
fn dynamic_policy_and_topology_changes_reconverge() {
    let n = 6;
    let alg = dbf_routing::bgp::BgpAlgebra::new(n);
    let shape = generators::ring(n);
    let base: Topology<Policy> = shape.with_weights(|_, _| Policy::identity());

    // epoch 2: node 0 starts filtering everything from node 1
    let mut filtered = base.clone();
    filtered.set_edge(0, 1, Policy::Reject);
    // epoch 3: additionally, the link between 3 and 4 fails
    let mut failed = filtered.clone();
    failed.remove_link(3, 4);

    let mut run = DynamicRun::new();
    run.push_epoch(
        "baseline",
        alg.adjacency_from_topology(&base),
        Schedule::random(n, 300, ScheduleParams::default(), 1),
    );
    run.push_epoch(
        "policy change: 0 filters 1",
        alg.adjacency_from_topology(&filtered),
        Schedule::random(n, 300, ScheduleParams::harsh(), 2),
    );
    run.push_epoch(
        "link 3–4 fails",
        alg.adjacency_from_topology(&failed),
        Schedule::random(n, 400, ScheduleParams::harsh(), 3),
    );

    let outcomes = run.execute(&alg, &RoutingState::identity(&alg, n));
    for epoch in &outcomes {
        assert!(
            epoch.outcome.sigma_stable,
            "epoch '{}' must reconverge",
            epoch.label
        );
    }
    let last = &outcomes[2].outcome.final_state;
    let reference = iterate_to_fixed_point(
        &alg,
        &alg.adjacency_from_topology(&failed),
        &RoutingState::identity(&alg, n),
        200,
    );
    assert_eq!(last, &reference.state);
}

/// The ultrametric machinery certifies convergence for the same systems the
/// simulations exercise: the Figure 1 implication chain end-to-end.
#[test]
fn metric_certificates_match_observed_convergence() {
    // Distance-vector case (Theorem 7): hop count on a grid.
    let alg = BoundedHopCount::new(8);
    let topo = generators::grid(2, 3).with_weights(|_, _| 1u64);
    let adj = AdjacencyMatrix::from_topology(&topo);
    let metric = HeightMetric::new(alg);
    let pool = alg.all_routes();
    let states = state_ensemble(&alg, 6, &pool, 6, 21);
    check_strictly_contracting_on_orbits(&alg, &adj, &metric, &states).unwrap();
    let fp = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
    check_contracting_on_fixed_point(&alg, &adj, &metric, &fp.state, &states).unwrap();
    // Lemma 2's bound on synchronous convergence time holds for every start.
    for x0 in &states {
        let chain = orbit_distance_chain(&alg, &adj, &metric, x0, 200);
        assert!(chain.len() as u64 <= metric.bound());
    }

    // Path-vector case (Theorem 11): the Section 7 algebra on a ring.
    let n = 4;
    let bgp = dbf_routing::bgp::BgpAlgebra::new(n);
    let topo = generators::ring(n).with_weights(|_, _| Policy::IncrPrefBy(1));
    let adj = bgp.adjacency_from_topology(&topo);
    let metric = PathVectorMetric::new(bgp, &adj);
    let bgp = dbf_routing::bgp::BgpAlgebra::new(n);
    let pool = bgp.sample_routes(3, 32);
    let states = state_ensemble(&bgp, n, &pool, 5, 33);
    check_strictly_contracting_on_orbits(&bgp, &adj, &metric, &states).unwrap();
    let fp = iterate_to_fixed_point(&bgp, &adj, &RoutingState::identity(&bgp, n), 100);
    check_contracting_on_fixed_point(&bgp, &adj, &metric, &fp.state, &states).unwrap();
    // ... and δ indeed converges absolutely for those same states.
    let schedules = schedule_ensemble(n, 250, 2, 41);
    let result = check_absolute_convergence(&bgp, &adj, &states, &schedules).unwrap();
    assert_eq!(result.fixed_point, fp.state);
}
