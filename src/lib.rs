//! # dbf-routing — policy-rich Distributed Bellman-Ford routing
//!
//! A Rust library reproducing *"Asynchronous Convergence of Policy-Rich
//! Distributed Bellman-Ford Routing Protocols"* (Daggitt, Gurney & Griffin,
//! SIGCOMM 2018): routing algebras, the synchronous matrix model, the
//! asynchronous computation model with message loss/reordering/duplication,
//! the ultrametric convergence machinery, a safe-by-design BGP-like policy
//! language, and message-level protocol engines.
//!
//! This facade crate re-exports the workspace members under stable module
//! names and provides a [`prelude`] for convenient glob imports.
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`algebra`] | routing algebras, Table 1 property checkers, Table 2 instances | §2.1 |
//! | [`paths`] | simple paths, path algebras (P1–P3), the path-vector lifting | §5.1 |
//! | [`topology`] | network topologies and generators | — |
//! | [`matrix`] | adjacency matrices, routing states, `σ`, synchronous iteration | §2.2–2.3 |
//! | [`metric`] | ultrametrics, heights, contraction checkers | §3.3, §4.1, §5.2 |
//! | [`asynch`] | schedules (S1–S3), the asynchronous iterate `δ`, simulators, dynamic networks | §3 |
//! | [`bgp`] | the safe-by-design policy-rich algebra, Gao-Rexford, SPP gadgets | §7 |
//! | [`protocols`] | RIP-like and BGP-like engines, threaded runtime, wire formats | — |
//! | [`telemetry`] | zero-cost-when-off instrumentation: sinks, metrics, JSONL traces | — |
//!
//! ## Quick start
//!
//! ```
//! use dbf_routing::prelude::*;
//!
//! // A ring of five routers running shortest paths.
//! let alg = ShortestPaths::new();
//! let topo = dbf_routing::topology::generators::ring(5).with_weights(|_, _| NatInf::fin(1));
//! let adj = AdjacencyMatrix::from_topology(&topo);
//!
//! // Synchronous convergence from the clean state…
//! let sync = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
//! assert!(sync.converged);
//!
//! // …and the asynchronous iterate reaches the same answer under an
//! // adversarial schedule with delays, duplication and reordering.
//! let sched = Schedule::random(5, 300, ScheduleParams::harsh(), 42);
//! let async_run = run_delta(&alg, &adj, &RoutingState::identity(&alg, 5), &sched);
//! assert!(async_run.sigma_stable);
//! assert_eq!(async_run.final_state, sync.state);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dbf_algebra as algebra;
pub use dbf_async as asynch;
pub use dbf_bgp as bgp;
pub use dbf_matrix as matrix;
pub use dbf_metric as metric;
pub use dbf_paths as paths;
pub use dbf_protocols as protocols;
pub use dbf_telemetry as telemetry;
pub use dbf_topology as topology;

/// A kitchen-sink prelude re-exporting the most commonly used items from
/// every workspace crate.
pub mod prelude {
    pub use dbf_algebra::prelude::*;
    pub use dbf_async::prelude::*;
    pub use dbf_bgp::prelude::*;
    pub use dbf_matrix::prelude::*;
    pub use dbf_metric::prelude::*;
    pub use dbf_paths::prelude::*;
    pub use dbf_protocols::prelude::*;
    // `dbf_topology::prelude::NodeId` is the same `usize` alias as
    // `dbf_paths::NodeId`; re-export the rest explicitly to avoid an
    // ambiguous glob.
    pub use dbf_topology::prelude::{generators, Topology, TopologyChange};
}
