//! Property-based tests for schedules (S1–S3), the asynchronous iterate `δ`
//! and the event simulator.

use dbf_algebra::prelude::*;
use dbf_async::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = ScheduleParams> {
    (0.2f64..1.0, 1usize..8, 0.0f64..0.4, 0.0f64..0.4).prop_map(
        |(activation_prob, max_delay, duplicate_prob, reorder_prob)| ScheduleParams {
            activation_prob,
            max_delay,
            duplicate_prob,
            reorder_prob,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated schedule satisfies the finite forms of S1–S3.
    #[test]
    fn random_schedules_satisfy_the_axioms(n in 2usize..7, p in params(), seed in 0u64..1000) {
        let horizon = 120;
        let s = Schedule::random(n, horizon, p, seed);
        prop_assert!(s.check_s2());
        prop_assert!(s.check_s3_lag(p.max_delay.max(1)));
        let window = ((1.0 / p.activation_prob.clamp(0.05, 1.0)).ceil() as usize) * 4;
        prop_assert!(s.check_s1_window(window.min(horizon)));
        prop_assert!(s.max_lag() >= 1);
    }

    /// δ under the synchronous schedule is exactly σ iteration, for any
    /// horizon.
    #[test]
    fn synchronous_delta_is_sigma(n in 3usize..6, horizon in 1usize..10, seed in 0u64..200) {
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(n, 0.5, seed)
            .with_weights(|i, j| NatInf::fin(((i + 2 * j) % 5 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let x0 = RoutingState::identity(&alg, n);
        let delta = run_delta(&alg, &adj, &x0, &Schedule::synchronous(n, horizon));
        prop_assert_eq!(delta.final_state, sigma_k(&alg, &adj, &x0, horizon));
    }

    /// Theorem 7, sampled: the hop-count algebra reaches the same σ-stable
    /// state under arbitrary random schedules and garbage starts.
    #[test]
    fn hopcount_delta_converges_absolutely(seed in 0u64..100, p in params()) {
        let n = 5;
        let alg = BoundedHopCount::new(8);
        let topo = generators::connected_random(n, 0.5, seed).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
        prop_assert!(reference.converged);

        let garbage = RoutingState::<BoundedHopCount>::from_fn(n, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                NatInf::fin((i as u64 * 31 + j as u64 * 17 + seed) % 9)
            }
        });
        let sched = Schedule::random(n, 400, p, seed ^ 0xA5);
        let out = run_delta(&alg, &adj, &garbage, &sched);
        prop_assert!(out.sigma_stable, "schedule params {p:?} broke convergence");
        prop_assert_eq!(out.final_state, reference.state);
    }

    /// The event simulator's outcome is independent of loss/duplication
    /// rates (only its cost changes).
    #[test]
    fn simulator_outcome_is_fault_independent(seed in 0u64..50, loss in 0.0f64..0.4) {
        let n = 5;
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(n, 0.5, seed)
            .with_weights(|i, j| NatInf::fin(((i * 3 + j) % 6 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);

        let cfg = SimConfig {
            loss_prob: loss,
            duplicate_prob: loss / 2.0,
            min_delay: 1,
            max_delay: 10,
            seed,
            ..SimConfig::default()
        };
        let out = EventSim::new(&alg, &adj, cfg).run();
        prop_assert!(!out.truncated);
        prop_assert!(out.sigma_stable);
        prop_assert_eq!(out.final_state, reference.state);
        prop_assert!(out.stats.delivered <= out.stats.sent + out.stats.duplicated);
    }
}

// ---------------------------------------------------------------------------
// ScheduleTrace: the observed-schedule recorder certifies S1–S3 for every
// fault profile the generator emits, with the SAME `(w, ℓ)` parameters the
// convergence bounds are computed from (`dbf_scenario::bound::schedule_window`
// uses `w = ⌈1 / activation.clamp(0.05, 1.0)⌉·4` for random schedules,
// `w = period` for adversarial-stale ones, and `ℓ = max_delay.max(1)`).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every random fault profile — activation rate, delay, duplication,
    /// reordering — yields an execution whose recorded trace certifies
    /// S1(w), S2 and S3(ℓ), and the recording is lossless.
    #[test]
    fn recorded_random_schedules_certify(n in 2usize..7, p in params(), seed in 0u64..1000) {
        let horizon = 120;
        let s = Schedule::random(n, horizon, p, seed);
        let trace = ScheduleTrace::record(&s);
        let window = ((1.0 / p.activation_prob.clamp(0.05, 1.0)).ceil() as usize) * 4;
        let lag = p.max_delay.max(1);
        prop_assert_eq!(trace.certify(window, lag), Ok(()));
        prop_assert_eq!(trace.max_lag(), s.max_lag());
        prop_assert_eq!(trace.into_schedule(), s);
    }

    /// The adversarial-stale profile — one node activating every `period`
    /// steps on maximally stale data — certifies against exactly the
    /// `(w, ℓ) = (period, max_lag)` the bound oracle assigns it.
    #[test]
    fn recorded_adversarial_schedules_certify(
        n in 2usize..7,
        period in 1usize..6,
        max_lag in 1usize..9,
        seed in 0u64..50,
    ) {
        let horizon = 60;
        let victim = (seed as usize) % n;
        let s = Schedule::adversarial_stale(n, horizon, victim, period, max_lag);
        let trace = ScheduleTrace::record(&s);
        prop_assert_eq!(trace.certify(period, max_lag), Ok(()));
        // Tightness of the certificate: the victim really is `max_lag`
        // stale once the horizon allows it, so any smaller ℓ is refused.
        if max_lag > 1 && horizon > max_lag {
            prop_assert!(matches!(
                trace.certify(period, max_lag - 1),
                Err(AxiomViolation::S3 { .. })
            ));
        }
        prop_assert_eq!(trace.into_schedule(), s);
    }

    /// Corrupting a single cell of a certified trace flips certification
    /// and the witness names the corrupted coordinate.
    #[test]
    fn corrupted_traces_are_rejected_with_a_witness(
        n in 2usize..6,
        t in 10usize..40,
        coord in (0usize..25, 0usize..25),
        seed in 0u64..100,
    ) {
        let horizon = 40;
        let lag = 4;
        let (i, j) = (coord.0 % n, coord.1 % n);
        let mut s = Schedule::random(n, horizon, ScheduleParams::default(), seed);

        // S3 corruption: a read staler than the bound.
        s.set_data_time(t, i, j, t - lag - 1);
        let trace = ScheduleTrace::record(&s);
        match trace.certify(horizon, lag) {
            Err(AxiomViolation::S3 { t: wt, i: wi, j: wj, .. }) => {
                // An earlier organic violation cannot exist (the generator
                // respects the default max_delay = 4 = lag), so the witness
                // is exactly the corrupted cell.
                prop_assert_eq!((wt, wi, wj), (t, i, j));
            }
            other => prop_assert!(false, "expected an S3 witness, got {other:?}"),
        }

        // S2 corruption: a read from the future.
        s.set_data_time(t, i, j, t);
        let trace = ScheduleTrace::record(&s);
        prop_assert!(matches!(
            trace.certify(horizon, lag),
            Err(AxiomViolation::S2 { .. })
        ));
    }
}
