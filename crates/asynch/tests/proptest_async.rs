//! Property-based tests for schedules (S1–S3), the asynchronous iterate `δ`
//! and the event simulator.

use dbf_algebra::prelude::*;
use dbf_async::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = ScheduleParams> {
    (0.2f64..1.0, 1usize..8, 0.0f64..0.4, 0.0f64..0.4).prop_map(
        |(activation_prob, max_delay, duplicate_prob, reorder_prob)| ScheduleParams {
            activation_prob,
            max_delay,
            duplicate_prob,
            reorder_prob,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated schedule satisfies the finite forms of S1–S3.
    #[test]
    fn random_schedules_satisfy_the_axioms(n in 2usize..7, p in params(), seed in 0u64..1000) {
        let horizon = 120;
        let s = Schedule::random(n, horizon, p, seed);
        prop_assert!(s.check_s2());
        prop_assert!(s.check_s3_lag(p.max_delay.max(1)));
        let window = ((1.0 / p.activation_prob.clamp(0.05, 1.0)).ceil() as usize) * 4;
        prop_assert!(s.check_s1_window(window.min(horizon)));
        prop_assert!(s.max_lag() >= 1);
    }

    /// δ under the synchronous schedule is exactly σ iteration, for any
    /// horizon.
    #[test]
    fn synchronous_delta_is_sigma(n in 3usize..6, horizon in 1usize..10, seed in 0u64..200) {
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(n, 0.5, seed)
            .with_weights(|i, j| NatInf::fin(((i + 2 * j) % 5 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let x0 = RoutingState::identity(&alg, n);
        let delta = run_delta(&alg, &adj, &x0, &Schedule::synchronous(n, horizon));
        prop_assert_eq!(delta.final_state, sigma_k(&alg, &adj, &x0, horizon));
    }

    /// Theorem 7, sampled: the hop-count algebra reaches the same σ-stable
    /// state under arbitrary random schedules and garbage starts.
    #[test]
    fn hopcount_delta_converges_absolutely(seed in 0u64..100, p in params()) {
        let n = 5;
        let alg = BoundedHopCount::new(8);
        let topo = generators::connected_random(n, 0.5, seed).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
        prop_assert!(reference.converged);

        let garbage = RoutingState::<BoundedHopCount>::from_fn(n, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                NatInf::fin((i as u64 * 31 + j as u64 * 17 + seed) % 9)
            }
        });
        let sched = Schedule::random(n, 400, p, seed ^ 0xA5);
        let out = run_delta(&alg, &adj, &garbage, &sched);
        prop_assert!(out.sigma_stable, "schedule params {p:?} broke convergence");
        prop_assert_eq!(out.final_state, reference.state);
    }

    /// The event simulator's outcome is independent of loss/duplication
    /// rates (only its cost changes).
    #[test]
    fn simulator_outcome_is_fault_independent(seed in 0u64..50, loss in 0.0f64..0.4) {
        let n = 5;
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(n, 0.5, seed)
            .with_weights(|i, j| NatInf::fin(((i * 3 + j) % 6 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);

        let cfg = SimConfig {
            loss_prob: loss,
            duplicate_prob: loss / 2.0,
            min_delay: 1,
            max_delay: 10,
            seed,
            ..SimConfig::default()
        };
        let out = EventSim::new(&alg, &adj, cfg).run();
        prop_assert!(!out.truncated);
        prop_assert!(out.sigma_stable);
        prop_assert_eq!(out.final_state, reference.state);
        prop_assert!(out.stats.delivered <= out.stats.sent + out.stats.duplicated);
    }
}
