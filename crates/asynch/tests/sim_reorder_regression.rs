//! Regression tests for event-simulator livelocks found by `scenarios
//! fuzz`: message reordering poisoning `adv` slots in ways the
//! drain-triggered refresh could never repair.

use dbf_async::sim::{EventSim, SimConfig};
use dbf_matrix::prelude::*;

use dbf_algebra::prelude::*;

/// Fuzz seed 0x872ba3f16c0d1136 (minimized): a 5-node *line* — a tree, so
/// no routing loop can exist in the topology — with `min_delay = 2` lets a
/// cold-start ∞-advert overtake the sender's real advert.  The poisoned
/// slot made a reachable destination look unreachable, igniting
/// count-to-infinity churn that kept the event queue occupied forever, so
/// the (then drain-triggered) S3 refresh never fired and the run hit its
/// 2,000,000-event cap.  Receivers now discard superseded adverts (and the
/// refresh fires on delivered-event slices as a second line of defence),
/// so the run converges in a few hundred messages.
#[test]
fn reordered_cold_start_adverts_on_a_line_do_not_livelock() {
    let alg = ShortestPaths::new();
    let topo = dbf_topology::generators::line(5)
        .with_weights(|i, j| NatInf::fin((i as u64 * 7 + j as u64 * 13) % 9 + 1));
    let adj = AdjacencyMatrix::from_topology(&topo);
    let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 200);
    assert!(reference.converged);
    let cfg = SimConfig {
        loss_prob: 0.0,
        duplicate_prob: 0.0,
        min_delay: 2,
        max_delay: 5,
        seed: 4579570613188052289,
        max_events: 100_000,
        refresh_rounds: 64,
    };
    let out = EventSim::new(&alg, &adj, cfg).run();
    assert!(!out.truncated, "the reordering livelock is fixed");
    assert!(out.sigma_stable);
    assert_eq!(out.final_state, reference.state);
    assert!(
        out.stats.delivered < 10_000,
        "convergence is prompt, got {} deliveries",
        out.stats.delivered
    );
}

/// The same failure mode across many seeds and both delay profiles: the
/// simulator must reach the σ fixed point on trees and cyclic graphs alike.
#[test]
fn reordering_never_prevents_convergence_on_reachable_graphs() {
    let alg = ShortestPaths::new();
    for (name, topo) in [
        (
            "line",
            dbf_topology::generators::line(6)
                .with_weights(|i, j| NatInf::fin((i as u64 * 7 + j as u64 * 13) % 9 + 1)),
        ),
        (
            "ring",
            dbf_topology::generators::ring(6)
                .with_weights(|i, j| NatInf::fin((i as u64 * 5 + j as u64 * 3) % 7 + 1)),
        ),
        (
            "star",
            dbf_topology::generators::star(6)
                .with_weights(|i, j| NatInf::fin((i as u64 + j as u64) % 4 + 1)),
        ),
    ] {
        let n = topo.node_count();
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 400);
        assert!(reference.converged, "{name}");
        for seed in 0..20u64 {
            let cfg = SimConfig {
                loss_prob: 0.0,
                duplicate_prob: 0.0,
                min_delay: 2,
                max_delay: 7,
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FFEE,
                max_events: 200_000,
                refresh_rounds: 64,
            };
            let out = EventSim::new(&alg, &adj, cfg).run();
            assert!(!out.truncated, "{name} seed {seed} livelocked");
            assert!(out.sigma_stable, "{name} seed {seed} not stable");
            assert_eq!(out.final_state, reference.state, "{name} seed {seed}");
        }
    }
}
