//! # dbf-async — the asynchronous computation model
//!
//! This crate implements Section 3 of *"Asynchronous Convergence of
//! Policy-Rich Distributed Bellman-Ford Routing Protocols"* (Daggitt,
//! Gurney & Griffin, SIGCOMM 2018):
//!
//! * [`schedule`] — schedules `(α, β)` (Definition 5): the activation
//!   function `α(t)` saying which nodes recompute their tables at time `t`
//!   and the data-flow function `β(t, i, j)` saying how stale the data node
//!   `i` uses from node `j` is.  Constructors produce synchronous,
//!   round-robin, randomly delayed/reordered/duplicated and adversarial
//!   schedules; checkers verify (finite-horizon strengthenings of) the
//!   axioms **S1–S3**;
//! * [`delta`] — the asynchronous iterate `δ` defined from a schedule, with
//!   convergence detection (Definitions 6–8);
//! * [`convergence`] — absolute-convergence testing across ensembles of
//!   starting states and schedules: every run must reach the *same*
//!   σ-stable state;
//! * [`dynamic`] — the dynamic-network semantics of Section 3.2: topology
//!   changes create a new problem instance whose starting state is the
//!   current (now possibly stale and inconsistent) routing state;
//! * [`trace`] — an observed-schedule recorder: reconstruct the `(α, β)`
//!   an execution actually followed and certify the finite forms of
//!   S1–S3 against the `(w, ℓ)` parameters the convergence bounds use,
//!   with explicit witnesses on violation;
//! * [`sim`] — a message-level discrete-event simulator with loss,
//!   duplication, reordering and bounded delay.  Every execution of the
//!   simulator corresponds to *some* schedule `(α, β)`, so the convergence
//!   theorems apply to it directly; it is the bridge between the algebraic
//!   model and the protocol engines in `dbf-protocols`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod delta;
pub mod dynamic;
pub mod schedule;
pub mod sim;
pub mod trace;

pub use convergence::{check_absolute_convergence, AbsoluteConvergence, ConvergenceFailure};
pub use delta::{run_delta, run_delta_traced, DeltaOutcome};
pub use schedule::{Schedule, ScheduleParams};
pub use sim::{EventSim, SimConfig, SimOutcome, SimStats};
pub use trace::{AxiomViolation, ScheduleTrace};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::convergence::{
        check_absolute_convergence, AbsoluteConvergence, ConvergenceFailure,
    };
    pub use crate::delta::{run_delta, run_delta_traced, DeltaOutcome};
    pub use crate::dynamic::{DynamicEvent, DynamicRun};
    pub use crate::schedule::{Schedule, ScheduleParams};
    pub use crate::sim::{EventSim, SimConfig, SimOutcome, SimStats};
    pub use crate::trace::{AxiomViolation, ScheduleTrace};
}
