//! The asynchronous iterate `δ` (Section 3.1).
//!
//! Given a schedule `(α, β)`, a starting state `X` and the adjacency `A`,
//! the asynchronous state at time `t` is
//!
//! ```text
//! δ⁰(X)ᵢⱼ = Xᵢⱼ
//! δᵗ(X)ᵢⱼ = ⨁ₖ A_ik( δ^{β(t,i,k)}(X)ₖⱼ ) ⊕ Iᵢⱼ      if i ∈ α(t)
//!         = δ^{t−1}(X)ᵢⱼ                               otherwise
//! ```
//!
//! Setting `α(t) = {0, …, n−1}` and `β(t, i, j) = t − 1` recovers the
//! synchronous iterate `σ` exactly (verified by a test below).

use crate::schedule::Schedule;
use dbf_algebra::RoutingAlgebra;
use dbf_matrix::{is_stable, AdjacencyMatrix, RoutingState};
use dbf_telemetry::{NoopSink, TelemetrySink};
use std::collections::VecDeque;
use std::time::Instant;

/// The result of running `δ` to a schedule's horizon.
#[derive(Clone, Debug)]
pub struct DeltaOutcome<A: RoutingAlgebra> {
    /// The state at the end of the schedule.
    pub final_state: RoutingState<A>,
    /// The first time step after which the state never changed again
    /// (within the horizon), if the state stopped changing at all.
    pub quiescent_from: Option<usize>,
    /// Whether the final state is a fixed point of the synchronous operator
    /// `σ` — i.e. genuinely stable, not merely unchanged because the
    /// schedule stopped delivering fresh data.
    pub sigma_stable: bool,
    /// The number of (node, time) activations that actually recomputed a
    /// table row.
    pub activations: usize,
}

/// Run the asynchronous iterate `δ` under a schedule.
///
/// The evaluator keeps a sliding window of past states of length
/// `schedule.max_lag() + 1`, which is exactly the history the data-flow
/// function can reference.
pub fn run_delta<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    schedule: &Schedule,
) -> DeltaOutcome<A> {
    run_delta_traced(alg, adj, x0, schedule, &mut NoopSink)
}

/// [`run_delta`] with a telemetry sink: each time step `t` is reported as a
/// round (`round_start` carries the number of nodes `α(t)` activates,
/// `round_end` the number whose row actually changed), and once the horizon
/// is reached every node reports the last time step its row changed via
/// `node_settled` — the asynchronous convergence frontier.
///
/// The outcome is identical to the untraced run for every sink; with
/// [`NoopSink`] the instrumentation compiles out ([`run_delta`] forwards
/// here).
pub fn run_delta_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    schedule: &Schedule,
    tel: &mut S,
) -> DeltaOutcome<A>
where
    A: RoutingAlgebra,
    S: TelemetrySink + ?Sized,
{
    let n = adj.node_count();
    assert_eq!(n, x0.node_count(), "adjacency/state dimension mismatch");
    assert_eq!(
        n,
        schedule.node_count(),
        "adjacency/schedule dimension mismatch"
    );

    let window = schedule.max_lag() + 1;
    // history[k] is the state at time (current_time - (history.len() - 1 - k)).
    let mut history: VecDeque<RoutingState<A>> = VecDeque::with_capacity(window + 1);
    history.push_back(x0.clone());

    let on = tel.enabled();
    let mut last_changed = vec![0u64; if on { n } else { 0 }];
    let mut quiescent_from = Some(0usize);
    let mut activations = 0usize;

    for t in 1..=schedule.horizon() {
        let prev = history.back().expect("history is never empty").clone();
        let mut next = prev.clone();
        let mut changed = false;
        let mut activated = 0u64;
        let mut rows_changed = 0u64;
        let t0 = on.then(Instant::now);
        if on {
            // For δ the activation set *is* the frontier: every activated
            // node recomputes, so the two round_start arguments coincide.
            let activations = (0..n).filter(|&i| schedule.activates(t, i)).count() as u64;
            tel.round_start(t as u64, activations, activations);
        }

        // `last_changed` is intentionally empty when telemetry is off, so
        // the node loop cannot be rewritten over it.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !schedule.activates(t, i) {
                continue;
            }
            activations += 1;
            activated += 1;
            let mut node_changed = false;
            for j in 0..n {
                let new_route = if i == j {
                    alg.trivial()
                } else {
                    let mut best = alg.invalid();
                    for k in 0..n {
                        if k == i {
                            continue;
                        }
                        let beta = schedule.data_time(t, i, k);
                        // Translate the absolute time β into an index into
                        // the retained window.
                        let newest_time = t - 1;
                        let offset = newest_time - beta;
                        debug_assert!(offset < history.len(), "window too small for schedule lag");
                        let idx = history.len() - 1 - offset;
                        let snapshot = &history[idx];
                        let candidate = adj.apply(alg, i, k, snapshot.get(k, j));
                        best = alg.choice(&best, &candidate);
                    }
                    best
                };
                if &new_route != next.get(i, j) {
                    node_changed = true;
                }
                next.set(i, j, new_route);
            }
            if node_changed {
                changed = true;
                rows_changed += 1;
                if on {
                    last_changed[i] = t as u64;
                }
            }
        }
        let wall_ns = t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        tel.round_end(t as u64, activated, rows_changed, wall_ns);

        if changed {
            quiescent_from = None;
        } else if quiescent_from.is_none() {
            quiescent_from = Some(t);
        }

        history.push_back(next);
        while history.len() > window {
            history.pop_front();
        }
    }

    if on {
        for (node, &round) in last_changed.iter().enumerate() {
            tel.node_settled(node, round);
        }
    }
    let final_state = history.back().expect("history is never empty").clone();
    let sigma_stable = is_stable(alg, adj, &final_state);
    DeltaOutcome {
        final_state,
        quiescent_from,
        sigma_stable,
        activations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleParams;
    use dbf_algebra::prelude::*;
    use dbf_matrix::prelude::*;
    use dbf_topology::generators;

    fn ring_setup(n: usize) -> (ShortestPaths, AdjacencyMatrix<ShortestPaths>) {
        let alg = ShortestPaths::new();
        let topo = generators::ring(n).with_weights(|_, _| NatInf::fin(1));
        (alg, AdjacencyMatrix::from_topology(&topo))
    }

    #[test]
    fn synchronous_delta_equals_sigma_iteration() {
        let (alg, adj) = ring_setup(5);
        let x0 = RoutingState::identity(&alg, 5);
        let horizon = 7;
        let sched = Schedule::synchronous(5, horizon);
        let delta_out = run_delta(&alg, &adj, &x0, &sched);
        let sigma_out = sigma_k(&alg, &adj, &x0, horizon);
        assert_eq!(delta_out.final_state, sigma_out);
        assert!(delta_out.sigma_stable);
        assert_eq!(delta_out.activations, 5 * horizon);
    }

    #[test]
    fn random_schedules_reach_the_same_fixed_point() {
        let (alg, adj) = ring_setup(6);
        let x0 = RoutingState::identity(&alg, 6);
        let reference = iterate_to_fixed_point(&alg, &adj, &x0, 100);
        assert!(reference.converged);
        for seed in 0..6 {
            let sched = Schedule::random(6, 400, ScheduleParams::default(), seed);
            let out = run_delta(&alg, &adj, &x0, &sched);
            assert!(out.sigma_stable, "seed {seed} did not stabilise");
            assert_eq!(
                out.final_state, reference.state,
                "seed {seed} reached a different state"
            );
            assert!(out.quiescent_from.is_some());
        }
    }

    #[test]
    fn harsh_schedules_still_converge_for_strictly_increasing_finite_algebras() {
        // Theorem 7 exercised through δ: bounded hop count from a garbage
        // starting state under harsh schedules.
        let alg = BoundedHopCount::new(8);
        let topo = generators::connected_random(6, 0.4, 5).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(reference.converged);
        let garbage = RoutingState::<BoundedHopCount>::from_fn(6, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                NatInf::fin(((i * 5 + j * 3) % 9) as u64)
            }
        });
        for seed in 0..4 {
            let sched = Schedule::random(6, 600, ScheduleParams::harsh(), seed);
            let out = run_delta(&alg, &adj, &garbage, &sched);
            assert!(out.sigma_stable, "seed {seed}");
            assert_eq!(out.final_state, reference.state, "seed {seed}");
        }
    }

    #[test]
    fn inactive_nodes_keep_their_entries() {
        let (alg, adj) = ring_setup(4);
        let x0 = RoutingState::identity(&alg, 4);
        // Only node 0 ever activates.
        let mut sched = Schedule::synchronous(4, 10);
        for t in 1..=10 {
            for i in 1..4 {
                sched.set_activation(t, i, false);
            }
        }
        let out = run_delta(&alg, &adj, &x0, &sched);
        // Node 2's row is untouched.
        assert_eq!(out.final_state.row(2), x0.row(2));
        // Node 0 learned its one-hop neighbours but nothing further (its
        // neighbours never recomputed, so they never offered longer routes).
        assert_eq!(out.final_state.get(0, 1), &NatInf::fin(1));
        assert_eq!(out.final_state.get(0, 2), &NatInf::Inf);
        assert!(!out.sigma_stable);
    }

    #[test]
    fn round_robin_converges_more_slowly_but_converges() {
        let (alg, adj) = ring_setup(5);
        let x0 = RoutingState::identity(&alg, 5);
        let reference = iterate_to_fixed_point(&alg, &adj, &x0, 100);
        let sched = Schedule::round_robin(5, 200);
        let out = run_delta(&alg, &adj, &x0, &sched);
        assert!(out.sigma_stable);
        assert_eq!(out.final_state, reference.state);
        // one activation per step
        assert_eq!(out.activations, 200);
    }

    #[test]
    fn quiescence_time_is_reported() {
        let (alg, adj) = ring_setup(4);
        let x0 = RoutingState::identity(&alg, 4);
        let sched = Schedule::synchronous(4, 50);
        let out = run_delta(&alg, &adj, &x0, &sched);
        let q = out.quiescent_from.expect("synchronous run must quiesce");
        // a 4-ring converges in 2 rounds of σ; quiescence observed at the
        // first unchanged application, i.e. round 3
        assert!(q <= 4, "quiesced at {q}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_schedule_is_rejected() {
        let (alg, adj) = ring_setup(4);
        let x0 = RoutingState::identity(&alg, 4);
        let sched = Schedule::synchronous(5, 10);
        let _ = run_delta(&alg, &adj, &x0, &sched);
    }
}
