//! Schedules `(α, β)` — the paper's model of asynchronous execution
//! (Definition 5).
//!
//! A schedule over `n` nodes and a finite horizon `T` consists of
//!
//! * the **activation function** `α(t) ⊆ {0, …, n−1}` for `t ∈ {1, …, T}`:
//!   the set of nodes that recompute their routing tables at time `t`; and
//! * the **data-flow function** `β(t, i, j) < t`: the time at which the data
//!   node `i` uses from node `j` at time `t` was generated.
//!
//! The paper's axioms are liveness properties over an infinite time domain:
//!
//! * **S1** — every node activates infinitely often;
//! * **S2** — information only travels forward in time (`β(t, i, j) < t`);
//! * **S3** — stale information is eventually replaced.
//!
//! On a finite horizon we use the standard finite strengthenings: S1 becomes
//! "every node activates at least once in every window of `w` steps"
//! ([`Schedule::check_s1_window`]) and S3 becomes "data is never more than
//! `ℓ` steps stale" ([`Schedule::check_s3_lag`]); S2 is enforced by
//! construction and re-checked by [`Schedule::check_s2`].  Any finite
//! execution satisfying these extends to an infinite schedule satisfying
//! S1–S3 (repeat it synchronously after the horizon), so the theorems apply.
//!
//! Nothing in the model requires the data-flow function to be monotone:
//! `β` may jump backwards (reordering), repeat old values (duplication) or
//! skip values entirely (loss).  The random generator exercises all three.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for randomly generated schedules.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleParams {
    /// Probability that a given node activates at a given time step.
    pub activation_prob: f64,
    /// Maximum staleness of the data used by an activation (in steps).
    pub max_delay: usize,
    /// Probability that a data read re-uses the *previous* read's timestamp
    /// (message duplication / no fresh message arrived).
    pub duplicate_prob: f64,
    /// Probability that a data read skips forward non-monotonically
    /// (reordering: a newer value is observed before an older one that then
    /// reappears later).
    pub reorder_prob: f64,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        Self {
            activation_prob: 0.6,
            max_delay: 4,
            duplicate_prob: 0.15,
            reorder_prob: 0.15,
        }
    }
}

impl ScheduleParams {
    /// A harsher environment: rare activations, long delays, frequent
    /// duplication and reordering.
    pub fn harsh() -> Self {
        Self {
            activation_prob: 0.3,
            max_delay: 10,
            duplicate_prob: 0.3,
            reorder_prob: 0.3,
        }
    }
}

/// A finite-horizon schedule `(α, β)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    n: usize,
    horizon: usize,
    /// `activations[t-1][i]`: does node `i` activate at time `t`?
    activations: Vec<Vec<bool>>,
    /// `data_flow[t-1][i][j] = β(t, i, j)`.
    data_flow: Vec<Vec<Vec<usize>>>,
}

impl Schedule {
    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The horizon `T` (times run from `1` to `T`).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Does node `i` activate at time `t` (`1 ≤ t ≤ T`)?
    pub fn activates(&self, t: usize, i: usize) -> bool {
        assert!((1..=self.horizon).contains(&t), "time out of range");
        self.activations[t - 1][i]
    }

    /// The data-flow function `β(t, i, j)`.
    pub fn data_time(&self, t: usize, i: usize, j: usize) -> usize {
        assert!((1..=self.horizon).contains(&t), "time out of range");
        self.data_flow[t - 1][i][j]
    }

    /// The maximum staleness `max_t (t − β(t, i, j))` over the whole
    /// schedule.  The δ evaluator uses this to bound how much history it
    /// must retain.
    pub fn max_lag(&self) -> usize {
        let mut lag = 1;
        for t in 1..=self.horizon {
            for i in 0..self.n {
                for j in 0..self.n {
                    lag = lag.max(t - self.data_flow[t - 1][i][j]);
                }
            }
        }
        lag
    }

    /// The fully synchronous schedule: every node activates at every step
    /// and always uses the previous step's data (`β(t, i, j) = t − 1`).
    /// Running `δ` under this schedule recovers `σ` exactly.
    pub fn synchronous(n: usize, horizon: usize) -> Self {
        Self {
            n,
            horizon,
            activations: vec![vec![true; n]; horizon],
            data_flow: vec![vec![vec![0; n]; n]; horizon]
                .into_iter()
                .enumerate()
                .map(|(t0, mut per_i)| {
                    for row in per_i.iter_mut() {
                        for b in row.iter_mut() {
                            *b = t0; // β(t, i, j) = t − 1 (t = t0 + 1)
                        }
                    }
                    per_i
                })
                .collect(),
        }
    }

    /// A round-robin schedule: exactly one node activates per step (node
    /// `t mod n`), always reading the freshest available data.
    pub fn round_robin(n: usize, horizon: usize) -> Self {
        let mut activations = vec![vec![false; n]; horizon];
        let mut data_flow = vec![vec![vec![0; n]; n]; horizon];
        for t in 1..=horizon {
            activations[t - 1][(t - 1) % n] = true;
            for row in data_flow[t - 1].iter_mut() {
                for beta in row.iter_mut() {
                    *beta = t - 1;
                }
            }
        }
        Self {
            n,
            horizon,
            activations,
            data_flow,
        }
    }

    /// A random schedule with message delay, duplication and reordering,
    /// deterministic in `seed`.
    ///
    /// Every node is forced to activate at least once in every
    /// `⌈1 / activation_prob⌉ · 4`-step window (so S1's finite form holds by
    /// construction), and `β` never lags more than `params.max_delay` behind
    /// (so S3's finite form holds too).
    pub fn random(n: usize, horizon: usize, params: ScheduleParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut activations = vec![vec![false; n]; horizon];
        let mut data_flow = vec![vec![vec![0usize; n]; n]; horizon];
        // Previous β per (i, j), used for duplication.
        let mut prev_beta = vec![vec![0usize; n]; n];
        // Steps since last activation, to enforce the S1 window.
        let mut since_active = vec![0usize; n];
        let window = ((1.0 / params.activation_prob.clamp(0.05, 1.0)).ceil() as usize) * 4;

        for t in 1..=horizon {
            for i in 0..n {
                since_active[i] += 1;
                let forced = since_active[i] >= window;
                if forced || rng.gen_bool(params.activation_prob.clamp(0.0, 1.0)) {
                    activations[t - 1][i] = true;
                    since_active[i] = 0;
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let oldest = t.saturating_sub(params.max_delay.max(1));
                    let newest = t - 1;
                    let beta = if rng.gen_bool(params.duplicate_prob.clamp(0.0, 1.0)) {
                        // duplication: observe exactly the same data again
                        prev_beta[i][j].min(newest)
                    } else if rng.gen_bool(params.reorder_prob.clamp(0.0, 1.0)) {
                        // reordering: jump to an arbitrary (possibly older
                        // than previously seen) time in the window
                        rng.gen_range(oldest..=newest)
                    } else {
                        // "normal" progress: somewhere between the last
                        // observation and now
                        let lo = prev_beta[i][j].clamp(oldest, newest);
                        rng.gen_range(lo..=newest)
                    };
                    // S3's finite form: never read data older than the lag
                    // bound (stale information is eventually replaced).
                    let beta = beta.max(oldest);
                    data_flow[t - 1][i][j] = beta;
                    prev_beta[i][j] = beta;
                }
            }
        }
        Self {
            n,
            horizon,
            activations,
            data_flow,
        }
    }

    /// An adversarial schedule in which one node (`victim`) activates only
    /// every `period` steps and always reads the stalest data the lag bound
    /// allows, while everyone else runs synchronously.
    pub fn adversarial_stale(
        n: usize,
        horizon: usize,
        victim: usize,
        period: usize,
        max_lag: usize,
    ) -> Self {
        let mut sched = Self::synchronous(n, horizon);
        for t in 1..=horizon {
            if t % period != 0 {
                sched.activations[t - 1][victim] = false;
            }
            for j in 0..n {
                sched.data_flow[t - 1][victim][j] = t.saturating_sub(max_lag);
            }
        }
        sched
    }

    /// S1 (finite form): every node activates at least once in every window
    /// of `window` consecutive steps.
    pub fn check_s1_window(&self, window: usize) -> bool {
        if self.horizon < window {
            return self
                .activations
                .iter()
                .fold(vec![false; self.n], |mut acc, row| {
                    for (a, b) in acc.iter_mut().zip(row) {
                        *a |= *b;
                    }
                    acc
                })
                .into_iter()
                .all(|x| x);
        }
        for start in 0..=(self.horizon - window) {
            for i in 0..self.n {
                let active = (start..start + window).any(|t0| self.activations[t0][i]);
                if !active {
                    return false;
                }
            }
        }
        true
    }

    /// S2: information only travels forward in time (`β(t, i, j) < t`).
    pub fn check_s2(&self) -> bool {
        for t in 1..=self.horizon {
            for i in 0..self.n {
                for j in 0..self.n {
                    if self.data_flow[t - 1][i][j] >= t {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// S3 (finite form): data is never more than `max_lag` steps stale.
    pub fn check_s3_lag(&self, max_lag: usize) -> bool {
        self.max_lag() <= max_lag
    }

    /// Overwrite `β(t, i, j)` (used by tests to build deliberately broken
    /// schedules).
    pub fn set_data_time(&mut self, t: usize, i: usize, j: usize, beta: usize) {
        assert!((1..=self.horizon).contains(&t), "time out of range");
        self.data_flow[t - 1][i][j] = beta;
    }

    /// Overwrite an activation entry (used by tests).
    pub fn set_activation(&mut self, t: usize, i: usize, active: bool) {
        assert!((1..=self.horizon).contains(&t), "time out of range");
        self.activations[t - 1][i] = active;
    }

    /// Extend the schedule by `extra` synchronous steps (every node active,
    /// reading the previous step).  Used by convergence drivers that need a
    /// little more time.
    pub fn extend_synchronously(&mut self, extra: usize) {
        for t in self.horizon + 1..=self.horizon + extra {
            self.activations.push(vec![true; self.n]);
            self.data_flow.push(vec![vec![t - 1; self.n]; self.n]);
        }
        self.horizon += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_schedule_shape() {
        let s = Schedule::synchronous(3, 5);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.horizon(), 5);
        for t in 1..=5 {
            for i in 0..3 {
                assert!(s.activates(t, i));
                for j in 0..3 {
                    assert_eq!(s.data_time(t, i, j), t - 1);
                }
            }
        }
        assert_eq!(s.max_lag(), 1);
        assert!(s.check_s1_window(1));
        assert!(s.check_s2());
        assert!(s.check_s3_lag(1));
    }

    #[test]
    fn round_robin_activates_one_node_per_step() {
        let s = Schedule::round_robin(4, 12);
        for t in 1..=12 {
            let active: Vec<usize> = (0..4).filter(|&i| s.activates(t, i)).collect();
            assert_eq!(active, vec![(t - 1) % 4]);
        }
        assert!(s.check_s1_window(4));
        assert!(!s.check_s1_window(3));
        assert!(s.check_s2());
    }

    #[test]
    fn random_schedules_satisfy_the_finite_axioms() {
        for seed in 0..5 {
            let params = ScheduleParams::default();
            let s = Schedule::random(5, 200, params, seed);
            assert!(s.check_s2(), "seed {seed}");
            assert!(s.check_s3_lag(params.max_delay.max(1)), "seed {seed}");
            let window = ((1.0 / params.activation_prob).ceil() as usize) * 4;
            assert!(s.check_s1_window(window), "seed {seed}");
        }
    }

    #[test]
    fn random_schedules_are_deterministic_in_the_seed() {
        let a = Schedule::random(4, 50, ScheduleParams::default(), 9);
        let b = Schedule::random(4, 50, ScheduleParams::default(), 9);
        let c = Schedule::random(4, 50, ScheduleParams::default(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn harsh_schedules_really_reorder_and_duplicate() {
        let s = Schedule::random(4, 300, ScheduleParams::harsh(), 3);
        // duplication: some β value repeats for the same (i, j)
        let mut duplicated = false;
        // reordering: β goes backwards for some (i, j)
        let mut reordered = false;
        for i in 0..4 {
            for j in 0..4 {
                let mut prev = 0;
                let mut seen_gap = false;
                for t in 1..=300 {
                    let b = s.data_time(t, i, j);
                    if t > 1 && b == prev && s.data_time(t - 1, i, j) == prev {
                        duplicated = true;
                    }
                    if b < prev {
                        reordered = true;
                    }
                    if b > prev + 1 {
                        seen_gap = true;
                    }
                    prev = b;
                }
                let _ = seen_gap;
            }
        }
        assert!(duplicated, "harsh schedules should duplicate data");
        assert!(reordered, "harsh schedules should reorder data");
    }

    #[test]
    fn adversarial_schedule_has_a_lazy_victim() {
        let s = Schedule::adversarial_stale(4, 40, 2, 5, 8);
        let victim_activations = (1..=40).filter(|&t| s.activates(t, 2)).count();
        assert_eq!(victim_activations, 8);
        assert!(s.check_s2());
        assert!(s.max_lag() <= 8 + 1);
        // other nodes are fully synchronous
        assert_eq!((1..=40).filter(|&t| s.activates(t, 0)).count(), 40);
    }

    #[test]
    fn broken_schedules_are_detected() {
        let mut s = Schedule::synchronous(3, 10);
        // S2 violation: data from the future
        s.set_data_time(4, 1, 2, 7);
        assert!(!s.check_s2());

        let mut s = Schedule::synchronous(3, 10);
        // node 1 never activates after step 2
        for t in 3..=10 {
            s.set_activation(t, 1, false);
        }
        assert!(!s.check_s1_window(4));

        let mut s = Schedule::synchronous(3, 10);
        // very stale data at step 9
        s.set_data_time(9, 0, 2, 0);
        assert!(!s.check_s3_lag(4));
    }

    #[test]
    fn extension_preserves_axioms() {
        let mut s = Schedule::random(3, 30, ScheduleParams::default(), 1);
        let before = s.horizon();
        s.extend_synchronously(10);
        assert_eq!(s.horizon(), before + 10);
        assert!(s.check_s2());
        for t in before + 1..=before + 10 {
            for i in 0..3 {
                assert!(s.activates(t, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "time out of range")]
    fn out_of_range_time_panics() {
        let s = Schedule::synchronous(2, 3);
        let _ = s.activates(4, 0);
    }
}
