//! A message-level discrete-event simulator with loss, duplication,
//! reordering and bounded delay.
//!
//! The schedule model of Section 3.1 is deliberately abstract; this module
//! provides the concrete, operational counterpart: nodes keep routing
//! tables, advertise changed routes to their neighbours as messages, and a
//! fault-injecting network delivers those messages late, twice, out of
//! order, or not at all.  Every execution of the simulator corresponds to
//! *some* schedule `(α, β)` — a node processing a message at time `t` that
//! was sent at time `s` is an activation at `t` using data generated at
//! `s < t`, lost messages simply mean that data is never used, and
//! duplicates mean it is used twice — so Theorems 7 and 11 apply verbatim.
//!
//! The simulator follows the standard DBF message-passing formulation: node
//! `i` remembers, for every neighbour `k` and destination `j`, the last
//! route `k` advertised for `j` (`adv[k][j]`), and recomputes
//! `table[j] = I_ij ⊕ ⨁_k A_ik(adv[k][j])` whenever an advertisement
//! arrives.  Changed table entries are re-advertised to every neighbour.
//!
//! Like the real protocols it models (BGP's ordered transport, RIP's
//! freshest-route rule), a receiver discards an advert that has been
//! *superseded* by a newer one from the same sender for the same
//! destination: reordering still scrambles the interleaving across links
//! and destinations — the asynchrony the theorems quantify over — but an
//! overtaken stale advert cannot masquerade as current information forever,
//! which is what schedule axiom S3 rules out.

use dbf_algebra::RoutingAlgebra;
use dbf_matrix::{is_stable, AdjacencyMatrix, RoutingState};
use dbf_paths::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Fault-injection and scheduling parameters of the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Probability that a message is silently dropped.
    pub loss_prob: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
    /// Minimum link delay (simulated time units).
    pub min_delay: u64,
    /// Maximum link delay; different in-flight messages on the same link may
    /// overtake each other, which is exactly message reordering.
    pub max_delay: u64,
    /// RNG seed (the simulator is deterministic in the seed).
    pub seed: u64,
    /// Safety limit on the number of delivered events.
    pub max_events: usize,
    /// How many periodic full-table refresh rounds a node may perform after
    /// the network goes quiet without having reached a stable state.
    ///
    /// This is the operational counterpart of schedule axioms S1 and S3:
    /// real protocols either retransmit (BGP's reliable transport) or
    /// periodically re-advertise (RIP's update timer), so a *lost* message
    /// delays convergence but does not silently break it.  Without any
    /// refresh, a lossy network could permanently withhold information,
    /// which the paper's model explicitly excludes.
    pub refresh_rounds: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            loss_prob: 0.0,
            duplicate_prob: 0.0,
            min_delay: 1,
            max_delay: 5,
            seed: 0,
            max_events: 1_000_000,
            refresh_rounds: 16,
        }
    }
}

impl SimConfig {
    /// A lossy, duplicating, heavily reordering network.
    pub fn adversarial(seed: u64) -> Self {
        Self {
            loss_prob: 0.2,
            duplicate_prob: 0.2,
            min_delay: 1,
            max_delay: 20,
            seed,
            max_events: 2_000_000,
            refresh_rounds: 64,
        }
    }
}

/// Counters describing a finished simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network layer.
    pub sent: u64,
    /// Messages dropped by fault injection.
    pub lost: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Messages actually processed by their recipient.
    pub delivered: u64,
    /// Table-entry changes across all nodes.
    pub table_changes: u64,
    /// The simulated time of the last table change.
    pub last_change_time: u64,
    /// The simulated time at which the event queue drained.
    pub finish_time: u64,
    /// Periodic full-table refresh rounds that were needed (non-zero only
    /// when fault injection or message reordering withheld information past
    /// a refresh period).
    pub refreshes: u64,
}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome<A: RoutingAlgebra> {
    /// The final global routing state (row `i` = node `i`'s table).
    pub final_state: RoutingState<A>,
    /// Whether the final state is a fixed point of the synchronous `σ`.
    pub sigma_stable: bool,
    /// Run statistics.
    pub stats: SimStats,
    /// True if the run stopped because `max_events` was hit rather than
    /// because the network quiesced.
    pub truncated: bool,
    /// Per-node settle times: `node_last_change[i]` is the simulated time
    /// at which node `i`'s table last changed (0 if it never did) — the
    /// asynchronous convergence frontier, deterministic in the seed.
    pub node_last_change: Vec<u64>,
}

#[derive(Debug)]
struct Message<R> {
    deliver_at: u64,
    seq: u64,
    /// Per-`(from, dest)` send generation.  Receivers discard a message
    /// that has been superseded by a newer advert from the same sender for
    /// the same destination — the miniature of BGP's ordered transport and
    /// RIP's freshest-route rule.  Without this, a delayed cold-start
    /// ∞-advert can overtake the real one and permanently poison the
    /// receiver's `adv` slot (the sender's table never changes again, so
    /// nothing overwrites it), which `scenarios fuzz` exposed as
    /// count-to-infinity livelocks on plain *trees*.
    gen: u64,
    from: NodeId,
    to: NodeId,
    dest: NodeId,
    route: R,
}

// BinaryHeap is a max-heap; invert the ordering to get earliest-first.
impl<R> PartialEq for Message<R> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<R> Eq for Message<R> {}
impl<R> PartialOrd for Message<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for Message<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The message-level simulator.
pub struct EventSim<'a, A: RoutingAlgebra> {
    alg: &'a A,
    adj: &'a AdjacencyMatrix<A>,
    config: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Message<A::Route>>,
    /// `tables[i][j]`: node `i`'s current best route to `j`.
    tables: Vec<Vec<A::Route>>,
    /// `adverts[i][k][j]`: the last route for destination `j` that node `i`
    /// has heard from neighbour `k` (∞̄ if none yet).
    adverts: Vec<Vec<Vec<A::Route>>>,
    /// `send_gen[i][j]`: how many adverts node `i` has sent for
    /// destination `j` (stamped onto outgoing messages).
    send_gen: Vec<Vec<u64>>,
    /// `seen_gen[i][k][j]`: the newest generation node `i` has accepted
    /// from neighbour `k` for destination `j`; older arrivals are
    /// superseded and ignored.
    seen_gen: Vec<Vec<Vec<u64>>>,
    stats: SimStats,
    /// Simulated time of each node's last table change (settle tracking).
    node_last_change: Vec<u64>,
}

impl<'a, A: RoutingAlgebra> EventSim<'a, A> {
    /// Create a simulator over the given network, starting from the clean
    /// state in which every node knows only the trivial route to itself.
    pub fn new(alg: &'a A, adj: &'a AdjacencyMatrix<A>, config: SimConfig) -> Self {
        let n = adj.node_count();
        let initial = RoutingState::identity(alg, n);
        Self::with_initial_state(alg, adj, config, &initial)
    }

    /// Create a simulator whose nodes start with the given (possibly stale
    /// or inconsistent) tables — the "arbitrary starting state" of the
    /// convergence theorems.
    pub fn with_initial_state(
        alg: &'a A,
        adj: &'a AdjacencyMatrix<A>,
        config: SimConfig,
        initial: &RoutingState<A>,
    ) -> Self {
        let n = adj.node_count();
        assert_eq!(n, initial.node_count(), "initial state dimension mismatch");
        let tables: Vec<Vec<A::Route>> = (0..n).map(|i| initial.row(i).to_vec()).collect();
        let adverts = vec![vec![vec![alg.invalid(); n]; n]; n];
        let mut sim = Self {
            alg,
            adj,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            tables,
            adverts,
            send_gen: vec![vec![0; n]; n],
            seen_gen: vec![vec![vec![0; n]; n]; n],
            stats: SimStats::default(),
            node_last_change: vec![0; n],
        };
        // Every node initially advertises its whole table to its neighbours
        // (the protocol's cold-start announcements).
        for i in 0..n {
            sim.advertise_full_table(i);
        }
        sim
    }

    fn neighbors_importing_from(&self, j: NodeId) -> Vec<NodeId> {
        // Nodes i with A_ij present import from j, i.e. j announces to them.
        (0..self.adj.node_count())
            .filter(|&i| i != j && self.adj.get(i, j).is_some())
            .collect()
    }

    fn advertise_full_table(&mut self, i: NodeId) {
        let n = self.adj.node_count();
        for dest in 0..n {
            let route = self.tables[i][dest].clone();
            self.send_advert(i, dest, route);
        }
    }

    fn send_advert(&mut self, from: NodeId, dest: NodeId, route: A::Route) {
        self.send_gen[from][dest] += 1;
        let gen = self.send_gen[from][dest];
        for to in self.neighbors_importing_from(from) {
            self.stats.sent += 1;
            if self.rng.gen_bool(self.config.loss_prob.clamp(0.0, 1.0)) {
                self.stats.lost += 1;
                continue;
            }
            let copies = if self
                .rng
                .gen_bool(self.config.duplicate_prob.clamp(0.0, 1.0))
            {
                self.stats.duplicated += 1;
                2
            } else {
                1
            };
            for _ in 0..copies {
                let delay = self.rng.gen_range(
                    self.config.min_delay..=self.config.max_delay.max(self.config.min_delay),
                );
                self.seq += 1;
                self.queue.push(Message {
                    deliver_at: self.now + delay,
                    seq: self.seq,
                    gen,
                    from,
                    to,
                    dest,
                    route: route.clone(),
                });
            }
        }
    }

    fn recompute_entry(&mut self, i: NodeId, dest: NodeId) -> bool {
        self.recompute_entry_impl(i, dest, true)
    }

    /// Re-run node `i`'s selection for `dest`.  With `advertise` false the
    /// table still updates (and the change is counted) but no advert is
    /// sent — used by the refresh rounds, whose full-table advertisement
    /// immediately follows and would otherwise duplicate every changed
    /// entry on the wire.
    fn recompute_entry_impl(&mut self, i: NodeId, dest: NodeId, advertise: bool) -> bool {
        let n = self.adj.node_count();
        let new_route = if i == dest {
            self.alg.trivial()
        } else {
            let mut best = self.alg.invalid();
            for k in 0..n {
                if k == i {
                    continue;
                }
                let candidate = self.adj.apply(self.alg, i, k, &self.adverts[i][k][dest]);
                best = self.alg.choice(&best, &candidate);
            }
            best
        };
        if new_route != self.tables[i][dest] {
            self.tables[i][dest] = new_route.clone();
            self.stats.table_changes += 1;
            self.stats.last_change_time = self.now;
            self.node_last_change[i] = self.now;
            if advertise {
                self.send_advert(i, dest, new_route);
            }
            true
        } else {
            false
        }
    }

    /// Deliver queued messages until the queue drains, the total delivery
    /// count reaches `slice_end`, or the event budget is exhausted.
    /// Returns `true` if the budget was hit.
    fn drain(&mut self, slice_end: Option<usize>) -> bool {
        while !self.queue.is_empty() {
            if self.stats.delivered as usize >= self.config.max_events {
                return true;
            }
            if slice_end.is_some_and(|e| self.stats.delivered as usize >= e) {
                return false;
            }
            let msg = self.queue.pop().expect("queue is non-empty");
            self.now = msg.deliver_at;
            self.stats.delivered += 1;
            // A superseded advert (an older generation overtaken in flight)
            // is discarded; a duplicate of the newest generation is
            // re-applied, which is idempotent.
            if msg.gen < self.seen_gen[msg.to][msg.from][msg.dest] {
                continue;
            }
            self.seen_gen[msg.to][msg.from][msg.dest] = msg.gen;
            // Record the advertisement and recompute the affected entry.
            self.adverts[msg.to][msg.from][msg.dest] = msg.route;
            self.recompute_entry(msg.to, msg.dest);
        }
        false
    }

    fn current_state(&self) -> RoutingState<A> {
        RoutingState::from_fn(self.adj.node_count(), |i, j| self.tables[i][j].clone())
    }

    /// Run the simulation: deliver messages until the network quiesces; if
    /// the state is not σ-stable, perform a periodic full-table refresh —
    /// as RIP's update timer or BGP's retransmission would — and continue,
    /// up to `refresh_rounds` times.
    ///
    /// The refresh timer fires every `32·n²` *delivered events*, not only
    /// when the event queue drains.  This matters: a reordered cold-start
    /// advertisement can permanently poison a neighbour's `adv` slot (the
    /// sender's table never changes again, so the stale entry is never
    /// overwritten), and the resulting churn can keep the queue occupied
    /// indefinitely — schedule axiom S3 ("stale information is eventually
    /// replaced") would silently fail exactly when it is needed most.
    /// `scenarios fuzz` found this as a livelock on a 5-node *line*: an
    /// in-flight ∞-advert overtook the real one, made a reachable
    /// destination look unreachable, and fed a count-to-infinity loop that
    /// never let the queue drain.  The trigger is event-count-based rather
    /// than simulated-time-based because churn density is unbounded: a
    /// livelocked network can pack millions of deliveries into a few ticks
    /// of simulated time, burning the whole event budget before any clock
    /// deadline arrives.
    pub fn run(mut self) -> SimOutcome<A> {
        // Generous relative to a healthy cold start (O(n·|E|) ≤ O(n³)
        // deliveries for bounded metrics), so fast convergences drain
        // inside the first slice and see zero refresh overhead, while
        // sustained churn is interrupted and repaired promptly.
        let n = self.adj.node_count();
        let slice = (32 * n * n).max(2048);
        let mut truncated = false;
        loop {
            let can_refresh = (self.stats.refreshes as usize) < self.config.refresh_rounds;
            // While refreshes remain, deliver in bounded event slices so
            // the refresh can interrupt sustained churn; once the refresh
            // budget is spent, drain to quiescence (the event budget is the
            // backstop for genuinely diverging runs).
            let slice_end = can_refresh.then(|| self.stats.delivered as usize + slice);
            if self.drain(slice_end) {
                truncated = true;
                break;
            }
            let state = self.current_state();
            let stable = is_stable(self.alg, self.adj, &state);
            if self.queue.is_empty() && (stable || !can_refresh) {
                break;
            }
            if stable || !can_refresh {
                // Stable with messages still in flight (they may yet
                // destabilise us), or churning with no refreshes left:
                // keep delivering.
                continue;
            }
            self.stats.refreshes += 1;
            // A refresh is an *activation* of every node (the finite form of
            // schedule axiom S1), not just a retransmission: each node
            // re-runs its decision over everything it has heard and then
            // re-advertises.  Without the recomputation, a node that
            // receives no messages at all — newly isolated by a topology
            // change, say — would keep stale routes forever.
            for i in 0..self.adj.node_count() {
                for dest in 0..self.adj.node_count() {
                    // No per-entry advert: the full-table advertisement
                    // below covers every destination.
                    self.recompute_entry_impl(i, dest, false);
                }
                self.advertise_full_table(i);
            }
        }
        self.stats.finish_time = self.now;
        let final_state = self.current_state();
        let sigma_stable = is_stable(self.alg, self.adj, &final_state);
        SimOutcome {
            final_state,
            sigma_stable,
            stats: self.stats,
            truncated,
            node_last_change: self.node_last_change,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_matrix::prelude::*;
    use dbf_paths::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn reliable_network_converges_to_the_sigma_fixed_point() {
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(8, 0.3, 2)
            .with_weights(|i, j| NatInf::fin(((i * 3 + j) % 5 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = EventSim::new(&alg, &adj, SimConfig::default()).run();
        assert!(!out.truncated);
        assert!(out.sigma_stable);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 8), 200);
        assert_eq!(out.final_state, reference.state);
        assert!(out.stats.delivered > 0);
        assert_eq!(out.stats.lost, 0);
    }

    #[test]
    fn lossy_duplicating_reordering_network_still_converges_to_the_same_state() {
        // The headline claim, exercised operationally: with a strictly
        // increasing algebra the protocol converges to the same unique
        // answer even when messages are lost, duplicated and reordered
        // (periodic refresh stands in for S1/S3's "stale information is
        // eventually replaced", exactly as RIP's update timer or BGP's
        // reliable transport do in practice).
        let alg = ShortestPaths::new();
        let topo = generators::ring(6).with_weights(|i, j| NatInf::fin(((i + j) % 4 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 200);
        for seed in 0..10 {
            let out = EventSim::new(&alg, &adj, SimConfig::adversarial(seed)).run();
            assert!(!out.truncated, "seed {seed} exhausted its event budget");
            assert!(out.sigma_stable, "seed {seed} did not stabilise");
            assert_eq!(
                out.final_state, reference.state,
                "seed {seed} stabilised on a different state"
            );
            assert!(
                out.stats.lost > 0 || out.stats.duplicated > 0,
                "faults were injected"
            );
        }
    }

    #[test]
    fn path_vector_simulation_from_a_stale_state_converges() {
        type Pv = PathVector<ShortestPaths>;
        let pv: Pv = PathVector::new(ShortestPaths::new(), 5);
        let topo = generators::ring(5).with_weights(|_, _| NatInf::fin(1));
        let adj = lift_topology(&pv, &topo);
        // A stale state full of routes along paths that do not exist.
        let pool = pv.sample_routes(31, 32);
        let stale = RoutingState::from_fn(5, |i, j| {
            if i == j {
                pv.trivial()
            } else {
                pool[(i * 5 + j) % pool.len()].clone()
            }
        });
        let out = EventSim::with_initial_state(&pv, &adj, SimConfig::adversarial(7), &stale).run();
        assert!(!out.truncated);
        assert!(out.sigma_stable);
        let reference = iterate_to_fixed_point(&pv, &adj, &RoutingState::identity(&pv, 5), 200);
        assert_eq!(out.final_state, reference.state);
        assert!(out.stats.table_changes > 0);
    }

    #[test]
    fn statistics_are_consistent() {
        let alg = ShortestPaths::new();
        let topo = generators::line(4).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = EventSim::new(
            &alg,
            &adj,
            SimConfig {
                seed: 3,
                ..SimConfig::default()
            },
        )
        .run();
        let s = out.stats;
        assert_eq!(s.lost, 0);
        assert!(
            s.delivered >= s.sent - s.lost,
            "duplication can only add deliveries"
        );
        assert!(s.finish_time >= s.last_change_time);
        assert!(s.table_changes > 0);
    }

    #[test]
    fn event_budget_truncation_is_reported() {
        let alg = ShortestPaths::new();
        let topo = generators::complete(5).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let cfg = SimConfig {
            max_events: 10,
            ..SimConfig::default()
        };
        let out = EventSim::new(&alg, &adj, cfg).run();
        assert!(out.truncated);
        assert_eq!(out.stats.delivered, 10);
    }

    #[test]
    fn unreachable_destinations_stay_invalid() {
        let alg = ShortestPaths::new();
        let mut topo = dbf_topology::Topology::new(4);
        topo.set_link(0, 1, NatInf::fin(1));
        topo.set_link(2, 3, NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = EventSim::new(&alg, &adj, SimConfig::default()).run();
        assert!(out.sigma_stable);
        assert_eq!(out.final_state.get(0, 2), &NatInf::Inf);
        assert_eq!(out.final_state.get(0, 1), &NatInf::fin(1));
    }
}
