//! Absolute-convergence testing (Definitions 6–8).
//!
//! * `δ` **converges from `X`** when every schedule eventually reaches a
//!   stable state and stays there;
//! * `δ` **converges** when it converges from every starting state;
//! * `δ` **converges absolutely** when it always reaches the *same* stable
//!   state from every starting state under every schedule.
//!
//! These are `∀`-statements over infinite sets, so they cannot be checked
//! exhaustively; [`check_absolute_convergence`] instead runs `δ` over an
//! ensemble of starting states × schedules and verifies that every run
//! reaches one and the same σ-stable state.  A single failing run is a
//! *refutation* of absolute convergence; an all-pass result is evidence in
//! exactly the sense the paper's experiments use it (the proof itself is the
//! job of Theorem 7 / Theorem 11, mirrored by this repository's contraction
//! checkers in `dbf-metric`).

use crate::delta::run_delta;
use crate::schedule::Schedule;
use dbf_algebra::RoutingAlgebra;
use dbf_matrix::{AdjacencyMatrix, RoutingState};
use std::fmt;

/// A successful absolute-convergence check.
#[derive(Clone, Debug)]
pub struct AbsoluteConvergence<A: RoutingAlgebra> {
    /// The unique stable state every run converged to.
    pub fixed_point: RoutingState<A>,
    /// How many (state, schedule) runs were performed.
    pub runs: usize,
}

/// Why an absolute-convergence check failed.
#[derive(Clone, Debug)]
pub enum ConvergenceFailure {
    /// Some run ended the schedule in a state that is not σ-stable.
    NotStable {
        /// Index of the starting state.
        state_index: usize,
        /// Index of the schedule.
        schedule_index: usize,
    },
    /// Two runs converged to different stable states (a "BGP wedgie": the
    /// outcome depends on the order of events).
    MultipleFixedPoints {
        /// Index of the starting state of the first run.
        first_state: usize,
        /// Index of the schedule of the first run.
        first_schedule: usize,
        /// Index of the starting state of the second run.
        second_state: usize,
        /// Index of the schedule of the second run.
        second_schedule: usize,
    },
}

impl fmt::Display for ConvergenceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvergenceFailure::NotStable {
                state_index,
                schedule_index,
            } => write!(
                f,
                "run (state #{state_index}, schedule #{schedule_index}) did not reach a σ-stable state"
            ),
            ConvergenceFailure::MultipleFixedPoints {
                first_state,
                first_schedule,
                second_state,
                second_schedule,
            } => write!(
                f,
                "run (state #{second_state}, schedule #{second_schedule}) reached a different stable \
                 state than run (state #{first_state}, schedule #{first_schedule}) — the outcome \
                 depends on the schedule (wedgie behaviour)"
            ),
        }
    }
}

impl std::error::Error for ConvergenceFailure {}

/// Run `δ` for every combination of starting state and schedule and check
/// that all runs reach the same σ-stable state.
pub fn check_absolute_convergence<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    states: &[RoutingState<A>],
    schedules: &[Schedule],
) -> Result<AbsoluteConvergence<A>, ConvergenceFailure> {
    let mut witness: Option<(usize, usize, RoutingState<A>)> = None;
    let mut runs = 0usize;
    for (si, x0) in states.iter().enumerate() {
        for (ci, sched) in schedules.iter().enumerate() {
            runs += 1;
            let out = run_delta(alg, adj, x0, sched);
            if !out.sigma_stable {
                return Err(ConvergenceFailure::NotStable {
                    state_index: si,
                    schedule_index: ci,
                });
            }
            match &witness {
                None => witness = Some((si, ci, out.final_state)),
                Some((fs, fc, reference)) => {
                    if out.final_state != *reference {
                        return Err(ConvergenceFailure::MultipleFixedPoints {
                            first_state: *fs,
                            first_schedule: *fc,
                            second_state: si,
                            second_schedule: ci,
                        });
                    }
                }
            }
        }
    }
    let (_, _, fixed_point) = witness.expect("at least one state and one schedule are required");
    Ok(AbsoluteConvergence { fixed_point, runs })
}

/// A convenience ensemble of schedules covering the synchronous, round-robin,
/// random and harsh-random regimes, deterministic in `seed`.
pub fn schedule_ensemble(n: usize, horizon: usize, count: usize, seed: u64) -> Vec<Schedule> {
    use crate::schedule::ScheduleParams;
    let mut out = vec![
        Schedule::synchronous(n, horizon),
        Schedule::round_robin(n, horizon),
    ];
    for k in 0..count {
        let params = if k % 2 == 0 {
            ScheduleParams::default()
        } else {
            ScheduleParams::harsh()
        };
        out.push(Schedule::random(
            n,
            horizon,
            params,
            seed.wrapping_add(k as u64),
        ));
    }
    out
}

/// A convenience ensemble of starting states: the clean (identity) state plus
/// `count` pseudo-random states whose entries are drawn from `route_pool`
/// (diagonals are kept trivial, as Lemma 1 forces after one activation
/// anyway), deterministic in `seed`.
pub fn state_ensemble<A: RoutingAlgebra>(
    alg: &A,
    n: usize,
    route_pool: &[A::Route],
    count: usize,
    seed: u64,
) -> Vec<RoutingState<A>> {
    use dbf_algebra::algebra::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut out = vec![RoutingState::identity(alg, n)];
    for _ in 0..count {
        out.push(RoutingState::from_fn(n, |i, j| {
            if i == j {
                alg.trivial()
            } else {
                route_pool[rng.next_below(route_pool.len() as u64) as usize].clone()
            }
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_algebra::FiniteCarrier;
    use dbf_matrix::prelude::*;
    use dbf_paths::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn theorem7_hopcount_converges_absolutely_on_a_random_network() {
        let alg = BoundedHopCount::new(9);
        let topo = generators::connected_random(5, 0.4, 21).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let states = state_ensemble(&alg, 5, &alg.all_routes(), 4, 7);
        let schedules = schedule_ensemble(5, 300, 4, 11);
        let result = check_absolute_convergence(&alg, &adj, &states, &schedules)
            .expect("Theorem 7: finite strictly increasing algebras converge absolutely");
        assert_eq!(result.runs, states.len() * schedules.len());
        // and the unique fixed point is the synchronous one
        let sync = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
        assert_eq!(result.fixed_point, sync.state);
    }

    #[test]
    fn theorem11_path_vector_converges_absolutely_from_inconsistent_states() {
        type Pv = PathVector<ShortestPaths>;
        let pv: Pv = PathVector::new(ShortestPaths::new(), 4);
        let topo =
            generators::ring(4).with_weights(|i, j| NatInf::fin(((i + 2 * j) % 3 + 1) as u64));
        let adj = lift_topology(&pv, &topo);
        let pool = pv.sample_routes(13, 32);
        let states = state_ensemble(&pv, 4, &pool, 3, 3);
        let schedules = schedule_ensemble(4, 250, 3, 29);
        let result = check_absolute_convergence(&pv, &adj, &states, &schedules)
            .expect("Theorem 11: increasing path algebras converge absolutely");
        let sync = iterate_to_fixed_point(&pv, &adj, &RoutingState::identity(&pv, 4), 100);
        assert_eq!(result.fixed_point, sync.state);
    }

    #[test]
    fn unbounded_shortest_paths_fails_from_stale_states() {
        // The count-to-infinity motivation for Section 5: plain shortest
        // paths (infinite carrier) does *not* converge from arbitrary stale
        // states within a bounded horizon once the destination is
        // unreachable — the stale routes keep being re-advertised at larger
        // and larger distances.
        let alg = ShortestPaths::new();
        let mut topo = dbf_topology::Topology::new(3);
        topo.set_link(0, 1, NatInf::fin(1));
        // node 2 is unreachable, but stale routes towards it exist
        let adj = AdjacencyMatrix::from_topology(&topo);
        let mut stale = RoutingState::identity(&alg, 3);
        stale.set(0, 2, NatInf::fin(5));
        stale.set(1, 2, NatInf::fin(5));
        let schedules = vec![Schedule::synchronous(3, 200)];
        let err = check_absolute_convergence(&alg, &adj, &[stale], &schedules);
        match err {
            Err(ConvergenceFailure::NotStable { .. }) => {}
            other => panic!("expected a count-to-infinity non-convergence, got {other:?}"),
        }
    }

    #[test]
    fn failure_display_mentions_the_offending_runs() {
        let f = ConvergenceFailure::MultipleFixedPoints {
            first_state: 0,
            first_schedule: 1,
            second_state: 2,
            second_schedule: 3,
        };
        let s = f.to_string();
        assert!(s.contains("schedule #3"));
        assert!(s.contains("wedgie"));
        let g = ConvergenceFailure::NotStable {
            state_index: 4,
            schedule_index: 5,
        };
        assert!(g.to_string().contains("state #4"));
    }
}
