//! Observed-schedule recording: reconstruct `(α, β)` from an execution
//! and audit the axioms **S1–S3** with explicit witnesses.
//!
//! The checkers on [`Schedule`] answer "does this schedule satisfy the
//! finite axiom strengthenings?" with a bare boolean.  The convergence
//! *bounds* (arXiv 2507.07263) make quantitative promises — `δ` reaches
//! the fixed point within `n·h·(w + ℓ + 1)` steps — that only hold when
//! the execution really was generated under an `(w, ℓ)`-bounded
//! schedule.  [`ScheduleTrace`] is the evidence side of that contract: a
//! recorder that an executor (or a test harness) feeds with activation
//! and data-read events, and that afterwards either certifies the
//! finite axioms for a given `(w, ℓ)` or names the first violation.
//!
//! Two entry points:
//!
//! * [`ScheduleTrace::record`] replays an existing [`Schedule`] through
//!   the recorder (used by the property tests to audit every fault
//!   profile the generator emits);
//! * [`ScheduleTrace::begin_step`] / [`ScheduleTrace::activation`] /
//!   [`ScheduleTrace::read`] record an execution incrementally, exactly
//!   as an asynchronous evaluator observes it.
//!
//! A recorded trace converts back into a [`Schedule`] via
//! [`ScheduleTrace::into_schedule`]; the round trip is lossless, which
//! the tests check property-style.

use crate::schedule::Schedule;

/// The first axiom violation found in a trace, with enough context to
/// reproduce it.  `t` is 1-based, matching [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomViolation {
    /// S1 (finite form): `node` never activated in the `window`-step
    /// span starting at time `start + 1`.
    S1 {
        /// The starved node.
        node: usize,
        /// 0-based offset of the first step of the silent window.
        start: usize,
        /// The window width `w` that was being checked.
        window: usize,
    },
    /// S2: a data read observed the present or the future
    /// (`β(t, i, j) ≥ t`).
    S2 {
        /// The time of the offending read.
        t: usize,
        /// The reading node.
        i: usize,
        /// The node read from.
        j: usize,
        /// The observed (impossible) data time.
        beta: usize,
    },
    /// S3 (finite form): a read was staler than the lag bound
    /// (`t − β(t, i, j) > ℓ`).
    S3 {
        /// The time of the offending read.
        t: usize,
        /// The reading node.
        i: usize,
        /// The node read from.
        j: usize,
        /// The observed data time.
        beta: usize,
        /// The lag bound `ℓ` that was being checked.
        lag: usize,
    },
}

impl std::fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::S1 {
                node,
                start,
                window,
            } => write!(
                f,
                "S1 violated: node {node} silent through steps {}..={} (window {window})",
                start + 1,
                start + window
            ),
            Self::S2 { t, i, j, beta } => {
                write!(f, "S2 violated: β({t}, {i}, {j}) = {beta} ≥ {t}")
            }
            Self::S3 { t, i, j, beta, lag } => write!(
                f,
                "S3 violated: β({t}, {i}, {j}) = {beta} lags {} > {lag}",
                t - beta
            ),
        }
    }
}

/// An incremental recorder for the schedule `(α, β)` an execution
/// actually followed.
#[derive(Debug, Clone)]
pub struct ScheduleTrace {
    n: usize,
    /// `activations[t-1][i]` — recorded α.
    activations: Vec<Vec<bool>>,
    /// `reads[t-1][i][j]` — recorded β, `None` until the read happens
    /// (a node that does not activate reads nothing; the reconstruction
    /// fills those cells with the freshest legal time `t − 1`).
    reads: Vec<Vec<Vec<Option<usize>>>>,
}

impl ScheduleTrace {
    /// An empty trace over `n` nodes, at time 0 (no steps recorded).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            activations: Vec::new(),
            reads: Vec::new(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// How many steps have been recorded; the trace covers times
    /// `1..=horizon()`.
    pub fn horizon(&self) -> usize {
        self.activations.len()
    }

    /// Open the next time step. Subsequent [`Self::activation`] and
    /// [`Self::read`] calls attach to it.
    pub fn begin_step(&mut self) {
        self.activations.push(vec![false; self.n]);
        self.reads.push(vec![vec![None; self.n]; self.n]);
    }

    /// Record that node `i` activated during the current step.
    pub fn activation(&mut self, i: usize) {
        let t = self.horizon();
        assert!(t > 0, "begin_step before recording events");
        self.activations[t - 1][i] = true;
    }

    /// Record that node `i` read node `j`'s state as of time `beta`
    /// during the current step.
    pub fn read(&mut self, i: usize, j: usize, beta: usize) {
        let t = self.horizon();
        assert!(t > 0, "begin_step before recording events");
        self.reads[t - 1][i][j] = Some(beta);
    }

    /// Replay a whole [`Schedule`] through a fresh recorder.
    pub fn record(schedule: &Schedule) -> Self {
        let n = schedule.node_count();
        let mut trace = Self::new(n);
        for t in 1..=schedule.horizon() {
            trace.begin_step();
            for i in 0..n {
                if schedule.activates(t, i) {
                    trace.activation(i);
                }
                for j in 0..n {
                    trace.read(i, j, schedule.data_time(t, i, j));
                }
            }
        }
        trace
    }

    /// The largest observed staleness `max (t − β)`, or 1 for a trace
    /// with no recorded reads (matching [`Schedule::max_lag`]).
    pub fn max_lag(&self) -> usize {
        let mut lag = 1;
        for (t0, per_i) in self.reads.iter().enumerate() {
            for row in per_i {
                for beta in row.iter().flatten() {
                    lag = lag.max((t0 + 1).saturating_sub(*beta));
                }
            }
        }
        lag
    }

    /// Audit the finite axioms against an activation window `w` and a
    /// staleness bound `ℓ` — the same `(w, ℓ)` the convergence bound
    /// `n·h·(w + ℓ + 1)` is computed from.  Returns the first violation
    /// in S2, S3, S1 order (pointwise checks before the windowed one).
    pub fn certify(&self, window: usize, lag: usize) -> Result<(), AxiomViolation> {
        let horizon = self.horizon();
        for t in 1..=horizon {
            for i in 0..self.n {
                for j in 0..self.n {
                    let Some(beta) = self.reads[t - 1][i][j] else {
                        continue;
                    };
                    if beta >= t {
                        return Err(AxiomViolation::S2 { t, i, j, beta });
                    }
                    if t - beta > lag {
                        return Err(AxiomViolation::S3 { t, i, j, beta, lag });
                    }
                }
            }
        }
        let window = window.max(1);
        if horizon < window {
            // Too short to contain a full window: require at least one
            // activation each, the degenerate form S1 collapses to.
            for i in 0..self.n {
                if !self.activations.iter().any(|row| row[i]) {
                    return Err(AxiomViolation::S1 {
                        node: i,
                        start: 0,
                        window,
                    });
                }
            }
            return Ok(());
        }
        for start in 0..=(horizon - window) {
            for i in 0..self.n {
                if !(start..start + window).any(|t0| self.activations[t0][i]) {
                    return Err(AxiomViolation::S1 {
                        node: i,
                        start,
                        window,
                    });
                }
            }
        }
        Ok(())
    }

    /// Reconstruct the observed [`Schedule`].  Cells with no recorded
    /// read get the freshest legal time `t − 1` (an unread cell
    /// constrains nothing, so the reconstruction picks the value that
    /// keeps every axiom the trace satisfied).
    pub fn into_schedule(self) -> Schedule {
        let horizon = self.horizon();
        let mut schedule = Schedule::synchronous(self.n, horizon);
        for t in 1..=horizon {
            for i in 0..self.n {
                schedule.set_activation(t, i, self.activations[t - 1][i]);
                for j in 0..self.n {
                    let beta = self.reads[t - 1][i][j].unwrap_or(t - 1);
                    schedule.set_data_time(t, i, j, beta);
                }
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleParams;

    #[test]
    fn recording_a_schedule_round_trips() {
        let original = Schedule::random(4, 60, ScheduleParams::default(), 7);
        let trace = ScheduleTrace::record(&original);
        assert_eq!(trace.horizon(), 60);
        assert_eq!(trace.max_lag(), original.max_lag());
        assert_eq!(trace.into_schedule(), original);
    }

    #[test]
    fn incremental_recording_matches_replay() {
        let schedule = Schedule::round_robin(3, 12);
        let mut trace = ScheduleTrace::new(3);
        for t in 1..=12 {
            trace.begin_step();
            for i in 0..3 {
                if schedule.activates(t, i) {
                    trace.activation(i);
                }
                for j in 0..3 {
                    trace.read(i, j, schedule.data_time(t, i, j));
                }
            }
        }
        assert_eq!(trace.into_schedule(), schedule);
    }

    #[test]
    fn unread_cells_reconstruct_to_fresh_data() {
        let mut trace = ScheduleTrace::new(2);
        trace.begin_step();
        trace.activation(0);
        trace.read(0, 1, 0);
        // Node 1 neither activates nor reads at t = 1.
        trace.begin_step();
        trace.activation(1);
        let schedule = trace.into_schedule();
        assert_eq!(schedule.data_time(1, 0, 1), 0);
        assert_eq!(schedule.data_time(1, 1, 0), 0, "unread → t − 1");
        assert_eq!(schedule.data_time(2, 1, 0), 1, "unread → t − 1");
        assert!(schedule.check_s2());
    }

    #[test]
    fn certify_names_the_first_violation() {
        // S2: a read from the future.
        let mut trace = ScheduleTrace::new(2);
        trace.begin_step();
        trace.activation(0);
        trace.activation(1);
        trace.read(0, 1, 3);
        let err = trace.certify(1, 5).unwrap_err();
        assert_eq!(
            err,
            AxiomViolation::S2 {
                t: 1,
                i: 0,
                j: 1,
                beta: 3
            }
        );
        assert!(err.to_string().contains("S2 violated"));

        // S3: staler than the lag bound.
        let mut trace = ScheduleTrace::new(1);
        for _ in 0..8 {
            trace.begin_step();
            trace.activation(0);
        }
        trace.read(0, 0, 1); // at t = 8: lag 7
        let err = trace.certify(1, 4).unwrap_err();
        assert_eq!(
            err,
            AxiomViolation::S3 {
                t: 8,
                i: 0,
                j: 0,
                beta: 1,
                lag: 4
            }
        );
        assert!(err.to_string().contains("lags 7 > 4"));

        // S1: a node that goes silent.
        let mut trace = ScheduleTrace::new(2);
        for t in 0..10 {
            trace.begin_step();
            trace.activation(0);
            if t < 2 {
                trace.activation(1);
            }
        }
        let err = trace.certify(3, 5).unwrap_err();
        assert_eq!(
            err,
            AxiomViolation::S1 {
                node: 1,
                start: 2,
                window: 3
            }
        );
        assert!(err.to_string().contains("node 1 silent"));
    }

    #[test]
    fn short_traces_fall_back_to_at_least_one_activation() {
        let mut trace = ScheduleTrace::new(2);
        trace.begin_step();
        trace.activation(0);
        // Horizon 1 < window 8: node 1 never activated at all.
        let err = trace.certify(8, 4).unwrap_err();
        assert!(matches!(err, AxiomViolation::S1 { node: 1, .. }));

        let mut trace = ScheduleTrace::new(2);
        trace.begin_step();
        trace.activation(0);
        trace.activation(1);
        assert!(trace.certify(8, 4).is_ok());
    }
}
