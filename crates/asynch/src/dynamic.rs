//! Dynamic networks (Section 3.2): topology changes as new problem
//! instances.
//!
//! The paper's treatment of network dynamics is deliberately simple: when
//! the topology (or a policy) changes at time `t`, the continuing
//! computation is viewed as a *fresh* instance of the routing problem whose
//! adjacency is the updated one and whose starting state is the current
//! state `δᵗ(X)` — which may now contain stale routes along paths that no
//! longer exist.  This is exactly why the convergence theorems must hold
//! from *arbitrary* states, not just states consistent with the current
//! topology.
//!
//! [`DynamicRun`] drives that model: a sequence of epochs, each with its own
//! adjacency and schedule, where each epoch starts from the previous epoch's
//! final state.

use crate::delta::{run_delta, DeltaOutcome};
use crate::schedule::Schedule;
use dbf_algebra::RoutingAlgebra;
use dbf_matrix::{AdjacencyMatrix, RoutingState};

/// One epoch of a dynamic-network run: an adjacency (the network as it is
/// during the epoch) and the schedule driving the asynchronous computation
/// within the epoch.
#[derive(Clone, Debug)]
pub struct DynamicEvent<A: RoutingAlgebra> {
    /// A label describing the change that started this epoch (for reports).
    pub label: String,
    /// The adjacency in force during the epoch.
    pub adjacency: AdjacencyMatrix<A>,
    /// The schedule driving the epoch.
    pub schedule: Schedule,
}

/// The outcome of one epoch.
#[derive(Clone, Debug)]
pub struct EpochOutcome<A: RoutingAlgebra> {
    /// The label of the epoch's triggering event.
    pub label: String,
    /// The δ outcome of the epoch.
    pub outcome: DeltaOutcome<A>,
}

/// A dynamic-network run: a starting state and a sequence of epochs.
#[derive(Clone, Debug, Default)]
pub struct DynamicRun<A: RoutingAlgebra> {
    events: Vec<DynamicEvent<A>>,
}

impl<A: RoutingAlgebra> DynamicRun<A> {
    /// An empty run.
    pub fn new() -> Self {
        Self { events: Vec::new() }
    }

    /// Append an epoch.
    pub fn push_epoch(
        &mut self,
        label: impl Into<String>,
        adjacency: AdjacencyMatrix<A>,
        schedule: Schedule,
    ) -> &mut Self {
        self.events.push(DynamicEvent {
            label: label.into(),
            adjacency,
            schedule,
        });
        self
    }

    /// The number of epochs.
    pub fn epoch_count(&self) -> usize {
        self.events.len()
    }

    /// Execute the run: each epoch starts from the previous epoch's final
    /// state (the paper's "new instance of the problem" with the current
    /// state as the new starting state).
    pub fn execute(&self, alg: &A, x0: &RoutingState<A>) -> Vec<EpochOutcome<A>> {
        let mut state = x0.clone();
        let mut outcomes = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let out = run_delta(alg, &ev.adjacency, &state, &ev.schedule);
            state = out.final_state.clone();
            outcomes.push(EpochOutcome {
                label: ev.label.clone(),
                outcome: out,
            });
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleParams;
    use dbf_algebra::prelude::*;
    use dbf_matrix::prelude::*;
    use dbf_topology::{generators, TopologyChange};

    #[test]
    fn reconvergence_after_a_link_failure() {
        // A ring loses a link; the protocol must re-converge to the line
        // distances from the stale ring state.
        let alg = BoundedHopCount::new(10);
        let ring = generators::ring(6).with_weights(|_, _| 1u64);
        let line = TopologyChange::FailLink { a: 0, b: 5 }.apply(&ring);

        let adj_ring = AdjacencyMatrix::from_topology(&ring);
        let adj_line = AdjacencyMatrix::from_topology(&line);

        let mut run = DynamicRun::new();
        run.push_epoch(
            "initial ring",
            adj_ring.clone(),
            Schedule::random(6, 300, ScheduleParams::default(), 1),
        );
        run.push_epoch(
            "link 0–5 fails",
            adj_line.clone(),
            Schedule::random(6, 400, ScheduleParams::harsh(), 2),
        );
        assert_eq!(run.epoch_count(), 2);

        let outcomes = run.execute(&alg, &RoutingState::identity(&alg, 6));
        assert!(outcomes[0].outcome.sigma_stable, "ring epoch converged");
        assert!(
            outcomes[1].outcome.sigma_stable,
            "post-failure epoch reconverged"
        );

        // After the failure the network is a line: hop distance = |i - j|.
        let reference =
            iterate_to_fixed_point(&alg, &adj_line, &RoutingState::identity(&alg, 6), 100);
        assert_eq!(outcomes[1].outcome.final_state, reference.state);
        // and the distances really did change: 0→5 is now 5 hops, not 1
        assert_eq!(outcomes[0].outcome.final_state.get(0, 5), &NatInf::fin(1));
        assert_eq!(outcomes[1].outcome.final_state.get(0, 5), &NatInf::fin(5));
    }

    #[test]
    fn reconvergence_after_adding_a_shortcut() {
        let alg = BoundedHopCount::new(12);
        let line = generators::line(7).with_weights(|_, _| 1u64);
        let mut with_chord = line.clone();
        with_chord.set_link(0, 6, 1u64);

        let mut run = DynamicRun::new();
        run.push_epoch(
            "line",
            AdjacencyMatrix::from_topology(&line),
            Schedule::random(7, 300, ScheduleParams::default(), 4),
        );
        run.push_epoch(
            "chord 0–6 added",
            AdjacencyMatrix::from_topology(&with_chord),
            Schedule::random(7, 300, ScheduleParams::default(), 5),
        );
        let outcomes = run.execute(&alg, &RoutingState::identity(&alg, 7));
        assert!(outcomes[1].outcome.sigma_stable);
        assert_eq!(outcomes[0].outcome.final_state.get(0, 6), &NatInf::fin(6));
        assert_eq!(outcomes[1].outcome.final_state.get(0, 6), &NatInf::fin(1));
        assert_eq!(outcomes[1].outcome.final_state.get(1, 6), &NatInf::fin(2));
    }

    #[test]
    fn a_partition_leaves_unreachable_destinations_invalid() {
        let alg = BoundedHopCount::new(10);
        let ring = generators::ring(4).with_weights(|_, _| 1u64);
        // Fail two links, partitioning {0,1} from {2,3}.
        let cut = TopologyChange::apply_all(
            &[
                TopologyChange::FailLink { a: 1, b: 2 },
                TopologyChange::FailLink { a: 3, b: 0 },
            ],
            &ring,
        );
        let mut run = DynamicRun::new();
        run.push_epoch(
            "ring",
            AdjacencyMatrix::from_topology(&ring),
            Schedule::synchronous(4, 30),
        );
        run.push_epoch(
            "partition",
            AdjacencyMatrix::from_topology(&cut),
            Schedule::random(4, 400, ScheduleParams::default(), 8),
        );
        let outcomes = run.execute(&alg, &RoutingState::identity(&alg, 4));
        let final_state = &outcomes[1].outcome.final_state;
        assert!(outcomes[1].outcome.sigma_stable);
        assert_eq!(
            final_state.get(0, 2),
            &NatInf::Inf,
            "0 can no longer reach 2"
        );
        assert_eq!(final_state.get(0, 1), &NatInf::fin(1), "0 still reaches 1");
        assert_eq!(final_state.get(2, 3), &NatInf::fin(1), "2 still reaches 3");
    }

    #[test]
    fn empty_runs_do_nothing() {
        let alg = BoundedHopCount::new(4);
        let run: DynamicRun<BoundedHopCount> = DynamicRun::new();
        let outcomes = run.execute(&alg, &RoutingState::identity(&alg, 3));
        assert!(outcomes.is_empty());
    }
}
