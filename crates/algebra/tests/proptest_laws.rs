//! Property-based tests for the algebraic laws of Table 1 of the paper.
//!
//! Each strategy generates arbitrary routes/edges for one of the bundled
//! algebras and asserts the laws pointwise, complementing the exhaustive /
//! sampled checkers in `dbf_algebra::properties`.

use dbf_algebra::combinators::lex::{Lex, LexEdge, LexRoute};
use dbf_algebra::prelude::*;
use proptest::prelude::*;

/// Strategy for an arbitrary `ℕ∞` route with a healthy share of the two
/// distinguished constants.
fn nat_inf() -> impl Strategy<Value = NatInf> {
    prop_oneof![
        8 => (0u64..5_000).prop_map(NatInf::fin),
        1 => Just(NatInf::ZERO),
        1 => Just(NatInf::Inf),
    ]
}

fn filter_policy() -> impl Strategy<Value = FilterPolicy> {
    let leaf = prop_oneof![
        (1u64..50).prop_map(FilterPolicy::Add),
        Just(FilterPolicy::Reject),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (0u64..100, inner.clone(), inner).prop_map(|(t, a, b)| FilterPolicy::if_below(t, a, b))
    })
}

fn stratified_route() -> impl Strategy<Value = StratifiedRoute> {
    prop_oneof![
        6 => (0u32..6, 0u64..1_000).prop_map(|(l, d)| StratifiedRoute::valid(l, d)),
        1 => Just(StratifiedRoute::Invalid),
    ]
}

fn stratified_edge() -> impl Strategy<Value = dbf_algebra::instances::stratified::StratifiedEdge> {
    use dbf_algebra::instances::stratified::StratifiedEdge;
    prop_oneof![
        (1u64..20).prop_map(StratifiedEdge::weight),
        (1u64..20, 0u32..6).prop_map(|(w, l)| StratifiedEdge::raising(w, l)),
        (1u64..20, 0u32..6).prop_map(|(w, b)| StratifiedEdge::filtering(w, b)),
    ]
}

proptest! {
    // ------------------------------------------------------------------
    // Shortest paths
    // ------------------------------------------------------------------

    #[test]
    fn shortest_choice_is_associative_commutative_selective(
        a in nat_inf(), b in nat_inf(), c in nat_inf()
    ) {
        let alg = ShortestPaths::new();
        prop_assert_eq!(
            alg.choice(&a, &alg.choice(&b, &c)),
            alg.choice(&alg.choice(&a, &b), &c)
        );
        prop_assert_eq!(alg.choice(&a, &b), alg.choice(&b, &a));
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
    }

    #[test]
    fn shortest_identity_annihilator_laws(a in nat_inf()) {
        let alg = ShortestPaths::new();
        prop_assert_eq!(alg.choice(&a, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
    }

    #[test]
    fn shortest_is_strictly_increasing_and_distributive(
        a in nat_inf(), b in nat_inf(), w in 1u64..500
    ) {
        let alg = ShortestPaths::new();
        let f = alg.edge(w);
        if !alg.is_invalid(&a) {
            prop_assert!(alg.route_lt(&a, &alg.extend(&f, &a)));
        }
        prop_assert_eq!(
            alg.extend(&f, &alg.choice(&a, &b)),
            alg.choice(&alg.extend(&f, &a), &alg.extend(&f, &b))
        );
        prop_assert_eq!(alg.extend(&f, &alg.invalid()), alg.invalid());
    }

    #[test]
    fn shortest_derived_order_is_total_and_transitive(
        a in nat_inf(), b in nat_inf(), c in nat_inf()
    ) {
        let alg = ShortestPaths::new();
        prop_assert!(alg.route_le(&a, &b) || alg.route_le(&b, &a));
        if alg.route_le(&a, &b) && alg.route_le(&b, &c) {
            prop_assert!(alg.route_le(&a, &c));
        }
    }

    // ------------------------------------------------------------------
    // Widest paths
    // ------------------------------------------------------------------

    #[test]
    fn widest_laws(a in nat_inf(), b in nat_inf(), w in 1u64..5_000) {
        let alg = WidestPaths::new();
        let f = alg.edge(w);
        // required laws
        prop_assert_eq!(alg.choice(&a, &b), alg.choice(&b, &a));
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
        prop_assert_eq!(alg.choice(&a, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
        prop_assert_eq!(alg.extend(&f, &alg.invalid()), alg.invalid());
        // increasing (never strictly)
        prop_assert!(alg.route_le(&a, &alg.extend(&f, &a)));
        // distributive
        prop_assert_eq!(
            alg.extend(&f, &alg.choice(&a, &b)),
            alg.choice(&alg.extend(&f, &a), &alg.extend(&f, &b))
        );
    }

    // ------------------------------------------------------------------
    // Bounded hop count (finite carrier)
    // ------------------------------------------------------------------

    #[test]
    fn hopcount_stays_within_carrier(limit in 1u64..32, hops in 1u64..5, a in nat_inf()) {
        let alg = BoundedHopCount::new(limit);
        let out = alg.extend(&hops, &a);
        match out {
            NatInf::Fin(h) => prop_assert!(h <= limit),
            NatInf::Inf => {}
        }
        // strictly increasing on non-invalid routes that are inside the carrier
        if let NatInf::Fin(h) = a {
            if h <= limit {
                prop_assert!(alg.route_lt(&a, &out));
            }
        }
    }

    #[test]
    fn hopcount_carrier_enumeration_is_consistent(limit in 1u64..24) {
        let alg = BoundedHopCount::new(limit);
        let all = alg.all_routes();
        prop_assert_eq!(all.len() as u64, limit + 2);
        // every enumerated route is a fixed point of choice with itself and
        // bounded by the distinguished elements
        for r in &all {
            prop_assert_eq!(alg.choice(r, r), *r);
            prop_assert!(alg.route_le(&alg.trivial(), r));
            prop_assert!(alg.route_le(r, &alg.invalid()));
        }
    }

    // ------------------------------------------------------------------
    // Most reliable paths
    // ------------------------------------------------------------------

    #[test]
    fn reliability_laws(pa in 0.0f64..=1.0, pb in 0.0f64..=1.0, pe in 0.01f64..0.99) {
        let alg = MostReliablePaths::new();
        let a = Reliability::new(pa);
        let b = Reliability::new(pb);
        let f = alg.edge(pe);
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
        prop_assert_eq!(alg.choice(&a, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
        prop_assert_eq!(alg.extend(&f, &alg.invalid()), alg.invalid());
        prop_assert!(alg.route_le(&a, &alg.extend(&f, &a)));
        if !alg.is_invalid(&a) {
            prop_assert!(alg.route_lt(&a, &alg.extend(&f, &a)));
        }
    }

    // ------------------------------------------------------------------
    // Filtered shortest paths (policy-rich)
    // ------------------------------------------------------------------

    #[test]
    fn filtered_policies_are_strictly_increasing(a in nat_inf(), pol in filter_policy()) {
        let alg = FilteredShortestPaths::new();
        prop_assert!(pol.is_structurally_strictly_increasing());
        let fa = alg.extend(&pol, &a);
        prop_assert!(alg.route_le(&a, &fa));
        if !alg.is_invalid(&a) {
            prop_assert!(alg.route_lt(&a, &fa));
        }
        prop_assert_eq!(alg.extend(&pol, &alg.invalid()), alg.invalid());
    }

    #[test]
    fn filtered_choice_laws(a in nat_inf(), b in nat_inf(), c in nat_inf()) {
        let alg = FilteredShortestPaths::new();
        prop_assert_eq!(
            alg.choice(&a, &alg.choice(&b, &c)),
            alg.choice(&alg.choice(&a, &b), &c)
        );
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
    }

    // ------------------------------------------------------------------
    // Stratified shortest paths
    // ------------------------------------------------------------------

    #[test]
    fn stratified_laws(
        a in stratified_route(),
        b in stratified_route(),
        c in stratified_route(),
        e in stratified_edge()
    ) {
        let alg = StratifiedShortestPaths::new();
        prop_assert_eq!(
            alg.choice(&a, &alg.choice(&b, &c)),
            alg.choice(&alg.choice(&a, &b), &c)
        );
        prop_assert_eq!(alg.choice(&a, &b), alg.choice(&b, &a));
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
        prop_assert_eq!(alg.choice(&a, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
        prop_assert_eq!(alg.extend(&e, &alg.invalid()), alg.invalid());
        if !alg.is_invalid(&a) {
            prop_assert!(alg.route_lt(&a, &alg.extend(&e, &a)));
        }
    }

    // ------------------------------------------------------------------
    // Lexicographic product
    // ------------------------------------------------------------------

    #[test]
    fn lex_product_laws(
        a1 in nat_inf(), a2 in nat_inf(),
        b1 in nat_inf(), b2 in nat_inf(),
        cap in 1u64..1_000, w in 1u64..100
    ) {
        // widest-then-shortest: the classic bandwidth/latency metric
        let alg = Lex::new(WidestPaths::new(), ShortestPaths::new());
        let x = LexRoute::new(a1, a2);
        let y = LexRoute::new(b1, b2);
        let f = LexEdge::new(NatInf::fin(cap), NatInf::fin(w));
        let xy = alg.choice(&x, &y);
        prop_assert!(xy == x || xy == y);
        prop_assert_eq!(alg.choice(&x, &y), alg.choice(&y, &x));
        prop_assert_eq!(alg.choice(&x, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&x, &alg.invalid()), x.clone());
        prop_assert_eq!(alg.extend(&f, &alg.invalid()), alg.invalid());
        // increasing: both components are increasing
        prop_assert!(alg.route_le(&x, &alg.extend(&f, &x)));
    }

    #[test]
    fn lex_product_of_strict_components_is_strict(
        h1 in 0u64..10, d1 in 0u64..500,
        hop in 1u64..3, w in 1u64..50
    ) {
        let alg = Lex::new(BoundedHopCount::new(10), ShortestPaths::new());
        let x = LexRoute::new(NatInf::fin(h1), NatInf::fin(d1));
        let f = LexEdge::new(hop, NatInf::fin(w));
        prop_assert!(alg.route_lt(&x, &alg.extend(&f, &x)));
    }
}

// ---------------------------------------------------------------------------
// Height: the convergence-rate theorems bound rounds by n·h, so the height
// helpers must really compute the longest strict preference chain.  The
// order-agnostic DP below is the independent witness `carrier_height`'s
// sort-and-dedup shortcut is checked against.
// ---------------------------------------------------------------------------

/// Longest strictly-decreasing preference chain in the carrier, by a
/// Bellman-Ford-style DP over `route_lt` — no reliance on the order being
/// total or on sorting.
fn longest_strict_chain<A: FiniteCarrier>(alg: &A) -> u64 {
    let routes = alg.all_routes();
    let k = routes.len();
    let mut best = vec![1u64; k];
    // Chains have at most k elements, so k relaxation passes suffice.
    for _ in 0..k {
        let mut changed = false;
        for i in 0..k {
            for j in 0..k {
                // routes[j] strictly preferred over routes[i]: a chain
                // ending at j extends by i.
                if alg.route_lt(&routes[j], &routes[i]) && best[j] + 1 > best[i] {
                    best[i] = best[j] + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    best.into_iter().max().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `carrier_height` equals the DP chain length on every bounded
    /// hop-count carrier: for a total order, distinct values and the
    /// longest strict chain coincide.
    #[test]
    fn carrier_height_is_the_longest_strict_chain(limit in 1u64..16) {
        let alg = BoundedHopCount::new(limit);
        prop_assert_eq!(carrier_height(&alg), longest_strict_chain(&alg));
        prop_assert_eq!(carrier_height(&alg), limit + 2, "carrier {{0..limit, ∞}}");
    }

    /// `route_height` is consistent with the chain structure: `h(0̄)` is
    /// the algebra height, `h(∞̄) = 1`, and height decreases by exactly
    /// one per preference step along the hop-count chain.
    #[test]
    fn route_heights_descend_the_chain(limit in 1u64..16) {
        let alg = BoundedHopCount::new(limit);
        prop_assert_eq!(route_height(&alg, &alg.trivial()), carrier_height(&alg));
        prop_assert_eq!(route_height(&alg, &alg.invalid()), 1);
        for hops in 0..limit {
            let here = route_height(&alg, &NatInf::fin(hops));
            let next = route_height(&alg, &NatInf::fin(hops + 1));
            prop_assert_eq!(here, next + 1);
        }
    }
}
