//! The direct (component-wise) product of two routing algebras — a
//! deliberately *broken* construction kept as a negative example.
//!
//! Choosing component-wise (`(a₁, b₁) ⊕ (a₂, b₂) = (a₁ ⊕ a₂, b₁ ⊕ b₂)`) is
//! associative and commutative but **not selective**: the result can be a
//! mix of the two operands (for example the minimum distance of one paired
//! with the maximum bandwidth of the other), i.e. a route that nobody
//! actually announced.  Because selectivity is one of the *required* laws of
//! Definition 1, `DirectProduct` is not a routing algebra, and the property
//! checkers are expected to reject it.  The tests and the Table 1 experiment
//! use it to demonstrate that the checkers genuinely discriminate.

use crate::algebra::{RoutingAlgebra, SampleableAlgebra};
use crate::combinators::lex::{LexEdge, LexRoute};

/// The component-wise product of two algebras (not selective; see module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectProduct<A, B> {
    /// The first component algebra.
    pub first: A,
    /// The second component algebra.
    pub second: B,
}

impl<A, B> DirectProduct<A, B> {
    /// Build the product of two algebras.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

impl<A: RoutingAlgebra, B: RoutingAlgebra> RoutingAlgebra for DirectProduct<A, B> {
    type Route = LexRoute<A::Route, B::Route>;
    type Edge = LexEdge<A::Edge, B::Edge>;

    fn choice(&self, a: &Self::Route, b: &Self::Route) -> Self::Route {
        LexRoute::new(
            self.first.choice(&a.first, &b.first),
            self.second.choice(&a.second, &b.second),
        )
    }

    fn extend(&self, f: &Self::Edge, r: &Self::Route) -> Self::Route {
        LexRoute::new(
            self.first.extend(&f.first, &r.first),
            self.second.extend(&f.second, &r.second),
        )
    }

    fn trivial(&self) -> Self::Route {
        LexRoute::new(self.first.trivial(), self.second.trivial())
    }

    fn invalid(&self) -> Self::Route {
        LexRoute::new(self.first.invalid(), self.second.invalid())
    }
}

impl<A, B> SampleableAlgebra for DirectProduct<A, B>
where
    A: SampleableAlgebra,
    B: SampleableAlgebra,
{
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<Self::Route> {
        let ra = self.first.sample_routes(seed, count);
        let rb = self.second.sample_routes(seed ^ 0xBEEF, count);
        let mut out = vec![self.trivial(), self.invalid()];
        for i in 0..count.max(2) {
            out.push(LexRoute::new(
                ra[i % ra.len()].clone(),
                rb[(i * 7 + 3) % rb.len()].clone(),
            ));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<Self::Edge> {
        let ea = self.first.sample_edges(seed, count);
        let eb = self.second.sample_edges(seed ^ 0xF00D, count);
        (0..count.max(1))
            .map(|i| LexEdge::new(ea[i % ea.len()].clone(), eb[(i * 5 + 1) % eb.len()].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::nat_inf::NatInf;
    use crate::instances::shortest::ShortestPaths;
    use crate::instances::widest::WidestPaths;
    use crate::properties;

    #[test]
    fn direct_product_violates_selectivity() {
        let alg = DirectProduct::new(WidestPaths::new(), ShortestPaths::new());
        // a is wider, b is shorter; the componentwise choice mixes them into
        // a route that neither neighbour offered.
        let a = LexRoute::new(NatInf::fin(100), NatInf::fin(9));
        let b = LexRoute::new(NatInf::fin(10), NatInf::fin(1));
        let c = alg.choice(&a, &b);
        assert_eq!(c, LexRoute::new(NatInf::fin(100), NatInf::fin(1)));
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert!(properties::check_selective(&alg, &[a, b]).is_err());
    }

    #[test]
    fn direct_product_still_satisfies_the_other_laws_on_samples() {
        let alg = DirectProduct::new(WidestPaths::new(), ShortestPaths::new());
        let routes = alg.sample_routes(71, 32);
        let edges = alg.sample_edges(71, 8);
        properties::check_associative(&alg, &routes).unwrap();
        properties::check_commutative(&alg, &routes).unwrap();
        properties::check_trivial_annihilator(&alg, &routes).unwrap();
        properties::check_invalid_identity(&alg, &routes).unwrap();
        properties::check_invalid_fixed_point(&alg, &edges).unwrap();
    }

    #[test]
    fn property_report_flags_the_violation() {
        let alg = DirectProduct::new(WidestPaths::new(), ShortestPaths::new());
        let report =
            properties::PropertyReport::analyse("direct-product (broken)", &alg, 73, 32, 8);
        assert!(!report.selective.holds());
        assert!(!report.satisfies_required_laws());
    }
}
