//! Combinators for building new routing algebras out of existing ones.
//!
//! * [`lex`] — the lexicographic product `A ⋉ B`: prefer by `A`, break ties
//!   by `B`.  This is the construction behind multi-criteria metrics such as
//!   (local-preference, path-length) or (bandwidth, delay) and is used by
//!   the BGP-like algebras.
//! * [`prod`] — the direct (component-wise) product, which in general is
//!   **not** selective and therefore not a routing algebra.  It is provided
//!   as a negative example so the property checkers have something real to
//!   reject, mirroring the paper's insistence that the axioms be checked
//!   rather than assumed.

pub mod lex;
pub mod prod;
