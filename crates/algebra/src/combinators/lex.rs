//! The lexicographic product of two routing algebras.
//!
//! Routes of `Lex<A, B>` are pairs `(a, b)`; choice prefers by the `A`
//! component and breaks ties with the `B` component.  Edge functions are
//! pairs of edge functions applied component-wise.
//!
//! The product preserves the required laws of Definition 1, preserves
//! (strict) increasingness when both components are (strictly) increasing,
//! and in general does **not** preserve distributivity — which is exactly
//! why lexicographic route selection (e.g. BGP's local-pref-then-path-length
//! rule) is a *policy-rich* construction.

use crate::algebra::{Increasing, RoutingAlgebra, SampleableAlgebra, StrictlyIncreasing};
use std::cmp::Ordering;
use std::fmt;

/// A route of the lexicographic product: a pair of component routes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LexRoute<RA, RB> {
    /// The primary (most significant) component.
    pub first: RA,
    /// The tie-breaking component.
    pub second: RB,
}

impl<RA: fmt::Debug, RB: fmt::Debug> fmt::Debug for LexRoute<RA, RB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.first, self.second)
    }
}

impl<RA, RB> LexRoute<RA, RB> {
    /// Pair two component routes.
    pub fn new(first: RA, second: RB) -> Self {
        Self { first, second }
    }
}

/// An edge of the lexicographic product: a pair of component edges.
#[derive(Clone, PartialEq, Eq)]
pub struct LexEdge<EA, EB> {
    /// The edge function applied to the primary component.
    pub first: EA,
    /// The edge function applied to the tie-breaking component.
    pub second: EB,
}

impl<EA: fmt::Debug, EB: fmt::Debug> fmt::Debug for LexEdge<EA, EB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.first, self.second)
    }
}

impl<EA, EB> LexEdge<EA, EB> {
    /// Pair two component edges.
    pub fn new(first: EA, second: EB) -> Self {
        Self { first, second }
    }
}

/// The lexicographic product `A ⋉ B` of two routing algebras.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lex<A, B> {
    /// The primary algebra.
    pub primary: A,
    /// The tie-breaking algebra.
    pub secondary: B,
}

impl<A, B> Lex<A, B> {
    /// Build the product of two algebras.
    pub fn new(primary: A, secondary: B) -> Self {
        Self { primary, secondary }
    }
}

impl<A: RoutingAlgebra, B: RoutingAlgebra> RoutingAlgebra for Lex<A, B> {
    type Route = LexRoute<A::Route, B::Route>;
    type Edge = LexEdge<A::Edge, B::Edge>;

    fn choice(&self, a: &Self::Route, b: &Self::Route) -> Self::Route {
        match self.primary.route_cmp(&a.first, &b.first) {
            Ordering::Less => a.clone(),
            Ordering::Greater => b.clone(),
            Ordering::Equal => {
                // Primary components may be equal as *preferences* only when
                // they are equal as values (route_cmp returns Equal only on
                // equality), so keeping `a.first` is canonical.
                LexRoute::new(a.first.clone(), self.secondary.choice(&a.second, &b.second))
            }
        }
    }

    fn extend(&self, f: &Self::Edge, r: &Self::Route) -> Self::Route {
        LexRoute::new(
            self.primary.extend(&f.first, &r.first),
            self.secondary.extend(&f.second, &r.second),
        )
    }

    fn trivial(&self) -> Self::Route {
        LexRoute::new(self.primary.trivial(), self.secondary.trivial())
    }

    fn invalid(&self) -> Self::Route {
        LexRoute::new(self.primary.invalid(), self.secondary.invalid())
    }
}

impl<A: Increasing, B: Increasing> Increasing for Lex<A, B> {}
impl<A: StrictlyIncreasing, B: StrictlyIncreasing> StrictlyIncreasing for Lex<A, B> {}

impl<A, B> SampleableAlgebra for Lex<A, B>
where
    A: SampleableAlgebra,
    B: SampleableAlgebra,
{
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<Self::Route> {
        let ra = self.primary.sample_routes(seed, count);
        let rb = self.secondary.sample_routes(seed ^ 0xBEEF, count);
        let mut out = vec![self.trivial(), self.invalid()];
        for i in 0..count.max(2) {
            out.push(LexRoute::new(
                ra[i % ra.len()].clone(),
                rb[(i * 7 + 3) % rb.len()].clone(),
            ));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<Self::Edge> {
        let ea = self.primary.sample_edges(seed, count);
        let eb = self.secondary.sample_edges(seed ^ 0xF00D, count);
        (0..count.max(1))
            .map(|i| LexEdge::new(ea[i % ea.len()].clone(), eb[(i * 5 + 1) % eb.len()].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::hopcount::BoundedHopCount;
    use crate::instances::nat_inf::NatInf;
    use crate::instances::shortest::ShortestPaths;
    use crate::instances::widest::WidestPaths;
    use crate::properties;

    type WidestShortest = Lex<WidestPaths, ShortestPaths>;

    fn widest_shortest() -> WidestShortest {
        Lex::new(WidestPaths::new(), ShortestPaths::new())
    }

    #[test]
    fn primary_component_dominates() {
        let alg = widest_shortest();
        // (bandwidth 100, distance 9) beats (bandwidth 10, distance 1)
        let a = LexRoute::new(NatInf::fin(100), NatInf::fin(9));
        let b = LexRoute::new(NatInf::fin(10), NatInf::fin(1));
        assert_eq!(alg.choice(&a, &b), a);
    }

    #[test]
    fn ties_break_on_secondary() {
        let alg = widest_shortest();
        let a = LexRoute::new(NatInf::fin(100), NatInf::fin(9));
        let b = LexRoute::new(NatInf::fin(100), NatInf::fin(2));
        assert_eq!(alg.choice(&a, &b), b);
    }

    #[test]
    fn extension_is_componentwise() {
        let alg = widest_shortest();
        let e = LexEdge::new(NatInf::fin(50), NatInf::fin(3));
        let r = LexRoute::new(NatInf::fin(100), NatInf::fin(9));
        let ext = alg.extend(&e, &r);
        assert_eq!(ext, LexRoute::new(NatInf::fin(50), NatInf::fin(12)));
    }

    #[test]
    fn required_laws_hold_for_widest_shortest() {
        let alg = widest_shortest();
        let routes = alg.sample_routes(61, 48);
        let edges = alg.sample_edges(61, 12);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn strictly_increasing_product_of_strictly_increasing_components() {
        let alg = Lex::new(BoundedHopCount::new(8), ShortestPaths::new());
        let routes = alg.sample_routes(67, 48);
        let edges = alg.sample_edges(67, 12);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn widest_shortest_is_not_distributive() {
        // The classic bandwidth-then-distance example: the product of two
        // distributive algebras need not be distributive.
        let alg = widest_shortest();
        // f throttles bandwidth to 10 and adds distance 1.
        let f = LexEdge::new(NatInf::fin(10), NatInf::fin(1));
        // a: bandwidth 100, distance 5 (preferred over b)
        // b: bandwidth 10, distance 1
        let a = LexRoute::new(NatInf::fin(100), NatInf::fin(5));
        let b = LexRoute::new(NatInf::fin(10), NatInf::fin(1));
        let lhs = alg.extend(&f, &alg.choice(&a, &b)); // f(a) = (10, 6)
        let rhs = alg.choice(&alg.extend(&f, &a), &alg.extend(&f, &b)); // best((10,6),(10,2)) = (10,2)
        assert_ne!(lhs, rhs);
        assert!(properties::check_distributive(&alg, &[f], &[a, b]).is_err());
    }

    #[test]
    fn debug_formats_are_paired() {
        let r = LexRoute::new(NatInf::fin(1), NatInf::fin(2));
        assert_eq!(format!("{r:?}"), "(1, 2)");
        let e = LexEdge::new(NatInf::fin(1), NatInf::fin(2));
        assert_eq!(format!("{e:?}"), "(1, 2)");
    }
}
