//! Executable checkers for the algebraic laws of Table 1 of the paper.
//!
//! The paper argues (desideratum 4, Section 1.1) that convergence conditions
//! should be *efficiently verifiable*.  For routing algebras the conditions
//! are pointwise laws over routes and edge functions, so they can be checked
//! exhaustively on finite carriers and on large deterministic samples of
//! infinite ones.  Each checker returns the first [`Violation`] found, with
//! enough detail to reproduce it; [`PropertyReport`] bundles all checks into
//! the property matrix printed by the Table 1 experiment.

use crate::algebra::{FiniteCarrier, RoutingAlgebra, SampleableAlgebra};
use std::fmt;

/// A witnessed violation of an algebraic law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The name of the violated law (as in Table 1).
    pub law: &'static str,
    /// A human-readable description of the witnessing counterexample.
    pub witness: String,
}

impl Violation {
    fn new(law: &'static str, witness: String) -> Self {
        Self { law, witness }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "law `{}` violated: {}", self.law, self.witness)
    }
}

impl std::error::Error for Violation {}

/// The result of a single law check.
pub type CheckResult = Result<(), Violation>;

/// `⊕` is associative: `a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c`.
pub fn check_associative<A: RoutingAlgebra>(alg: &A, routes: &[A::Route]) -> CheckResult {
    for a in routes {
        for b in routes {
            for c in routes {
                let lhs = alg.choice(a, &alg.choice(b, c));
                let rhs = alg.choice(&alg.choice(a, b), c);
                if lhs != rhs {
                    return Err(Violation::new(
                        "⊕ associative",
                        format!("a={a:?} b={b:?} c={c:?}: a⊕(b⊕c)={lhs:?} ≠ (a⊕b)⊕c={rhs:?}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// `⊕` is commutative: `a ⊕ b = b ⊕ a`.
pub fn check_commutative<A: RoutingAlgebra>(alg: &A, routes: &[A::Route]) -> CheckResult {
    for a in routes {
        for b in routes {
            let lhs = alg.choice(a, b);
            let rhs = alg.choice(b, a);
            if lhs != rhs {
                return Err(Violation::new(
                    "⊕ commutative",
                    format!("a={a:?} b={b:?}: a⊕b={lhs:?} ≠ b⊕a={rhs:?}"),
                ));
            }
        }
    }
    Ok(())
}

/// `⊕` is selective: `a ⊕ b ∈ {a, b}`.
pub fn check_selective<A: RoutingAlgebra>(alg: &A, routes: &[A::Route]) -> CheckResult {
    for a in routes {
        for b in routes {
            let c = alg.choice(a, b);
            if c != *a && c != *b {
                return Err(Violation::new(
                    "⊕ selective",
                    format!("a={a:?} b={b:?}: a⊕b={c:?} is neither operand"),
                ));
            }
        }
    }
    Ok(())
}

/// `0̄` is an annihilator for `⊕`: `a ⊕ 0̄ = 0̄ = 0̄ ⊕ a`.
pub fn check_trivial_annihilator<A: RoutingAlgebra>(alg: &A, routes: &[A::Route]) -> CheckResult {
    let zero = alg.trivial();
    for a in routes {
        let l = alg.choice(a, &zero);
        let r = alg.choice(&zero, a);
        if l != zero || r != zero {
            return Err(Violation::new(
                "0̄ annihilates ⊕",
                format!("a={a:?}: a⊕0̄={l:?}, 0̄⊕a={r:?}, expected 0̄={zero:?}"),
            ));
        }
    }
    Ok(())
}

/// `∞̄` is an identity for `⊕`: `a ⊕ ∞̄ = a = ∞̄ ⊕ a`.
pub fn check_invalid_identity<A: RoutingAlgebra>(alg: &A, routes: &[A::Route]) -> CheckResult {
    let inf = alg.invalid();
    for a in routes {
        let l = alg.choice(a, &inf);
        let r = alg.choice(&inf, a);
        if l != *a || r != *a {
            return Err(Violation::new(
                "∞̄ identity for ⊕",
                format!("a={a:?}: a⊕∞̄={l:?}, ∞̄⊕a={r:?}, expected a"),
            ));
        }
    }
    Ok(())
}

/// `∞̄` is a fixed point of every edge function: `f(∞̄) = ∞̄`.
pub fn check_invalid_fixed_point<A: RoutingAlgebra>(alg: &A, edges: &[A::Edge]) -> CheckResult {
    let inf = alg.invalid();
    for f in edges {
        let r = alg.extend(f, &inf);
        if r != inf {
            return Err(Violation::new(
                "f(∞̄) = ∞̄",
                format!("f={f:?}: f(∞̄)={r:?} ≠ ∞̄={inf:?}"),
            ));
        }
    }
    Ok(())
}

/// The algebra is increasing (Definition 2): `a ≤ f(a)` for all `f`, `a`.
pub fn check_increasing<A: RoutingAlgebra>(
    alg: &A,
    edges: &[A::Edge],
    routes: &[A::Route],
) -> CheckResult {
    for f in edges {
        for a in routes {
            let fa = alg.extend(f, a);
            if !alg.route_le(a, &fa) {
                return Err(Violation::new(
                    "increasing (a ≤ f(a))",
                    format!("f={f:?} a={a:?}: f(a)={fa:?} is strictly preferred to a"),
                ));
            }
        }
    }
    Ok(())
}

/// The algebra is strictly increasing (Definition 3): `a < f(a)` for all `f`
/// and all `a ≠ ∞̄`.
pub fn check_strictly_increasing<A: RoutingAlgebra>(
    alg: &A,
    edges: &[A::Edge],
    routes: &[A::Route],
) -> CheckResult {
    for f in edges {
        for a in routes {
            if alg.is_invalid(a) {
                continue;
            }
            let fa = alg.extend(f, a);
            if !alg.route_lt(a, &fa) {
                return Err(Violation::new(
                    "strictly increasing (a < f(a) for a ≠ ∞̄)",
                    format!("f={f:?} a={a:?}: f(a)={fa:?} is not strictly worse than a"),
                ));
            }
        }
    }
    Ok(())
}

/// The algebra is distributive (Equation 1): `f(a ⊕ b) = f(a) ⊕ f(b)`.
pub fn check_distributive<A: RoutingAlgebra>(
    alg: &A,
    edges: &[A::Edge],
    routes: &[A::Route],
) -> CheckResult {
    for f in edges {
        for a in routes {
            for b in routes {
                let lhs = alg.extend(f, &alg.choice(a, b));
                let rhs = alg.choice(&alg.extend(f, a), &alg.extend(f, b));
                if lhs != rhs {
                    return Err(Violation::new(
                        "distributive (f(a⊕b) = f(a)⊕f(b))",
                        format!("f={f:?} a={a:?} b={b:?}: f(a⊕b)={lhs:?} ≠ f(a)⊕f(b)={rhs:?}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Check all the *required* laws of Definition 1 at once, collecting every
/// violation rather than stopping at the first.
pub fn check_required_laws<A: RoutingAlgebra>(
    alg: &A,
    routes: &[A::Route],
    edges: &[A::Edge],
) -> Result<(), Vec<Violation>> {
    let checks = [
        check_associative(alg, routes),
        check_commutative(alg, routes),
        check_selective(alg, routes),
        check_trivial_annihilator(alg, routes),
        check_invalid_identity(alg, routes),
        check_invalid_fixed_point(alg, edges),
    ];
    let violations: Vec<Violation> = checks.into_iter().filter_map(Result::err).collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// The status of a single property in a [`PropertyReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyStatus {
    /// The property held on every checked instance.
    Holds,
    /// The property failed, with the witnessing counterexample.
    Fails(Violation),
}

impl PropertyStatus {
    /// True if the property held.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyStatus::Holds)
    }
}

impl fmt::Display for PropertyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyStatus::Holds => write!(f, "✓"),
            PropertyStatus::Fails(_) => write!(f, "✗"),
        }
    }
}

impl From<CheckResult> for PropertyStatus {
    fn from(r: CheckResult) -> Self {
        match r {
            Ok(()) => PropertyStatus::Holds,
            Err(v) => PropertyStatus::Fails(v),
        }
    }
}

/// The full property matrix for one algebra — the executable analogue of
/// Table 1 of the paper.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// A label naming the algebra the report describes.
    pub algebra: String,
    /// Number of routes the laws were checked over.
    pub routes_checked: usize,
    /// Number of edge functions the laws were checked over.
    pub edges_checked: usize,
    /// Whether the check was exhaustive (finite carrier) or sampled.
    pub exhaustive: bool,
    /// `⊕` associative.
    pub associative: PropertyStatus,
    /// `⊕` commutative.
    pub commutative: PropertyStatus,
    /// `⊕` selective.
    pub selective: PropertyStatus,
    /// `0̄` annihilates `⊕`.
    pub trivial_annihilator: PropertyStatus,
    /// `∞̄` is an identity of `⊕`.
    pub invalid_identity: PropertyStatus,
    /// `f(∞̄) = ∞̄` for all `f`.
    pub invalid_fixed_point: PropertyStatus,
    /// The algebra is increasing.
    pub increasing: PropertyStatus,
    /// The algebra is strictly increasing.
    pub strictly_increasing: PropertyStatus,
    /// The algebra is distributive.
    pub distributive: PropertyStatus,
}

impl PropertyReport {
    /// Build a report from explicit route/edge collections.
    pub fn from_samples<A: RoutingAlgebra>(
        label: impl Into<String>,
        alg: &A,
        routes: &[A::Route],
        edges: &[A::Edge],
        exhaustive: bool,
    ) -> Self {
        Self {
            algebra: label.into(),
            routes_checked: routes.len(),
            edges_checked: edges.len(),
            exhaustive,
            associative: check_associative(alg, routes).into(),
            commutative: check_commutative(alg, routes).into(),
            selective: check_selective(alg, routes).into(),
            trivial_annihilator: check_trivial_annihilator(alg, routes).into(),
            invalid_identity: check_invalid_identity(alg, routes).into(),
            invalid_fixed_point: check_invalid_fixed_point(alg, edges).into(),
            increasing: check_increasing(alg, edges, routes).into(),
            strictly_increasing: check_strictly_increasing(alg, edges, routes).into(),
            distributive: check_distributive(alg, edges, routes).into(),
        }
    }

    /// Build a report by sampling routes and edges from the algebra.
    pub fn analyse<A: SampleableAlgebra>(
        label: impl Into<String>,
        alg: &A,
        seed: u64,
        route_samples: usize,
        edge_samples: usize,
    ) -> Self {
        let routes = alg.sample_routes(seed, route_samples);
        let edges = alg.sample_edges(seed, edge_samples);
        Self::from_samples(label, alg, &routes, &edges, false)
    }

    /// Build a report by exhaustively enumerating a finite carrier, sampling
    /// only the edge functions.
    pub fn analyse_exhaustive<A: FiniteCarrier + SampleableAlgebra>(
        label: impl Into<String>,
        alg: &A,
        seed: u64,
        edge_samples: usize,
    ) -> Self {
        let routes = alg.all_routes();
        let edges = alg.sample_edges(seed, edge_samples);
        Self::from_samples(label, alg, &routes, &edges, true)
    }

    /// All required (Definition 1) laws hold.
    pub fn satisfies_required_laws(&self) -> bool {
        self.associative.holds()
            && self.commutative.holds()
            && self.selective.holds()
            && self.trivial_annihilator.holds()
            && self.invalid_identity.holds()
            && self.invalid_fixed_point.holds()
    }

    /// A single CSV-ish row used by the Table 1 experiment output.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<28} {:>6} {:>6} {:^5} {:^5} {:^5} {:^5} {:^5} {:^5} {:^5} {:^6} {:^5}",
            self.algebra,
            self.routes_checked,
            self.edges_checked,
            self.associative,
            self.commutative,
            self.selective,
            self.trivial_annihilator,
            self.invalid_identity,
            self.invalid_fixed_point,
            self.increasing,
            self.strictly_increasing,
            self.distributive,
        )
    }

    /// The header matching [`Self::summary_row`].
    pub fn summary_header() -> String {
        format!(
            "{:<28} {:>6} {:>6} {:^5} {:^5} {:^5} {:^5} {:^5} {:^5} {:^5} {:^6} {:^5}",
            "algebra",
            "routes",
            "edges",
            "assoc",
            "comm",
            "sel",
            "0̄ann",
            "∞̄id",
            "∞̄fix",
            "incr",
            "strict",
            "distr",
        )
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", Self::summary_header())?;
        writeln!(f, "{}", self.summary_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::hopcount::BoundedHopCount;
    use crate::instances::longest::LongestPaths;
    use crate::instances::shortest::ShortestPaths;
    use crate::prelude::SampleableAlgebra;

    #[test]
    fn report_for_finite_strictly_increasing_algebra() {
        let alg = BoundedHopCount::new(5);
        let report = PropertyReport::analyse_exhaustive("hopcount(5)", &alg, 1, 8);
        assert!(report.exhaustive);
        assert!(report.satisfies_required_laws());
        assert!(report.increasing.holds());
        assert!(report.strictly_increasing.holds());
        assert!(report.distributive.holds());
    }

    #[test]
    fn report_for_non_increasing_algebra() {
        let alg = LongestPaths::new();
        let report = PropertyReport::analyse("longest", &alg, 2, 48, 12);
        assert!(report.satisfies_required_laws());
        assert!(!report.increasing.holds());
        assert!(!report.strictly_increasing.holds());
    }

    #[test]
    fn violation_display_mentions_the_law() {
        let v = Violation::new("⊕ selective", "witness".to_string());
        let s = v.to_string();
        assert!(s.contains("selective"));
        assert!(s.contains("witness"));
    }

    #[test]
    fn property_status_display() {
        assert_eq!(PropertyStatus::Holds.to_string(), "✓");
        let fails = PropertyStatus::Fails(Violation::new("x", "y".into()));
        assert_eq!(fails.to_string(), "✗");
        assert!(!fails.holds());
    }

    #[test]
    fn summary_row_contains_algebra_name() {
        let alg = ShortestPaths::new();
        let report = PropertyReport::analyse("shortest-paths", &alg, 3, 32, 8);
        assert!(report.summary_row().contains("shortest-paths"));
        assert!(PropertyReport::summary_header().contains("algebra"));
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn check_required_laws_collects_violations() {
        // A deliberately broken "algebra": choice returns a constant, which
        // breaks selectivity, the annihilator and the identity laws all at
        // once.
        #[derive(Debug)]
        struct Broken;
        impl RoutingAlgebra for Broken {
            type Route = u8;
            type Edge = u8;
            fn choice(&self, _a: &u8, _b: &u8) -> u8 {
                7
            }
            fn extend(&self, f: &u8, r: &u8) -> u8 {
                f.wrapping_add(*r)
            }
            fn trivial(&self) -> u8 {
                0
            }
            fn invalid(&self) -> u8 {
                255
            }
        }
        let routes = vec![0u8, 1, 2, 255];
        let edges = vec![1u8];
        let errs = check_required_laws(&Broken, &routes, &edges).unwrap_err();
        assert!(errs.len() >= 3, "expected several violations, got {errs:?}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let alg = ShortestPaths::new();
        assert_eq!(alg.sample_routes(9, 20), alg.sample_routes(9, 20));
        assert_eq!(alg.sample_edges(9, 20), alg.sample_edges(9, 20));
    }
}
