//! The core [`RoutingAlgebra`] trait, the derived route order, and marker
//! traits for the optional algebraic laws of Table 1 of the paper.

use std::cmp::Ordering;
use std::fmt::Debug;

/// A routing algebra `(S, ⊕, F, 0̄, ∞̄)` (Definition 1 of the paper).
///
/// Implementations carry any configuration needed by the algebra (for
/// example a hop-count limit), so all operations take `&self`.
///
/// # Required laws
///
/// Every implementation must satisfy the minimal properties of Definition 1:
///
/// * `choice` (⊕) is associative, commutative and **selective**
///   (`a ⊕ b ∈ {a, b}`),
/// * [`trivial`](Self::trivial) (0̄) is an annihilator for ⊕,
/// * [`invalid`](Self::invalid) (∞̄) is an identity for ⊕,
/// * [`invalid`](Self::invalid) is a fixed point of every edge function.
///
/// These laws are *checked*, not assumed: see [`crate::properties`], which
/// provides exhaustive checkers for finite carriers and sampling checkers
/// for infinite ones.
pub trait RoutingAlgebra {
    /// The set of routes `S`.
    type Route: Clone + Eq + Debug;

    /// The representation of edge functions (policies) `f ∈ F`.
    ///
    /// An `Edge` value denotes a function `S → S`, applied with
    /// [`extend`](Self::extend).  Missing links are *not* represented here:
    /// adjacency structures use `Option<Edge>` and treat `None` as the
    /// constant-∞̄ function, exactly as the paper represents missing edges.
    type Edge: Clone + Debug;

    /// The choice operator `⊕`: returns the preferred of the two routes.
    fn choice(&self, a: &Self::Route, b: &Self::Route) -> Self::Route;

    /// Apply the edge function `f` to the route `r`, producing `f(r)`.
    fn extend(&self, f: &Self::Edge, r: &Self::Route) -> Self::Route;

    /// The trivial route `0̄` from a node to itself (the minimum of `≤`).
    fn trivial(&self) -> Self::Route;

    /// The invalid route `∞̄` (the maximum of `≤`).
    fn invalid(&self) -> Self::Route;

    /// Is `r` the invalid route?
    fn is_invalid(&self, r: &Self::Route) -> bool {
        *r == self.invalid()
    }

    /// Is `r` the trivial route?
    fn is_trivial(&self, r: &Self::Route) -> bool {
        *r == self.trivial()
    }

    /// The derived preference order: `a ≤ b ⇔ a ⊕ b = a` (smaller is
    /// better).
    fn route_le(&self, a: &Self::Route, b: &Self::Route) -> bool {
        self.choice(a, b) == *a
    }

    /// The strict derived order: `a < b ⇔ a ≤ b ∧ a ≠ b`.
    fn route_lt(&self, a: &Self::Route, b: &Self::Route) -> bool {
        a != b && self.route_le(a, b)
    }

    /// Total comparison of routes under the derived order.
    ///
    /// Because ⊕ is associative, commutative and selective, `≤` is a total
    /// order, so this is a genuine [`Ordering`].
    fn route_cmp(&self, a: &Self::Route, b: &Self::Route) -> Ordering {
        if a == b {
            Ordering::Equal
        } else if self.route_le(a, b) {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }

    /// The best (⊕-fold) of an iterator of routes; `∞̄` if empty.
    fn choice_all<I>(&self, routes: I) -> Self::Route
    where
        I: IntoIterator<Item = Self::Route>,
    {
        let mut acc = self.invalid();
        for r in routes {
            acc = self.choice(&acc, &r);
        }
        acc
    }
}

/// Extension trait giving convenient, allocation-free access to the derived
/// order as key-extraction for sorting collections of routes.
pub trait RouteOrdering: RoutingAlgebra {
    /// Sort a slice of routes from most preferred to least preferred.
    fn sort_routes(&self, routes: &mut [Self::Route]) {
        routes.sort_by(|a, b| self.route_cmp(a, b));
    }

    /// The most preferred route of a non-empty slice, or `∞̄` when empty.
    fn best_of(&self, routes: &[Self::Route]) -> Self::Route {
        self.choice_all(routes.iter().cloned())
    }

    /// True iff the slice is sorted from most to least preferred.
    fn is_sorted_by_preference(&self, routes: &[Self::Route]) -> bool {
        routes
            .windows(2)
            .all(|w| self.route_cmp(&w[0], &w[1]) != Ordering::Greater)
    }
}

impl<A: RoutingAlgebra + ?Sized> RouteOrdering for A {}

/// Marker trait: the algebra is **increasing** (Definition 2):
/// `∀ f ∈ F, a ∈ S. a ≤ f(a)`.
///
/// Increasing algebras are the ones for which the path-vector convergence
/// theorem (Theorem 11) applies once a `path` function is available.
/// Implementations assert the law; [`crate::properties::check_increasing`]
/// verifies it executably.
pub trait Increasing: RoutingAlgebra {}

/// Marker trait: the algebra is **strictly increasing** (Definition 3):
/// `∀ f ∈ F, a ∈ S \ {∞̄}. a < f(a)`.
///
/// Strictly increasing algebras with finite carriers are exactly the ones
/// for which the distance-vector convergence theorem (Theorem 7) applies.
pub trait StrictlyIncreasing: Increasing {}

/// Marker trait: the algebra is **distributive**:
/// `∀ f ∈ F, a b ∈ S. f(a ⊕ b) = f(a) ⊕ f(b)` (Equation 1 of the paper).
///
/// Distributive algebras are the classical ("policy-poor") case in which
/// Bellman-Ford computes *globally* optimal routes; policy-rich algebras
/// deliberately violate this law and only achieve local optima.
pub trait Distributive: RoutingAlgebra {}

/// An algebra whose carrier `S` is finite and can be enumerated.
///
/// Finiteness is the second hypothesis of Theorem 7 and is what makes the
/// height function `h(x) = |{y ∈ S | x ≤ y}|` of Section 4.1 well defined.
pub trait FiniteCarrier: RoutingAlgebra {
    /// Every route in `S`, in no particular order, without duplicates.
    fn all_routes(&self) -> Vec<Self::Route>;

    /// The size of the carrier, `|S|`.
    fn carrier_size(&self) -> usize {
        self.all_routes().len()
    }
}

/// An algebra able to produce representative samples of routes and edge
/// functions from a deterministic seed.
///
/// This is how infinite-carrier algebras participate in the property
/// checkers and property-based tests: the laws are checked on large sampled
/// subsets rather than exhaustively.  Samples must be deterministic in
/// `seed` so that failures are reproducible.
pub trait SampleableAlgebra: RoutingAlgebra {
    /// A deterministic sample of routes containing at least `0̄` and `∞̄`.
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<Self::Route>;

    /// A deterministic sample of edge functions.
    fn sample_edges(&self, seed: u64, count: usize) -> Vec<Self::Edge>;
}

/// A tiny, dependency-free, deterministic pseudo-random number generator
/// (SplitMix64) used by [`SampleableAlgebra`] implementations.
///
/// Using an internal generator keeps the core crate free of the `rand`
/// dependency while still giving well-distributed, reproducible samples.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniformly distributed in `[0, bound)`; `0` when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A boolean that is true with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::nat_inf::NatInf;
    use crate::instances::shortest::ShortestPaths;

    #[test]
    fn derived_order_is_total_on_samples() {
        let alg = ShortestPaths::new();
        let routes = [NatInf::fin(0), NatInf::fin(3), NatInf::fin(7), NatInf::INF];
        for a in &routes {
            for b in &routes {
                let ab = alg.route_cmp(a, b);
                let ba = alg.route_cmp(b, a);
                assert_eq!(ab, ba.reverse(), "antisymmetry of route_cmp");
                if a == b {
                    assert_eq!(ab, Ordering::Equal);
                }
            }
        }
    }

    #[test]
    fn trivial_is_minimum_invalid_is_maximum() {
        let alg = ShortestPaths::new();
        let samples = [
            NatInf::fin(0),
            NatInf::fin(1),
            NatInf::fin(100),
            NatInf::INF,
        ];
        for r in &samples {
            assert!(alg.route_le(&alg.trivial(), r), "0̄ ≤ {r:?}");
            assert!(alg.route_le(r, &alg.invalid()), "{r:?} ≤ ∞̄");
        }
    }

    #[test]
    fn choice_all_of_empty_is_invalid() {
        let alg = ShortestPaths::new();
        assert_eq!(alg.choice_all(std::iter::empty()), alg.invalid());
    }

    #[test]
    fn choice_all_picks_minimum() {
        let alg = ShortestPaths::new();
        let routes = vec![NatInf::fin(9), NatInf::fin(2), NatInf::fin(5)];
        assert_eq!(alg.choice_all(routes), NatInf::fin(2));
    }

    #[test]
    fn sort_routes_orders_by_preference() {
        let alg = ShortestPaths::new();
        let mut routes = vec![NatInf::INF, NatInf::fin(4), NatInf::fin(1)];
        alg.sort_routes(&mut routes);
        assert_eq!(routes, vec![NatInf::fin(1), NatInf::fin(4), NatInf::INF]);
        assert!(alg.is_sorted_by_preference(&routes));
    }

    #[test]
    fn best_of_empty_is_invalid() {
        let alg = ShortestPaths::new();
        assert_eq!(alg.best_of(&[]), NatInf::INF);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_below_respects_bound() {
        let mut g = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(g.next_below(17) < 17);
        }
        assert_eq!(g.next_below(0), 0);
    }
}
