//! The classical shortest-paths algebra `(ℕ∞, min, F₊, 0, ∞)` (Table 2).
//!
//! Routes are distances, the choice operator is `min`, edge functions add a
//! weight, the trivial route is distance `0` and the invalid route is `∞`.
//!
//! With all edge weights `≥ 1` the algebra is *strictly increasing* and
//! *distributive*, but its carrier is infinite — this is exactly the algebra
//! the paper uses to motivate path-vector protocols: Theorem 7 does not
//! apply (infinite carrier), and indeed plain distance-vector shortest paths
//! suffers count-to-infinity when started from arbitrary states (Section 5).

use crate::algebra::{
    Distributive, Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64, StrictlyIncreasing,
};
use crate::instances::nat_inf::NatInf;

/// The shortest-paths routing algebra.
///
/// Edge functions are additive weights.  For the algebra to be strictly
/// increasing every weight used in a network must be at least
/// [`ShortestPaths::MIN_STRICT_WEIGHT`]; [`ShortestPaths::edge`] enforces
/// this, while [`ShortestPaths::raw_edge`] permits arbitrary weights
/// (including `0`, which breaks strict monotonicity) for use in negative
/// tests and property-checker demonstrations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShortestPaths {
    _priv: (),
}

impl ShortestPaths {
    /// The smallest weight for which edge functions are strictly increasing.
    pub const MIN_STRICT_WEIGHT: u64 = 1;

    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// An additive edge of weight `w ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`; use [`Self::raw_edge`] if you deliberately need a
    /// non-increasing edge.
    pub fn edge(&self, w: u64) -> NatInf {
        assert!(
            w >= Self::MIN_STRICT_WEIGHT,
            "shortest-path edge weights must be >= 1 to keep the algebra strictly increasing; \
             use raw_edge for experimental zero-weight edges"
        );
        NatInf::fin(w)
    }

    /// An additive edge of arbitrary weight, including `0` (the identity
    /// function, which violates strict increase) and `∞` (the constant-∞
    /// filter).
    pub fn raw_edge(&self, w: NatInf) -> NatInf {
        w
    }

    /// The always-filtering edge (constant `∞` function), used to model a
    /// missing or administratively down link.
    pub fn unreachable_edge(&self) -> NatInf {
        NatInf::Inf
    }
}

impl RoutingAlgebra for ShortestPaths {
    type Route = NatInf;
    type Edge = NatInf;

    fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
        (*a).min(*b)
    }

    fn extend(&self, f: &NatInf, r: &NatInf) -> NatInf {
        // ∞ is a fixed point of every edge function.
        if r.is_inf() {
            NatInf::Inf
        } else {
            f.saturating_add(*r)
        }
    }

    fn trivial(&self) -> NatInf {
        NatInf::ZERO
    }

    fn invalid(&self) -> NatInf {
        NatInf::Inf
    }
}

// With positive weights f_w(a) = w + a > a for finite a, and distance
// addition distributes over min.
impl Increasing for ShortestPaths {}
impl StrictlyIncreasing for ShortestPaths {}
impl Distributive for ShortestPaths {}

impl SampleableAlgebra for ShortestPaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(NatInf::fin(rng.next_below(1_000)));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed ^ 0xD1F7);
        let mut out = vec![NatInf::Inf];
        while out.len() < count.max(1) {
            out.push(NatInf::fin(1 + rng.next_below(100)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn choice_is_min() {
        let alg = ShortestPaths::new();
        assert_eq!(alg.choice(&NatInf::fin(3), &NatInf::fin(8)), NatInf::fin(3));
        assert_eq!(alg.choice(&NatInf::Inf, &NatInf::fin(8)), NatInf::fin(8));
    }

    #[test]
    fn extension_adds_weight_and_fixes_infinity() {
        let alg = ShortestPaths::new();
        let f = alg.edge(4);
        assert_eq!(alg.extend(&f, &NatInf::fin(6)), NatInf::fin(10));
        assert_eq!(alg.extend(&f, &NatInf::Inf), NatInf::Inf);
        assert_eq!(
            alg.extend(&alg.unreachable_edge(), &NatInf::fin(6)),
            NatInf::Inf
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn zero_weight_edge_is_rejected() {
        let _ = ShortestPaths::new().edge(0);
    }

    #[test]
    fn raw_edge_permits_zero_weight() {
        let alg = ShortestPaths::new();
        let id = alg.raw_edge(NatInf::fin(0));
        assert_eq!(alg.extend(&id, &NatInf::fin(5)), NatInf::fin(5));
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = ShortestPaths::new();
        let routes = alg.sample_routes(7, 64);
        let edges = alg.sample_edges(7, 16);
        properties::check_required_laws(&alg, &routes, &edges)
            .expect("shortest paths satisfies the Definition 1 laws");
    }

    #[test]
    fn strictly_increasing_and_distributive_on_samples() {
        let alg = ShortestPaths::new();
        let routes = alg.sample_routes(11, 64);
        let edges = alg.sample_edges(11, 16);
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
        properties::check_distributive(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn zero_weight_edge_breaks_strict_increase() {
        let alg = ShortestPaths::new();
        let routes = alg.sample_routes(3, 32);
        let edges = vec![alg.raw_edge(NatInf::fin(0))];
        assert!(properties::check_strictly_increasing(&alg, &edges, &routes).is_err());
        // ... but it is still (non-strictly) increasing.
        properties::check_increasing(&alg, &edges, &routes).unwrap();
    }
}
