//! The most-reliable-paths algebra `([0,1], max, F_×, 0, 1)` (Table 2,
//! row 4).
//!
//! A route is the probability that every link on the path is up; the choice
//! operator is `max` (more reliable preferred), edge functions multiply by
//! the link's reliability, the trivial route has probability `1` and the
//! invalid route probability `0`.
//!
//! With link reliabilities strictly below `1` the algebra is strictly
//! increasing (every hop strictly reduces the probability) and it is
//! distributive.

use crate::algebra::{
    Distributive, Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64, StrictlyIncreasing,
};
use std::fmt;

/// A probability in `[0, 1]` with total equality (no NaN permitted), used as
/// both the route and the edge type of [`MostReliablePaths`].
#[derive(Clone, Copy, PartialEq)]
pub struct Reliability(f64);

impl Reliability {
    /// The zero probability (the invalid route).
    pub const ZERO: Reliability = Reliability(0.0);
    /// The unit probability (the trivial route).
    pub const ONE: Reliability = Reliability(1.0);

    /// Construct a reliability, clamping into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    pub fn new(p: f64) -> Self {
        assert!(!p.is_nan(), "reliability must not be NaN");
        Reliability(p.clamp(0.0, 1.0))
    }

    /// The inner probability.
    pub fn value(&self) -> f64 {
        self.0
    }
}

// `Reliability` never holds NaN (enforced by the constructor), so `PartialEq`
// is total and promoting it to `Eq`/`Ord` is sound.
impl Eq for Reliability {}

impl PartialOrd for Reliability {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Reliability {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("Reliability is never NaN")
    }
}

impl fmt::Debug for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

/// The most-reliable-paths routing algebra.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MostReliablePaths {
    _priv: (),
}

impl MostReliablePaths {
    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// An edge whose link is up with probability `p` (clamped to `[0, 1]`).
    ///
    /// For the algebra to be strictly increasing, `p` must be strictly less
    /// than `1`.
    pub fn edge(&self, p: f64) -> Reliability {
        Reliability::new(p)
    }
}

impl RoutingAlgebra for MostReliablePaths {
    type Route = Reliability;
    type Edge = Reliability;

    fn choice(&self, a: &Reliability, b: &Reliability) -> Reliability {
        *a.max(b)
    }

    fn extend(&self, f: &Reliability, r: &Reliability) -> Reliability {
        Reliability::new(f.0 * r.0)
    }

    fn trivial(&self) -> Reliability {
        Reliability::ONE
    }

    fn invalid(&self) -> Reliability {
        Reliability::ZERO
    }
}

impl Increasing for MostReliablePaths {}
impl StrictlyIncreasing for MostReliablePaths {}
impl Distributive for MostReliablePaths {}

impl SampleableAlgebra for MostReliablePaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<Reliability> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(Reliability::new(rng.next_f64()));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<Reliability> {
        let mut rng = SplitMix64::new(seed ^ 0x5E11);
        (0..count.max(1))
            // Strictly between 0 and 1 so the algebra stays strictly
            // increasing on valid routes.
            .map(|_| Reliability::new(0.05 + 0.9 * rng.next_f64()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn constructor_clamps() {
        assert_eq!(Reliability::new(2.0), Reliability::ONE);
        assert_eq!(Reliability::new(-0.5), Reliability::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn constructor_rejects_nan() {
        let _ = Reliability::new(f64::NAN);
    }

    #[test]
    fn more_reliable_routes_preferred() {
        let alg = MostReliablePaths::new();
        let hi = Reliability::new(0.9);
        let lo = Reliability::new(0.4);
        assert_eq!(alg.choice(&hi, &lo), hi);
        assert!(alg.route_lt(&hi, &lo));
    }

    #[test]
    fn extension_multiplies() {
        let alg = MostReliablePaths::new();
        let r = alg.extend(&alg.edge(0.5), &Reliability::new(0.5));
        assert!((r.value() - 0.25).abs() < 1e-12);
        assert_eq!(alg.extend(&alg.edge(0.5), &alg.invalid()), alg.invalid());
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = MostReliablePaths::new();
        let routes = alg.sample_routes(23, 64);
        let edges = alg.sample_edges(23, 16);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn strictly_increasing_with_lossy_links() {
        let alg = MostReliablePaths::new();
        let routes = alg.sample_routes(29, 64);
        let edges = alg.sample_edges(29, 16);
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn perfect_link_breaks_strict_increase() {
        let alg = MostReliablePaths::new();
        let routes = alg.sample_routes(31, 32);
        let edges = vec![alg.edge(1.0)];
        assert!(properties::check_strictly_increasing(&alg, &edges, &routes).is_err());
        properties::check_increasing(&alg, &edges, &routes).unwrap();
    }
}
