//! The longest-paths algebra `(ℕ∞, max, F₊, 0, ∞)` (Table 2, row 2).
//!
//! The choice operator is `max`, so *larger is preferred*: the trivial route
//! `0̄` is `∞` (annihilator of `max`) and the invalid route `∞̄` is `0`
//! (identity of `max`).  Edge functions add their weight to valid routes and
//! fix the invalid route.
//!
//! The algebra satisfies the required laws of Definition 1 but it is **not
//! increasing**: extending a valid route makes it numerically larger and
//! therefore *more* preferred, violating `a ≤ f(a)`.  It is included as the
//! canonical negative example — none of the convergence theorems apply, and
//! the experiments show the synchronous iteration failing to reach a fixed
//! point on cyclic topologies.

use crate::algebra::{RoutingAlgebra, SampleableAlgebra, SplitMix64};
use crate::instances::nat_inf::NatInf;

/// The longest-paths routing algebra (a non-increasing negative example).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LongestPaths {
    _priv: (),
}

impl LongestPaths {
    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// An additive edge of weight `w`.
    pub fn edge(&self, w: u64) -> NatInf {
        NatInf::fin(w)
    }
}

impl RoutingAlgebra for LongestPaths {
    type Route = NatInf;
    type Edge = NatInf;

    fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
        (*a).max(*b)
    }

    fn extend(&self, f: &NatInf, r: &NatInf) -> NatInf {
        // The invalid route (0) is a fixed point of every edge function:
        // you cannot lengthen a route that does not exist.
        if *r == NatInf::ZERO {
            NatInf::ZERO
        } else {
            f.saturating_add(*r)
        }
    }

    fn trivial(&self) -> NatInf {
        NatInf::Inf
    }

    fn invalid(&self) -> NatInf {
        NatInf::ZERO
    }
}

impl SampleableAlgebra for LongestPaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(NatInf::fin(1 + rng.next_below(1_000)));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed ^ 0xA11E);
        (0..count.max(1))
            .map(|_| NatInf::fin(1 + rng.next_below(100)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn preference_order_is_reversed() {
        let alg = LongestPaths::new();
        // larger is preferred
        assert!(alg.route_lt(&NatInf::fin(9), &NatInf::fin(3)));
        assert!(alg.route_le(&alg.trivial(), &NatInf::fin(3)));
        assert!(alg.route_le(&NatInf::fin(3), &alg.invalid()));
    }

    #[test]
    fn invalid_route_is_fixed_by_extension() {
        let alg = LongestPaths::new();
        assert_eq!(alg.extend(&alg.edge(5), &alg.invalid()), alg.invalid());
        assert_eq!(alg.extend(&alg.edge(5), &NatInf::fin(2)), NatInf::fin(7));
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = LongestPaths::new();
        let routes = alg.sample_routes(5, 64);
        let edges = alg.sample_edges(5, 16);
        properties::check_required_laws(&alg, &routes, &edges)
            .expect("longest paths satisfies the Definition 1 laws");
    }

    #[test]
    fn longest_paths_is_not_increasing() {
        let alg = LongestPaths::new();
        let routes = alg.sample_routes(9, 64);
        let edges = alg.sample_edges(9, 16);
        assert!(
            properties::check_increasing(&alg, &edges, &routes).is_err(),
            "extending a valid route makes it more preferred, so the algebra must fail the \
             increasing check"
        );
    }
}
