//! `ℕ∞` — the natural numbers extended with a point at infinity.
//!
//! This is the carrier set of the shortest-path, longest-path and
//! widest-path algebras of Table 2.  The type deliberately has *no*
//! intrinsic preference order beyond the numeric one: whether `Inf` is the
//! best or worst route depends on the algebra's choice operator (it is the
//! invalid route for shortest paths but the trivial route for longest and
//! widest paths).

use std::fmt;
use std::ops::Add;

/// A natural number or infinity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NatInf {
    /// A finite value.
    Fin(u64),
    /// The point at infinity.
    Inf,
}

impl NatInf {
    /// The infinity constant (also available as the variant `NatInf::Inf`).
    pub const INF: NatInf = NatInf::Inf;

    /// The zero constant.
    pub const ZERO: NatInf = NatInf::Fin(0);

    /// Construct a finite value.
    pub fn fin(v: u64) -> Self {
        NatInf::Fin(v)
    }

    /// Is this the point at infinity?
    pub fn is_inf(&self) -> bool {
        matches!(self, NatInf::Inf)
    }

    /// Is this a finite value?
    pub fn is_fin(&self) -> bool {
        !self.is_inf()
    }

    /// The finite value, if any.
    pub fn as_fin(&self) -> Option<u64> {
        match self {
            NatInf::Fin(v) => Some(*v),
            NatInf::Inf => None,
        }
    }

    /// Saturating addition: `∞ + x = x + ∞ = ∞`, finite values add and
    /// saturate at `∞` on overflow.
    pub fn saturating_add(self, other: NatInf) -> NatInf {
        match (self, other) {
            (NatInf::Fin(a), NatInf::Fin(b)) => match a.checked_add(b) {
                Some(s) => NatInf::Fin(s),
                None => NatInf::Inf,
            },
            _ => NatInf::Inf,
        }
    }

    /// Minimum under the numeric order (with `∞` as maximum).
    pub fn min(self, other: NatInf) -> NatInf {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum under the numeric order (with `∞` as maximum).
    pub fn max(self, other: NatInf) -> NatInf {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for NatInf {
    type Output = NatInf;

    fn add(self, rhs: NatInf) -> NatInf {
        self.saturating_add(rhs)
    }
}

impl From<u64> for NatInf {
    fn from(v: u64) -> Self {
        NatInf::Fin(v)
    }
}

impl fmt::Debug for NatInf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NatInf::Fin(v) => write!(f, "{v}"),
            NatInf::Inf => write!(f, "∞"),
        }
    }
}

impl fmt::Display for NatInf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(NatInf::fin(0) < NatInf::fin(1));
        assert!(NatInf::fin(u64::MAX) < NatInf::Inf);
        assert!(NatInf::Inf <= NatInf::Inf);
    }

    #[test]
    fn addition_is_saturating() {
        assert_eq!(NatInf::fin(2) + NatInf::fin(3), NatInf::fin(5));
        assert_eq!(NatInf::fin(2) + NatInf::Inf, NatInf::Inf);
        assert_eq!(NatInf::Inf + NatInf::fin(2), NatInf::Inf);
        assert_eq!(NatInf::Inf + NatInf::Inf, NatInf::Inf);
        assert_eq!(NatInf::fin(u64::MAX) + NatInf::fin(1), NatInf::Inf);
    }

    #[test]
    fn min_max_agree_with_ord() {
        assert_eq!(NatInf::fin(2).min(NatInf::fin(7)), NatInf::fin(2));
        assert_eq!(NatInf::fin(2).max(NatInf::fin(7)), NatInf::fin(7));
        assert_eq!(NatInf::Inf.min(NatInf::fin(7)), NatInf::fin(7));
        assert_eq!(NatInf::Inf.max(NatInf::fin(7)), NatInf::Inf);
    }

    #[test]
    fn accessors() {
        assert!(NatInf::Inf.is_inf());
        assert!(!NatInf::Inf.is_fin());
        assert_eq!(NatInf::fin(4).as_fin(), Some(4));
        assert_eq!(NatInf::Inf.as_fin(), None);
        assert_eq!(NatInf::from(9u64), NatInf::fin(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NatInf::fin(12)), "12");
        assert_eq!(format!("{}", NatInf::Inf), "∞");
        assert_eq!(format!("{:?}", NatInf::Inf), "∞");
    }
}
