//! Concrete routing algebras.
//!
//! The first four modules implement the example algebras of Table 2 of the
//! paper:
//!
//! | `S`      | `⊕`   | `F`      | `∞̄` | `0̄` | use                  | module |
//! |----------|-------|----------|-----|-----|----------------------|--------|
//! | `ℕ∞`     | `min` | `F₊`     | `∞` | `0` | shortest paths       | [`shortest`] |
//! | `ℕ∞`     | `max` | `F₊`     | `0` | `∞` | longest paths        | [`longest`] |
//! | `ℕ∞`     | `max` | `F_min`  | `0` | `∞` | widest paths         | [`widest`] |
//! | `[0,1]`  | `max` | `F_×`    | `0` | `1` | most reliable paths  | [`reliability`] |
//!
//! The remaining modules provide algebras used throughout the paper's
//! narrative and experiments:
//!
//! * [`hopcount`] — RIP-like bounded hop count: a *finite*, *strictly
//!   increasing* algebra (the hypotheses of Theorem 7);
//! * [`filtered`] — shortest paths with route filtering and conditional
//!   policies, the canonical distributivity-violating ("policy-rich")
//!   example of Section 1;
//! * [`stratified`] — the Stratified Shortest Paths algebra of which the
//!   safe-by-design algebra of Section 7 is a superset.

pub mod filtered;
pub mod hopcount;
pub mod longest;
pub mod nat_inf;
pub mod reliability;
pub mod shortest;
pub mod stratified;
pub mod widest;
