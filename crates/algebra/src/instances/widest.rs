//! The widest-paths (maximum bottleneck bandwidth) algebra
//! `(ℕ∞, max, F_min, 0, ∞)` (Table 2, row 3).
//!
//! A route is the bottleneck bandwidth of a path; the choice operator is
//! `max` (larger bandwidth preferred), edge functions take the `min` of the
//! route with the edge capacity, the trivial route is `∞` (a node reaches
//! itself with unbounded bandwidth) and the invalid route is `0`.
//!
//! The algebra is **increasing but not strictly increasing**
//! (`min(w, a) = a` whenever `a ≤ w`), and it is distributive.  It is the
//! paper's example (Section 8.1) of a non-distributive-free algebra that
//! nevertheless converges faster than the general `O(n²)` bound — and here
//! it serves as the canonical increasing-but-not-strict algebra for
//! exercising Theorem 11 through the path-vector lifting.

use crate::algebra::{Distributive, Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64};
use crate::instances::nat_inf::NatInf;

/// The widest-paths routing algebra.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WidestPaths {
    _priv: (),
}

impl WidestPaths {
    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// An edge of capacity `c` (the route is throttled to `min(c, route)`).
    pub fn edge(&self, c: u64) -> NatInf {
        NatInf::fin(c)
    }

    /// An edge of unbounded capacity (the identity on valid routes).
    pub fn unbounded_edge(&self) -> NatInf {
        NatInf::Inf
    }
}

impl RoutingAlgebra for WidestPaths {
    type Route = NatInf;
    type Edge = NatInf;

    fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
        (*a).max(*b)
    }

    fn extend(&self, f: &NatInf, r: &NatInf) -> NatInf {
        // min with the capacity; the invalid route 0 is automatically fixed.
        (*f).min(*r)
    }

    fn trivial(&self) -> NatInf {
        NatInf::Inf
    }

    fn invalid(&self) -> NatInf {
        NatInf::ZERO
    }
}

impl Increasing for WidestPaths {}
impl Distributive for WidestPaths {}

impl SampleableAlgebra for WidestPaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(NatInf::fin(1 + rng.next_below(10_000)));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed ^ 0x71DE);
        let mut out = vec![NatInf::Inf];
        while out.len() < count.max(1) {
            out.push(NatInf::fin(1 + rng.next_below(10_000)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn wider_routes_are_preferred() {
        let alg = WidestPaths::new();
        assert!(alg.route_lt(&NatInf::fin(100), &NatInf::fin(10)));
        assert_eq!(
            alg.choice(&NatInf::fin(100), &NatInf::fin(10)),
            NatInf::fin(100)
        );
    }

    #[test]
    fn extension_is_bottleneck() {
        let alg = WidestPaths::new();
        assert_eq!(
            alg.extend(&alg.edge(30), &NatInf::fin(100)),
            NatInf::fin(30)
        );
        assert_eq!(
            alg.extend(&alg.edge(300), &NatInf::fin(100)),
            NatInf::fin(100)
        );
        assert_eq!(alg.extend(&alg.edge(300), &alg.invalid()), alg.invalid());
        assert_eq!(
            alg.extend(&alg.unbounded_edge(), &NatInf::fin(7)),
            NatInf::fin(7)
        );
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = WidestPaths::new();
        let routes = alg.sample_routes(13, 64);
        let edges = alg.sample_edges(13, 16);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn increasing_but_not_strictly() {
        let alg = WidestPaths::new();
        let routes = alg.sample_routes(17, 64);
        let edges = alg.sample_edges(17, 16);
        properties::check_increasing(&alg, &edges, &routes).unwrap();
        assert!(
            properties::check_strictly_increasing(&alg, &edges, &routes).is_err(),
            "a wide edge leaves narrow routes unchanged, so strict increase must fail"
        );
    }

    #[test]
    fn distributive_on_samples() {
        let alg = WidestPaths::new();
        let routes = alg.sample_routes(19, 64);
        let edges = alg.sample_edges(19, 16);
        properties::check_distributive(&alg, &edges, &routes).unwrap();
    }
}
