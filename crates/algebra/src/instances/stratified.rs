//! The Stratified Shortest Paths algebra (Griffin, *Exploring the
//! stratified shortest-paths problem*, 2012).
//!
//! Routes live in *strata* (administrative levels); within a stratum routes
//! are compared by distance, and a lower stratum always beats a higher one.
//! Edge policies may add distance, raise the stratum, and filter routes
//! whose stratum is too high.  Section 7 of the paper notes that its
//! safe-by-design BGP-like algebra "is a superset of the Stratified Shortest
//! Paths algebra"; this module provides the base algebra itself so the
//! containment can be exercised in tests and experiments.
//!
//! Because every edge adds at least one unit of distance, the algebra is
//! strictly increasing; the stratum-raising and filtering features make it
//! non-distributive (policy-rich).

use crate::algebra::{
    Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64, StrictlyIncreasing,
};
use std::fmt;

/// A stratified route: either invalid, or a (stratum, distance) pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum StratifiedRoute {
    /// The invalid route.
    Invalid,
    /// A valid route in stratum `level` with the given distance.
    Valid {
        /// The administrative stratum (lower is better).
        level: u32,
        /// The accumulated distance within the stratum ordering.
        dist: u64,
    },
}

impl StratifiedRoute {
    /// A valid route.
    pub fn valid(level: u32, dist: u64) -> Self {
        StratifiedRoute::Valid { level, dist }
    }

    /// Is this the invalid route?
    pub fn is_invalid(&self) -> bool {
        matches!(self, StratifiedRoute::Invalid)
    }

    /// The stratum, if valid.
    pub fn level(&self) -> Option<u32> {
        match self {
            StratifiedRoute::Valid { level, .. } => Some(*level),
            StratifiedRoute::Invalid => None,
        }
    }

    /// The distance, if valid.
    pub fn dist(&self) -> Option<u64> {
        match self {
            StratifiedRoute::Valid { dist, .. } => Some(*dist),
            StratifiedRoute::Invalid => None,
        }
    }
}

impl fmt::Debug for StratifiedRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratifiedRoute::Invalid => write!(f, "⊥"),
            StratifiedRoute::Valid { level, dist } => write!(f, "L{level}:{dist}"),
        }
    }
}

/// An edge policy of the stratified algebra.
///
/// Application order: filter, then raise stratum, then add distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedEdge {
    /// If set, routes whose stratum exceeds this bound are filtered.
    pub filter_above: Option<u32>,
    /// If set, the route's stratum is raised to at least this level.
    pub raise_to: Option<u32>,
    /// The distance added by the edge (must be `≥ 1`).
    pub weight: u64,
}

impl StratifiedEdge {
    /// A plain distance-adding edge.
    pub fn weight(w: u64) -> Self {
        Self {
            filter_above: None,
            raise_to: None,
            weight: w.max(1),
        }
    }

    /// A distance-adding edge that also raises the stratum to at least
    /// `level`.
    pub fn raising(w: u64, level: u32) -> Self {
        Self {
            filter_above: None,
            raise_to: Some(level),
            weight: w.max(1),
        }
    }

    /// A distance-adding edge that filters routes whose stratum exceeds
    /// `bound`.
    pub fn filtering(w: u64, bound: u32) -> Self {
        Self {
            filter_above: Some(bound),
            raise_to: None,
            weight: w.max(1),
        }
    }
}

/// The stratified shortest-paths algebra.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StratifiedShortestPaths {
    _priv: (),
}

impl StratifiedShortestPaths {
    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl RoutingAlgebra for StratifiedShortestPaths {
    type Route = StratifiedRoute;
    type Edge = StratifiedEdge;

    fn choice(&self, a: &StratifiedRoute, b: &StratifiedRoute) -> StratifiedRoute {
        use StratifiedRoute::*;
        match (a, b) {
            (Invalid, _) => *b,
            (_, Invalid) => *a,
            (
                Valid {
                    level: la,
                    dist: da,
                },
                Valid {
                    level: lb,
                    dist: db,
                },
            ) => {
                // Lexicographic: lower stratum wins, then lower distance.
                if (la, da) <= (lb, db) {
                    *a
                } else {
                    *b
                }
            }
        }
    }

    fn extend(&self, f: &StratifiedEdge, r: &StratifiedRoute) -> StratifiedRoute {
        match r {
            StratifiedRoute::Invalid => StratifiedRoute::Invalid,
            StratifiedRoute::Valid { level, dist } => {
                if let Some(bound) = f.filter_above {
                    if *level > bound {
                        return StratifiedRoute::Invalid;
                    }
                }
                let new_level = match f.raise_to {
                    Some(l) => (*level).max(l),
                    None => *level,
                };
                StratifiedRoute::Valid {
                    level: new_level,
                    dist: dist.saturating_add(f.weight.max(1)),
                }
            }
        }
    }

    fn trivial(&self) -> StratifiedRoute {
        StratifiedRoute::Valid { level: 0, dist: 0 }
    }

    fn invalid(&self) -> StratifiedRoute {
        StratifiedRoute::Invalid
    }
}

impl Increasing for StratifiedShortestPaths {}
impl StrictlyIncreasing for StratifiedShortestPaths {}

impl SampleableAlgebra for StratifiedShortestPaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<StratifiedRoute> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(StratifiedRoute::valid(
                rng.next_below(5) as u32,
                rng.next_below(500),
            ));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<StratifiedEdge> {
        let mut rng = SplitMix64::new(seed ^ 0x57A7);
        let mut out = Vec::with_capacity(count.max(1));
        while out.len() < count.max(1) {
            let w = 1 + rng.next_below(10);
            let e = match rng.next_below(3) {
                0 => StratifiedEdge::weight(w),
                1 => StratifiedEdge::raising(w, rng.next_below(5) as u32),
                _ => StratifiedEdge::filtering(w, rng.next_below(4) as u32),
            };
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn lower_stratum_beats_shorter_distance() {
        let alg = StratifiedShortestPaths::new();
        let a = StratifiedRoute::valid(0, 100);
        let b = StratifiedRoute::valid(1, 1);
        assert_eq!(alg.choice(&a, &b), a);
        assert!(alg.route_lt(&a, &b));
    }

    #[test]
    fn within_a_stratum_distance_decides() {
        let alg = StratifiedShortestPaths::new();
        let a = StratifiedRoute::valid(2, 5);
        let b = StratifiedRoute::valid(2, 9);
        assert_eq!(alg.choice(&a, &b), a);
    }

    #[test]
    fn edges_raise_and_filter() {
        let alg = StratifiedShortestPaths::new();
        let r = StratifiedRoute::valid(1, 10);
        assert_eq!(
            alg.extend(&StratifiedEdge::raising(2, 3), &r),
            StratifiedRoute::valid(3, 12)
        );
        assert_eq!(
            alg.extend(&StratifiedEdge::filtering(2, 0), &r),
            StratifiedRoute::Invalid
        );
        assert_eq!(
            alg.extend(&StratifiedEdge::filtering(2, 1), &r),
            StratifiedRoute::valid(1, 12)
        );
        assert_eq!(
            alg.extend(&StratifiedEdge::weight(4), &StratifiedRoute::Invalid),
            StratifiedRoute::Invalid
        );
    }

    #[test]
    fn raising_does_not_lower_the_stratum() {
        let alg = StratifiedShortestPaths::new();
        let r = StratifiedRoute::valid(4, 10);
        assert_eq!(
            alg.extend(&StratifiedEdge::raising(1, 2), &r),
            StratifiedRoute::valid(4, 11),
            "raise_to below the current level must leave the level unchanged"
        );
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = StratifiedShortestPaths::new();
        let routes = alg.sample_routes(47, 64);
        let edges = alg.sample_edges(47, 24);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn strictly_increasing_on_samples() {
        let alg = StratifiedShortestPaths::new();
        let routes = alg.sample_routes(53, 64);
        let edges = alg.sample_edges(53, 24);
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn stratum_raising_violates_distributivity() {
        // A stratum-raising edge flattens the levels of both routes, so the
        // choice made before and after applying it can disagree: the classic
        // policy-rich (non-distributive) behaviour.
        let alg = StratifiedShortestPaths::new();
        let raise = StratifiedEdge::raising(1, 5);
        let a = StratifiedRoute::valid(0, 400); // preferred (lower stratum)
        let b = StratifiedRoute::valid(1, 3); // shorter but higher stratum
        let lhs = alg.extend(&raise, &alg.choice(&a, &b)); // raise(a) = L5:401
        let rhs = alg.choice(&alg.extend(&raise, &a), &alg.extend(&raise, &b)); // L5:4
        assert_eq!(lhs, StratifiedRoute::valid(5, 401));
        assert_eq!(rhs, StratifiedRoute::valid(5, 4));
        assert_ne!(lhs, rhs);
        assert!(properties::check_distributive(&alg, &[raise], &[a, b]).is_err());

        // The sampled edge set (which contains raising edges) also triggers
        // the checker.
        let routes = alg.sample_routes(53, 64);
        let edges = alg.sample_edges(53, 24);
        assert!(properties::check_distributive(&alg, &edges, &routes).is_err());
    }
}
