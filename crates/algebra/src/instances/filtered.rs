//! Shortest paths with route filtering and conditional policies — the
//! canonical **policy-rich** (distributivity-violating) algebra of
//! Section 1 of the paper.
//!
//! Edge functions are small policy programs over distance routes:
//!
//! * `Add(w)` — the plain additive edge of the shortest-paths algebra;
//! * `Reject` — route filtering (`h(r) = ∞̄` in the paper's terminology);
//! * `IfBelow { threshold, then_pol, else_pol }` — the conditional route map
//!   `f(r) = if P(r) then g(r) else h(r)` of Equation 2, with the predicate
//!   `P(r) = r < threshold` standing in for "does this route carry community
//!   17?".
//!
//! As the paper shows, such conditionals readily violate distributivity
//! (Equation 1) while preserving the *strictly increasing* property as long
//! as every leaf policy is strictly increasing — both facts are demonstrated
//! by the tests and by experiment E1.

use crate::algebra::{
    Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64, StrictlyIncreasing,
};
use crate::instances::nat_inf::NatInf;

/// A policy applied when a route is imported across an edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterPolicy {
    /// Add a fixed weight to the route (must be `≥ 1` for strict increase).
    Add(u64),
    /// Filter the route: the result is the invalid route.
    Reject,
    /// Conditional route map: if the incoming distance is strictly below
    /// `threshold` apply `then_pol`, otherwise apply `else_pol`
    /// (Equation 2 of the paper).
    IfBelow {
        /// The predicate threshold.
        threshold: u64,
        /// Policy applied when the predicate holds.
        then_pol: Box<FilterPolicy>,
        /// Policy applied when the predicate fails.
        else_pol: Box<FilterPolicy>,
    },
}

impl FilterPolicy {
    /// Convenience constructor for the conditional policy.
    pub fn if_below(threshold: u64, then_pol: FilterPolicy, else_pol: FilterPolicy) -> Self {
        FilterPolicy::IfBelow {
            threshold,
            then_pol: Box::new(then_pol),
            else_pol: Box::new(else_pol),
        }
    }

    /// True if every leaf `Add` weight is at least one, which is sufficient
    /// for the policy to be strictly increasing on valid routes.
    pub fn is_structurally_strictly_increasing(&self) -> bool {
        match self {
            FilterPolicy::Add(w) => *w >= 1,
            FilterPolicy::Reject => true,
            FilterPolicy::IfBelow {
                then_pol, else_pol, ..
            } => {
                then_pol.is_structurally_strictly_increasing()
                    && else_pol.is_structurally_strictly_increasing()
            }
        }
    }

    /// The nesting depth of the policy program (a crude complexity measure
    /// used by the benchmarks).
    pub fn depth(&self) -> usize {
        match self {
            FilterPolicy::Add(_) | FilterPolicy::Reject => 1,
            FilterPolicy::IfBelow {
                then_pol, else_pol, ..
            } => 1 + then_pol.depth().max(else_pol.depth()),
        }
    }
}

/// Shortest paths with filtering and conditional policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilteredShortestPaths {
    _priv: (),
}

impl FilteredShortestPaths {
    /// Create the algebra.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Apply a policy to a (valid, finite) distance.
    fn apply(&self, pol: &FilterPolicy, dist: u64) -> NatInf {
        match pol {
            FilterPolicy::Add(w) => NatInf::fin(dist.saturating_add(*w)),
            FilterPolicy::Reject => NatInf::Inf,
            FilterPolicy::IfBelow {
                threshold,
                then_pol,
                else_pol,
            } => {
                if dist < *threshold {
                    self.apply(then_pol, dist)
                } else {
                    self.apply(else_pol, dist)
                }
            }
        }
    }
}

impl RoutingAlgebra for FilteredShortestPaths {
    type Route = NatInf;
    type Edge = FilterPolicy;

    fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
        (*a).min(*b)
    }

    fn extend(&self, f: &FilterPolicy, r: &NatInf) -> NatInf {
        match r {
            NatInf::Inf => NatInf::Inf,
            NatInf::Fin(d) => self.apply(f, *d),
        }
    }

    fn trivial(&self) -> NatInf {
        NatInf::ZERO
    }

    fn invalid(&self) -> NatInf {
        NatInf::Inf
    }
}

// The marker impls assert the laws for policies whose leaf `Add` weights are
// all >= 1 (see `FilterPolicy::is_structurally_strictly_increasing`); the
// sampled edges below respect that invariant and the property checkers
// verify it.
impl Increasing for FilteredShortestPaths {}
impl StrictlyIncreasing for FilteredShortestPaths {}

impl SampleableAlgebra for FilteredShortestPaths {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(NatInf::fin(rng.next_below(200)));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<FilterPolicy> {
        let mut rng = SplitMix64::new(seed ^ 0xF117);
        let mut out = Vec::with_capacity(count.max(1));
        while out.len() < count.max(1) {
            let pol = match rng.next_below(4) {
                0 => FilterPolicy::Add(1 + rng.next_below(20)),
                1 => FilterPolicy::Reject,
                2 => FilterPolicy::if_below(
                    rng.next_below(100),
                    FilterPolicy::Add(1 + rng.next_below(20)),
                    FilterPolicy::Add(1 + rng.next_below(20)),
                ),
                _ => FilterPolicy::if_below(
                    rng.next_below(100),
                    FilterPolicy::Add(1 + rng.next_below(20)),
                    FilterPolicy::Reject,
                ),
            };
            out.push(pol);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn plain_add_behaves_like_shortest_paths() {
        let alg = FilteredShortestPaths::new();
        assert_eq!(
            alg.extend(&FilterPolicy::Add(3), &NatInf::fin(4)),
            NatInf::fin(7)
        );
    }

    #[test]
    fn reject_filters_routes() {
        let alg = FilteredShortestPaths::new();
        assert_eq!(
            alg.extend(&FilterPolicy::Reject, &NatInf::fin(4)),
            NatInf::Inf
        );
        assert_eq!(alg.extend(&FilterPolicy::Reject, &NatInf::Inf), NatInf::Inf);
    }

    #[test]
    fn conditional_dispatches_on_threshold() {
        let alg = FilteredShortestPaths::new();
        let pol = FilterPolicy::if_below(10, FilterPolicy::Add(1), FilterPolicy::Add(100));
        assert_eq!(alg.extend(&pol, &NatInf::fin(5)), NatInf::fin(6));
        assert_eq!(alg.extend(&pol, &NatInf::fin(50)), NatInf::fin(150));
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = FilteredShortestPaths::new();
        let routes = alg.sample_routes(37, 64);
        let edges = alg.sample_edges(37, 24);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn strictly_increasing_but_not_distributive() {
        let alg = FilteredShortestPaths::new();
        let routes = alg.sample_routes(41, 64);
        let edges = alg.sample_edges(41, 24);
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();

        // The section 1 example: the conditional policy violates Eq 1.
        // f(r) = if r < 5 then r + 100 else r + 1
        let f = FilterPolicy::if_below(5, FilterPolicy::Add(100), FilterPolicy::Add(1));
        let a = NatInf::fin(3); // P(a) holds
        let b = NatInf::fin(7); // P(b) fails
        let lhs = alg.extend(&f, &alg.choice(&a, &b)); // f(best(a,b)) = f(3) = 103
        let rhs = alg.choice(&alg.extend(&f, &a), &alg.extend(&f, &b)); // best(103, 8) = 8
        assert_ne!(lhs, rhs, "conditional policies violate distributivity");
        assert!(properties::check_distributive(&alg, &[f], &[a, b]).is_err());
    }

    #[test]
    fn conditional_of_strictly_increasing_policies_is_strictly_increasing() {
        // The closure property claimed in Section 1: if g and h are strictly
        // increasing then so is `if P then g else h`.
        let alg = FilteredShortestPaths::new();
        let g = FilterPolicy::Add(7);
        let h = FilterPolicy::Reject;
        let f = FilterPolicy::if_below(42, g, h);
        assert!(f.is_structurally_strictly_increasing());
        let routes = alg.sample_routes(43, 128);
        properties::check_strictly_increasing(&alg, &[f], &routes).unwrap();
    }

    #[test]
    fn policy_depth_is_computed() {
        let pol = FilterPolicy::if_below(
            5,
            FilterPolicy::if_below(2, FilterPolicy::Add(1), FilterPolicy::Reject),
            FilterPolicy::Add(3),
        );
        assert_eq!(pol.depth(), 3);
        assert_eq!(FilterPolicy::Reject.depth(), 1);
    }
}
