//! The bounded hop-count algebra — a **finite, strictly increasing** algebra
//! modelling RIP-style distance-vector routing.
//!
//! Section 5 of the paper notes that RIP sidesteps the count-to-infinity
//! problem by "artificially limit\[ing\] the maximum hop count to 16, hence
//! ensuring that the set S is finite".  This module is exactly that
//! construction: routes are hop counts in `{0, 1, …, limit}` plus `∞`, every
//! edge adds at least one hop, and any count exceeding the limit collapses
//! to `∞`.  It therefore satisfies both hypotheses of Theorem 7 (finite
//! carrier + strictly increasing), making it the work-horse algebra of the
//! distance-vector convergence experiments.

use crate::algebra::{
    Distributive, FiniteCarrier, Increasing, RoutingAlgebra, SampleableAlgebra, SplitMix64,
    StrictlyIncreasing,
};
use crate::instances::nat_inf::NatInf;

/// The bounded hop-count algebra with a configurable limit (RIP uses 15
/// reachable hops with 16 meaning unreachable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedHopCount {
    limit: u64,
}

impl BoundedHopCount {
    /// The classic RIP limit: paths longer than 15 hops are unreachable.
    pub const RIP_LIMIT: u64 = 15;

    /// Create the algebra with the given maximum reachable hop count.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` (the algebra would contain only `0̄` and `∞̄`
    /// and no edge could be strictly increasing on `0̄`... it can, but such a
    /// degenerate network can reach nothing, so we forbid it).
    pub fn new(limit: u64) -> Self {
        assert!(limit >= 1, "hop-count limit must be at least 1");
        Self { limit }
    }

    /// The RIP algebra (limit 15).
    pub fn rip() -> Self {
        Self::new(Self::RIP_LIMIT)
    }

    /// The configured hop limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// An edge that adds `hops ≥ 1` hops.
    ///
    /// # Panics
    ///
    /// Panics if `hops == 0`.
    pub fn edge(&self, hops: u64) -> u64 {
        assert!(hops >= 1, "hop-count edges must add at least one hop");
        hops
    }

    /// The single-hop edge (the common case).
    pub fn hop(&self) -> u64 {
        1
    }
}

impl RoutingAlgebra for BoundedHopCount {
    type Route = NatInf;
    type Edge = u64;

    fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
        (*a).min(*b)
    }

    fn extend(&self, f: &u64, r: &NatInf) -> NatInf {
        match r {
            NatInf::Inf => NatInf::Inf,
            NatInf::Fin(h) => {
                let nh = h.saturating_add(*f);
                if nh > self.limit {
                    NatInf::Inf
                } else {
                    NatInf::Fin(nh)
                }
            }
        }
    }

    fn trivial(&self) -> NatInf {
        NatInf::ZERO
    }

    fn invalid(&self) -> NatInf {
        NatInf::Inf
    }
}

impl Increasing for BoundedHopCount {}
impl StrictlyIncreasing for BoundedHopCount {}
impl Distributive for BoundedHopCount {}

impl FiniteCarrier for BoundedHopCount {
    fn all_routes(&self) -> Vec<NatInf> {
        let mut routes: Vec<NatInf> = (0..=self.limit).map(NatInf::fin).collect();
        routes.push(NatInf::Inf);
        routes
    }
}

impl SampleableAlgebra for BoundedHopCount {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<NatInf> {
        let all = self.all_routes();
        if count >= all.len() {
            return all;
        }
        let mut rng = SplitMix64::new(seed);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            out.push(NatInf::fin(rng.next_below(self.limit + 1)));
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed ^ 0x40F5);
        (0..count.max(1)).map(|_| 1 + rng.next_below(3)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn carrier_is_finite_and_complete() {
        let alg = BoundedHopCount::new(4);
        let all = alg.all_routes();
        assert_eq!(all.len(), 6); // 0..=4 plus ∞
        assert!(all.contains(&alg.trivial()));
        assert!(all.contains(&alg.invalid()));
        assert_eq!(alg.carrier_size(), 6);
    }

    #[test]
    fn extension_saturates_to_invalid_past_the_limit() {
        let alg = BoundedHopCount::rip();
        assert_eq!(alg.extend(&1, &NatInf::fin(14)), NatInf::fin(15));
        assert_eq!(alg.extend(&1, &NatInf::fin(15)), NatInf::Inf);
        assert_eq!(alg.extend(&1, &NatInf::Inf), NatInf::Inf);
        assert_eq!(alg.extend(&7, &NatInf::fin(10)), NatInf::Inf);
    }

    #[test]
    fn required_and_optional_laws_hold_exhaustively() {
        let alg = BoundedHopCount::new(6);
        let routes = alg.all_routes();
        let edges = vec![1u64, 2, 3];
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
        properties::check_distributive(&alg, &edges, &routes).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hop_edge_rejected() {
        let _ = BoundedHopCount::rip().edge(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_rejected() {
        let _ = BoundedHopCount::new(0);
    }

    #[test]
    fn rip_defaults() {
        let alg = BoundedHopCount::rip();
        assert_eq!(alg.limit(), 15);
        assert_eq!(alg.hop(), 1);
        assert_eq!(alg.carrier_size(), 17);
    }
}
