//! # dbf-algebra — routing algebras for policy-rich Bellman-Ford protocols
//!
//! This crate implements the algebraic model of Section 2 of
//! *"Asynchronous Convergence of Policy-Rich Distributed Bellman-Ford Routing
//! Protocols"* (Daggitt, Gurney & Griffin, SIGCOMM 2018).
//!
//! A **routing algebra** is a tuple `(S, ⊕, F, 0̄, ∞̄)` where
//!
//! * `S` is the set of routes,
//! * `⊕ : S × S → S` is the *choice* operator returning the preferred of two
//!   routes,
//! * `F` is a set of *edge functions* (policies) `f : S → S` which extend a
//!   route across an edge,
//! * `0̄ ∈ S` is the trivial route from a node to itself, and
//! * `∞̄ ∈ S` is the invalid route.
//!
//! The required laws (Table 1 of the paper) are that `⊕` is associative,
//! commutative and selective, `0̄` annihilates `⊕`, `∞̄` is an identity for
//! `⊕`, and `∞̄` is a fixed point of every `f ∈ F`.  The crate provides:
//!
//! * the [`RoutingAlgebra`] trait and the order `≤` derived from `⊕`
//!   ([`RoutingAlgebra::route_le`], [`RoutingAlgebra::route_cmp`]);
//! * marker traits recording which *optional* laws an algebra satisfies
//!   ([`Increasing`], [`StrictlyIncreasing`], [`Distributive`],
//!   [`FiniteCarrier`]);
//! * executable **property checkers** for every law in Table 1
//!   ([`properties`]) — the "efficiently verifiable" conditions the paper
//!   asks for (desideratum 4 of Section 1.1);
//! * the concrete algebras of Table 2 and several more
//!   ([`instances`]): shortest paths, longest paths, widest paths,
//!   most-reliable paths, bounded hop count (RIP-like), shortest paths with
//!   filtering and conditional policies, and stratified shortest paths;
//! * algebra **combinators** ([`combinators`]): lexicographic products,
//!   direct products (as a deliberately-broken negative example) and related
//!   constructions.
//!
//! ## Conventions
//!
//! Following the paper, the order derived from `⊕` is
//! `a ≤ b  ⇔  a ⊕ b = a`, so *smaller is better*: the trivial route `0̄` is
//! the minimum and the invalid route `∞̄` is the maximum.
//!
//! ## Quick example
//!
//! ```
//! use dbf_algebra::prelude::*;
//!
//! let alg = ShortestPaths::new();
//! let a = NatInf::fin(3);
//! let b = NatInf::fin(5);
//! // ⊕ is min
//! assert_eq!(alg.choice(&a, &b), a);
//! // edge functions add their weight
//! let f = alg.edge(2);
//! assert_eq!(alg.extend(&f, &a), NatInf::fin(5));
//! // the algebra is strictly increasing: a < f(a) for a ≠ ∞
//! assert!(alg.route_lt(&a, &alg.extend(&f, &a)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod combinators;
pub mod height;
pub mod instances;
pub mod properties;

pub use algebra::{
    Distributive, FiniteCarrier, Increasing, RouteOrdering, RoutingAlgebra, SampleableAlgebra,
    StrictlyIncreasing,
};
pub use height::{carrier_height, distinct_routes, route_height, HeightBound};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::algebra::{
        Distributive, FiniteCarrier, Increasing, RouteOrdering, RoutingAlgebra, SampleableAlgebra,
        StrictlyIncreasing,
    };
    pub use crate::combinators::lex::{Lex, LexEdge, LexRoute};
    pub use crate::height::{carrier_height, distinct_routes, route_height, HeightBound};
    pub use crate::instances::filtered::{FilterPolicy, FilteredShortestPaths};
    pub use crate::instances::hopcount::BoundedHopCount;
    pub use crate::instances::longest::LongestPaths;
    pub use crate::instances::nat_inf::NatInf;
    pub use crate::instances::reliability::{MostReliablePaths, Reliability};
    pub use crate::instances::shortest::ShortestPaths;
    pub use crate::instances::stratified::{StratifiedRoute, StratifiedShortestPaths};
    pub use crate::instances::widest::WidestPaths;
    pub use crate::properties::{PropertyReport, PropertyStatus, Violation};
}
