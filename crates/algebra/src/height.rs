//! Algebra **height** — the quantity the convergence-rate theorems bound
//! rounds by.
//!
//! For a finite carrier `S` the height of a route is
//! `h(x) = |{y ∈ S | x ≤ y}|`, and the height `h` *of the algebra* is the
//! maximum, `h = h(0̄) = |S|` up to duplicates — equivalently, the length
//! of the longest strictly-decreasing preference chain.  "Formally
//! Verified Convergence of Policy-Rich DBF" (arXiv 2106.01184) proves the
//! synchronous iteration σ reaches its fixed point within `n·h` rounds,
//! and the asynchronous follow-up (arXiv 2507.07263) parameterizes the
//! bound by the schedule's activation window and staleness lag.
//!
//! Heights come in two flavours here:
//!
//! * **exact** — computed from the algebra's structure (hop limits,
//!   edge-weight ranges, capacity counts), cross-checked by the
//!   brute-force counters below on small carriers;
//! * **declared** — an upper bound asserted with provenance for algebras
//!   whose carrier is impractical to enumerate (the Section 7 BGP algebra,
//!   Gao-Rexford).  A declared height still yields a sound round bound as
//!   long as the declaration dominates the true chain length.
//!
//! [`HeightBound`] carries the number together with that provenance, so
//! every predicted round bound downstream can say where its `h` came from.

use crate::algebra::FiniteCarrier;

/// An algebra height with its derivation recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeightBound {
    /// The height `h`: the length of the longest strict preference chain
    /// in the carrier (or a declared upper bound on it).
    pub height: u64,
    /// Was the height computed exactly from the algebra's structure
    /// (`true`), or declared as a provenance-carrying upper bound
    /// (`false`)?
    pub exact: bool,
    /// Where the number comes from (shown by `scenarios bounds`).
    pub provenance: &'static str,
}

impl HeightBound {
    /// A height computed exactly from the algebra's structure.
    pub fn exact(height: u64, provenance: &'static str) -> Self {
        Self {
            height,
            exact: true,
            provenance,
        }
    }

    /// A declared upper bound on the height, with provenance.
    pub fn declared(height: u64, provenance: &'static str) -> Self {
        Self {
            height,
            exact: false,
            provenance,
        }
    }
}

/// The carrier sorted from most to least preferred, duplicates removed.
///
/// The derived route order is total (⊕ is associative, commutative and
/// selective), so this is exactly the longest strictly-decreasing chain
/// the carrier admits.
pub fn distinct_routes<A: FiniteCarrier>(alg: &A) -> Vec<A::Route> {
    let mut routes = alg.all_routes();
    routes.sort_by(|a, b| alg.route_cmp(a, b));
    routes.dedup();
    routes
}

/// Brute-force height of a single route: `h(x) = |{y ∈ S | x ≤ y}|`,
/// counting distinct carrier values.
pub fn route_height<A: FiniteCarrier>(alg: &A, x: &A::Route) -> u64 {
    distinct_routes(alg)
        .iter()
        .filter(|y| alg.route_le(x, y))
        .count() as u64
}

/// Brute-force height of the whole algebra: `h = h(0̄)`, the number of
/// distinct carrier values — equivalently the longest strict chain, since
/// the derived order is total.
///
/// This is the ground truth the exact per-algebra height formulas are
/// tested against; it enumerates the carrier, so use it on small algebras
/// only.
pub fn carrier_height<A: FiniteCarrier>(alg: &A) -> u64 {
    distinct_routes(alg).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::RoutingAlgebra;
    use crate::instances::hopcount::BoundedHopCount;
    use crate::instances::nat_inf::NatInf;

    #[test]
    fn carrier_height_counts_the_longest_chain() {
        // carrier = {0, …, 6, ∞}: an 8-element chain.
        let alg = BoundedHopCount::new(6);
        assert_eq!(alg.carrier_size(), 8);
        assert_eq!(carrier_height(&alg), 8);
    }

    #[test]
    fn route_height_is_maximal_at_trivial_and_minimal_at_invalid() {
        let alg = BoundedHopCount::new(6);
        assert_eq!(route_height(&alg, &alg.trivial()), 8, "h(0̄) = h");
        assert_eq!(route_height(&alg, &alg.invalid()), 1, "h(∞̄) = 1");
        assert_eq!(route_height(&alg, &NatInf::fin(3)), 5);
    }

    #[test]
    fn route_height_is_antitone_in_preference() {
        let alg = BoundedHopCount::new(9);
        let carrier = alg.all_routes();
        for a in &carrier {
            for b in &carrier {
                if alg.route_lt(a, b) {
                    assert!(
                        route_height(&alg, a) > route_height(&alg, b),
                        "more preferred routes must be higher: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn height_bound_constructors_record_provenance() {
        let e = HeightBound::exact(8, "hop limit + 2");
        assert!(e.exact);
        assert_eq!(e.height, 8);
        let d = HeightBound::declared(30, "policy depth");
        assert!(!d.exact);
        assert_eq!(d.provenance, "policy depth");
    }
}
