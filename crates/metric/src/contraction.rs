//! Contraction checkers (Definitions 10–12) and the constructive
//! convergence bound of Lemma 2.
//!
//! Theorem 4 of the paper reduces absolute convergence of the asynchronous
//! iterate `δ` to three checkable facts about the *synchronous* operator
//! `σ` under a bounded state ultrametric `D`:
//!
//! 1. `D` is bounded;
//! 2. `σ` is **strictly contracting on orbits**:
//!    `X ≠ σ(X) ⇒ D(X, σX) > D(σX, σ²X)`;
//! 3. `σ` is **strictly contracting on its fixed point**:
//!    `X ≠ X* ⇒ D(X*, X) > D(X*, σX)`.
//!
//! This module provides executable checkers for those conditions (and for
//! the stronger "strictly contracting on every pair" property that holds in
//! the distance-vector case, Lemma 6), plus [`orbit_distance_chain`], the
//! strictly decreasing chain of Lemma 2 whose length bounds the number of
//! synchronous iterations to the fixed point.

use crate::ultrametric::{state_distance, RouteUltrametric};
use dbf_algebra::RoutingAlgebra;
use dbf_matrix::{sigma, AdjacencyMatrix, RoutingState};
use std::fmt;

/// A witnessed violation of a contraction property.
#[derive(Debug, Clone)]
pub struct ContractionViolation {
    /// Which property was violated.
    pub property: &'static str,
    /// Human-readable description of the witnessing states and distances.
    pub witness: String,
}

impl fmt::Display for ContractionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.property, self.witness)
    }
}

impl std::error::Error for ContractionViolation {}

/// Check that `σ` is strictly contracting (Lemma 6's conclusion) on every
/// pair of distinct states in the sample:
/// `X ≠ Y ⇒ D(X, Y) > D(σX, σY)`.
pub fn check_strictly_contracting<A, M>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    metric: &M,
    states: &[RoutingState<A>],
) -> Result<(), ContractionViolation>
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A>,
{
    let images: Vec<RoutingState<A>> = states.iter().map(|x| sigma(alg, adj, x)).collect();
    for (ix, x) in states.iter().enumerate() {
        for (iy, y) in states.iter().enumerate() {
            if x == y {
                continue;
            }
            let before = state_distance(metric, x, y);
            let after = state_distance(metric, &images[ix], &images[iy]);
            if after >= before {
                return Err(ContractionViolation {
                    property: "strictly contracting (D(X,Y) > D(σX,σY))",
                    witness: format!("states #{ix} and #{iy}: before={before}, after={after}"),
                });
            }
        }
    }
    Ok(())
}

/// Check that `σ` is strictly contracting **on orbits** (Definition 11) for
/// every state in the sample: `X ≠ σX ⇒ D(X, σX) > D(σX, σ²X)`.
pub fn check_strictly_contracting_on_orbits<A, M>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    metric: &M,
    states: &[RoutingState<A>],
) -> Result<(), ContractionViolation>
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A>,
{
    for (ix, x) in states.iter().enumerate() {
        let sx = sigma(alg, adj, x);
        if sx == *x {
            continue;
        }
        let ssx = sigma(alg, adj, &sx);
        let before = state_distance(metric, x, &sx);
        let after = state_distance(metric, &sx, &ssx);
        if after >= before {
            return Err(ContractionViolation {
                property: "strictly contracting on orbits (D(X,σX) > D(σX,σ²X))",
                witness: format!("state #{ix}: D(X,σX)={before}, D(σX,σ²X)={after}"),
            });
        }
    }
    Ok(())
}

/// Check that `σ` is strictly contracting **on its fixed point**
/// (Definition 12) for every state in the sample:
/// `X ≠ X* ⇒ D(X*, X) > D(X*, σX)`.
pub fn check_contracting_on_fixed_point<A, M>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    metric: &M,
    fixed_point: &RoutingState<A>,
    states: &[RoutingState<A>],
) -> Result<(), ContractionViolation>
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A>,
{
    let sfp = sigma(alg, adj, fixed_point);
    if sfp != *fixed_point {
        return Err(ContractionViolation {
            property: "fixed point",
            witness: "the supplied state X* is not actually a fixed point of σ".to_string(),
        });
    }
    for (ix, x) in states.iter().enumerate() {
        if x == fixed_point {
            continue;
        }
        let sx = sigma(alg, adj, x);
        let before = state_distance(metric, fixed_point, x);
        let after = state_distance(metric, fixed_point, &sx);
        if after >= before {
            return Err(ContractionViolation {
                property: "strictly contracting on the fixed point (D(X*,X) > D(X*,σX))",
                witness: format!("state #{ix}: D(X*,X)={before}, D(X*,σX)={after}"),
            });
        }
    }
    Ok(())
}

/// The orbit distance chain of Lemma 2: the sequence
/// `D(X, σX), D(σX, σ²X), …` computed until it reaches `0` (a fixed point)
/// or `max_steps` entries have been produced.
///
/// For a metric under which `σ` is strictly contracting on orbits this chain
/// is strictly decreasing, so its length — and therefore the number of
/// synchronous iterations to the fixed point — is at most `D(X, σX) ≤ d_max`.
pub fn orbit_distance_chain<A, M>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    metric: &M,
    x0: &RoutingState<A>,
    max_steps: usize,
) -> Vec<u64>
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A>,
{
    let mut chain = Vec::new();
    let mut cur = x0.clone();
    for _ in 0..max_steps {
        let next = sigma(alg, adj, &cur);
        let d = state_distance(metric, &cur, &next);
        if d == 0 {
            break;
        }
        chain.push(d);
        cur = next;
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::height::HeightMetric;
    use crate::path_metric::PathVectorMetric;
    use dbf_algebra::algebra::SplitMix64;
    use dbf_algebra::prelude::*;
    use dbf_algebra::{FiniteCarrier, SampleableAlgebra};
    use dbf_matrix::prelude::*;
    use dbf_paths::prelude::*;
    use dbf_topology::generators;

    /// Random (generally inconsistent) states of a finite-carrier algebra.
    fn random_hopcount_states(
        alg: &BoundedHopCount,
        n: usize,
        count: usize,
        seed: u64,
    ) -> Vec<RoutingState<BoundedHopCount>> {
        let carrier = alg.all_routes();
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                RoutingState::from_fn(n, |_i, _j| {
                    carrier[rng.next_below(carrier.len() as u64) as usize]
                })
            })
            .collect()
    }

    #[test]
    fn lemma6_distance_vector_sigma_is_strictly_contracting() {
        let alg = BoundedHopCount::new(6);
        let topo = generators::ring(4).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let metric = HeightMetric::new(alg);
        let mut states = random_hopcount_states(&alg, 4, 12, 99);
        states.push(RoutingState::identity(&alg, 4));
        check_strictly_contracting(&alg, &adj, &metric, &states).unwrap();
        check_strictly_contracting_on_orbits(&alg, &adj, &metric, &states).unwrap();
        let fp = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 4), 100);
        assert!(fp.converged);
        check_contracting_on_fixed_point(&alg, &adj, &metric, &fp.state, &states).unwrap();
    }

    #[test]
    fn lemma2_the_orbit_chain_is_strictly_decreasing_and_bounded() {
        let alg = BoundedHopCount::new(8);
        let topo = generators::line(6).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let metric = HeightMetric::new(alg);
        for (k, x0) in random_hopcount_states(&alg, 6, 6, 3)
            .into_iter()
            .chain(std::iter::once(RoutingState::identity(&alg, 6)))
            .enumerate()
        {
            let chain = orbit_distance_chain(&alg, &adj, &metric, &x0, 200);
            for w in chain.windows(2) {
                assert!(
                    w[0] > w[1],
                    "chain must strictly decrease (state {k}): {chain:?}"
                );
            }
            if let Some(first) = chain.first() {
                assert!(*first <= metric.bound());
                assert!(chain.len() as u64 <= *first, "Lemma 2 bound");
            }
        }
    }

    #[test]
    fn lemma9_and_10_path_vector_contraction_on_orbits_and_fixed_point() {
        type Pv = PathVector<ShortestPaths>;
        let pv: Pv = PathVector::new(ShortestPaths::new(), 4);
        let topo =
            generators::ring(4).with_weights(|i, j| NatInf::fin(((i * 2 + j) % 4 + 1) as u64));
        let adj = lift_topology(&pv, &topo);
        let metric = PathVectorMetric::new(pv, &adj);
        let pv: Pv = PathVector::new(ShortestPaths::new(), 4);

        // A mixture of inconsistent sampled states and the clean state.
        let sampled_routes = pv.sample_routes(5, 64);
        let mut rng = SplitMix64::new(17);
        let mut states: Vec<RoutingState<Pv>> = (0..8)
            .map(|_| {
                RoutingState::from_fn(4, |i, j| {
                    if i == j {
                        pv.trivial()
                    } else {
                        sampled_routes[rng.next_below(sampled_routes.len() as u64) as usize].clone()
                    }
                })
            })
            .collect();
        states.push(RoutingState::identity(&pv, 4));

        // Lemma 9: strictly contracting on orbits.
        check_strictly_contracting_on_orbits(&pv, &adj, &metric, &states).unwrap();

        // Lemma 10: strictly contracting on the fixed point.
        let fp = iterate_to_fixed_point(&pv, &adj, &RoutingState::identity(&pv, 4), 100);
        assert!(fp.converged);
        check_contracting_on_fixed_point(&pv, &adj, &metric, &fp.state, &states).unwrap();
    }

    #[test]
    fn a_non_increasing_algebra_fails_the_contraction_check() {
        // Shortest paths with a zero-weight (identity) edge is increasing
        // but not strictly increasing; with the height metric over a
        // *truncated* carrier this breaks strict contraction, and the
        // checker reports it.  (We use the bounded hop-count algebra with a
        // zero-hop edge to stay within a finite carrier.)
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct LazyHop;
        impl RoutingAlgebra for LazyHop {
            type Route = NatInf;
            type Edge = u64;
            fn choice(&self, a: &NatInf, b: &NatInf) -> NatInf {
                (*a).min(*b)
            }
            fn extend(&self, f: &u64, r: &NatInf) -> NatInf {
                match r {
                    NatInf::Inf => NatInf::Inf,
                    NatInf::Fin(h) => {
                        let nh = h + f;
                        if nh > 4 {
                            NatInf::Inf
                        } else {
                            NatInf::Fin(nh)
                        }
                    }
                }
            }
            fn trivial(&self) -> NatInf {
                NatInf::ZERO
            }
            fn invalid(&self) -> NatInf {
                NatInf::Inf
            }
        }
        impl FiniteCarrier for LazyHop {
            fn all_routes(&self) -> Vec<NatInf> {
                let mut v: Vec<NatInf> = (0..=4).map(NatInf::fin).collect();
                v.push(NatInf::Inf);
                v
            }
        }

        let alg = LazyHop;
        let metric = HeightMetric::new(alg);
        // Nodes 0 and 1 are joined by zero-weight (identity) edges and node
        // 2 is unreachable: stale routes towards 2 bounce between 0 and 1
        // forever without changing, so the disagreement between two such
        // states never shrinks.
        let mut topo = dbf_topology::Topology::new(3);
        topo.set_link(0, 1, 0u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let mut x = RoutingState::identity(&alg, 3);
        x.set(0, 2, NatInf::fin(1));
        x.set(1, 2, NatInf::fin(1));
        let mut y = RoutingState::identity(&alg, 3);
        y.set(0, 2, NatInf::fin(2));
        y.set(1, 2, NatInf::fin(2));
        let err = check_strictly_contracting(&alg, &adj, &metric, &[x, y]);
        assert!(
            err.is_err(),
            "zero-weight edges must break strict contraction"
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = ContractionViolation {
            property: "strictly contracting",
            witness: "states #0 and #1".to_string(),
        };
        assert!(v.to_string().contains("strictly contracting"));
        assert!(v.to_string().contains("#1"));
    }
}
