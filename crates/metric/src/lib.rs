//! # dbf-metric — ultrametrics, heights and contraction
//!
//! This crate implements the convergence machinery of the paper
//! (*"Asynchronous Convergence of Policy-Rich Distributed Bellman-Ford
//! Routing Protocols"*, Daggitt, Gurney & Griffin, SIGCOMM 2018):
//!
//! * [`ultrametric`] — the ultrametric axioms **M1–M3** (Definition 9),
//!   the lifting of a route ultrametric `d` to the state ultrametric
//!   `D(X, Y) = maxᵢⱼ d(Xᵢⱼ, Yᵢⱼ)` (Lemma 3) and executable axiom checkers;
//! * [`height`] — the distance-vector ultrametric of Section 4.1, built
//!   from the height function `h(x) = |{y ∈ S | x ≤ y}|` over a finite
//!   carrier;
//! * [`path_metric`] — the two-level path-vector metric of Section 5.2
//!   (Figure 2): the consistent-route metric `h_c / d_c` reuses the height
//!   construction over the finite set `S_c` of consistent routes, the
//!   inconsistent metric `h_i / d_i` tracks the length of the shortest
//!   inconsistent path, and the combined `d` places every inconsistent
//!   disagreement strictly above every consistent one;
//! * [`contraction`] — executable checkers for the contraction conditions of
//!   Definitions 10–12 (contracting, strictly contracting on orbits,
//!   strictly contracting on the fixed point) and the constructive
//!   convergence bound of Lemma 2 (the orbit distance chain
//!   `d(X, σX) > d(σX, σ²X) > …` is a strictly decreasing chain in ℕ and
//!   therefore bounds the number of synchronous iterations).
//!
//! Together these pieces are the executable counterpart of Theorem 4
//! (Figure 1's implication chain): exhibiting an ultrametric that is bounded
//! and under which `σ` is strictly contracting on orbits and on its fixed
//! point certifies absolute convergence of the asynchronous iterate `δ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contraction;
pub mod height;
pub mod path_metric;
pub mod ultrametric;

pub use contraction::{
    check_contracting_on_fixed_point, check_strictly_contracting,
    check_strictly_contracting_on_orbits, orbit_distance_chain, ContractionViolation,
};
pub use height::HeightMetric;
pub use path_metric::PathVectorMetric;
pub use ultrametric::{check_ultrametric_axioms, state_distance, RouteUltrametric};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::contraction::{
        check_contracting_on_fixed_point, check_strictly_contracting,
        check_strictly_contracting_on_orbits, orbit_distance_chain, ContractionViolation,
    };
    pub use crate::height::HeightMetric;
    pub use crate::path_metric::PathVectorMetric;
    pub use crate::ultrametric::{check_ultrametric_axioms, state_distance, RouteUltrametric};
}
