//! The distance-vector ultrametric of Section 4.1, built from the height
//! function over a finite carrier.
//!
//! For a finite carrier `S`, the **height** of a route is
//! `h(x) = |{y ∈ S | x ≤ y}|`: the trivial route has the maximum height
//! `H = |S|` and the invalid route has the minimum height `1`.  The route
//! distance is then
//!
//! ```text
//! d(x, y) = 0                    if x = y
//!         = max(h(x), h(y))      otherwise
//! ```
//!
//! — a disagreement involving a *desirable* route matters more than one
//! between undesirable routes, because desirable routes are the ones other
//! nodes will adopt and propagate.  Lemma 5 shows `d` is an ultrametric and
//! Lemma 6 shows `σ` is strictly contracting under the induced state
//! distance whenever the algebra is strictly increasing; both are verified
//! executably by this crate's tests and by experiment F1.

use crate::ultrametric::RouteUltrametric;
use dbf_algebra::{FiniteCarrier, RoutingAlgebra};

/// The height-based route ultrametric over a finite carrier.
#[derive(Clone, Debug)]
pub struct HeightMetric<A: RoutingAlgebra> {
    alg: A,
    /// The carrier sorted from most preferred (the trivial route) to least
    /// preferred (the invalid route).
    sorted: Vec<A::Route>,
}

impl<A: FiniteCarrier> HeightMetric<A> {
    /// Build the metric by enumerating and sorting the algebra's carrier.
    pub fn new(alg: A) -> Self {
        let mut sorted = alg.all_routes();
        sorted.sort_by(|a, b| alg.route_cmp(a, b));
        sorted.dedup();
        Self { alg, sorted }
    }
}

impl<A: RoutingAlgebra> HeightMetric<A> {
    /// Build the metric from an explicit finite set of routes (used by the
    /// path-vector metric, whose "carrier" is the finite set of consistent
    /// routes of a concrete network rather than the full algebra carrier).
    pub fn from_routes(alg: A, mut routes: Vec<A::Route>) -> Self {
        routes.sort_by(|a, b| alg.route_cmp(a, b));
        routes.dedup();
        Self {
            alg,
            sorted: routes,
        }
    }

    /// The maximum height `H = h(0̄)`.
    pub fn max_height(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// The height `h(x) = |{y | x ≤ y}|` of a route.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the carrier the metric was built from.
    pub fn height(&self, x: &A::Route) -> u64 {
        let idx = self
            .sorted
            .binary_search_by(|probe| self.alg.route_cmp(probe, x))
            .unwrap_or_else(|_| panic!("route {x:?} is not in the carrier of this height metric"));
        (self.sorted.len() - idx) as u64
    }

    /// Does the carrier contain this route?
    pub fn contains(&self, x: &A::Route) -> bool {
        self.sorted
            .binary_search_by(|probe| self.alg.route_cmp(probe, x))
            .is_ok()
    }

    /// The carrier, sorted from most to least preferred.
    pub fn carrier(&self) -> &[A::Route] {
        &self.sorted
    }

    /// The underlying algebra.
    pub fn algebra(&self) -> &A {
        &self.alg
    }
}

impl<A: RoutingAlgebra> RouteUltrametric<A> for HeightMetric<A> {
    fn route_distance(&self, x: &A::Route, y: &A::Route) -> u64 {
        if x == y {
            0
        } else {
            self.height(x).max(self.height(y))
        }
    }

    fn bound(&self) -> u64 {
        self.max_height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ultrametric::check_ultrametric_axioms;
    use dbf_algebra::prelude::*;

    fn metric(limit: u64) -> HeightMetric<BoundedHopCount> {
        HeightMetric::new(BoundedHopCount::new(limit))
    }

    #[test]
    fn heights_of_distinguished_routes() {
        let m = metric(6);
        let alg = BoundedHopCount::new(6);
        // carrier = {0,…,6, ∞}: 8 routes
        assert_eq!(m.max_height(), 8);
        assert_eq!(m.height(&alg.trivial()), 8, "h(0̄) = H");
        assert_eq!(m.height(&alg.invalid()), 1, "h(∞̄) = 1");
        assert_eq!(m.height(&NatInf::fin(3)), 5);
        assert!(m.contains(&NatInf::fin(6)));
        assert!(!m.contains(&NatInf::fin(7)));
        assert_eq!(m.carrier().len(), 8);
        assert_eq!(m.algebra().limit(), 6);
    }

    #[test]
    fn heights_decrease_as_preference_decreases() {
        let m = metric(9);
        let alg = BoundedHopCount::new(9);
        let carrier = alg.all_routes();
        for a in &carrier {
            for b in &carrier {
                if alg.route_lt(a, b) {
                    assert!(
                        m.height(a) > m.height(b),
                        "more preferred routes must be higher: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_follows_the_paper_definition() {
        let m = metric(6);
        assert_eq!(m.route_distance(&NatInf::fin(2), &NatInf::fin(2)), 0);
        // d(x, y) = max(h(x), h(y)) = h(best of the two)
        assert_eq!(
            m.route_distance(&NatInf::fin(2), &NatInf::Inf),
            m.height(&NatInf::fin(2))
        );
        assert_eq!(
            m.route_distance(&NatInf::fin(2), &NatInf::fin(5)),
            m.height(&NatInf::fin(2))
        );
        assert!(
            m.route_distance(&NatInf::fin(0), &NatInf::fin(1))
                > m.route_distance(&NatInf::fin(5), &NatInf::fin(6))
        );
    }

    #[test]
    fn the_height_metric_is_a_bounded_ultrametric() {
        // Lemma 5, exhaustively on the whole carrier.
        let m = metric(7);
        let carrier = BoundedHopCount::new(7).all_routes();
        check_ultrametric_axioms::<BoundedHopCount, _>(&m, &carrier).unwrap();
    }

    #[test]
    #[should_panic(expected = "not in the carrier")]
    fn heights_of_foreign_routes_panic() {
        let m = metric(3);
        let _ = m.height(&NatInf::fin(200));
    }

    #[test]
    fn from_routes_builds_a_metric_over_an_explicit_set() {
        let alg = ShortestPaths::new();
        let m = HeightMetric::from_routes(
            alg,
            vec![
                NatInf::Inf,
                NatInf::fin(10),
                NatInf::fin(3),
                NatInf::fin(10),
            ],
        );
        // deduplicated and sorted: [3, 10, ∞]
        assert_eq!(m.max_height(), 3);
        assert_eq!(m.height(&NatInf::fin(3)), 3);
        assert_eq!(m.height(&NatInf::fin(10)), 2);
        assert_eq!(m.height(&NatInf::Inf), 1);
    }
}
