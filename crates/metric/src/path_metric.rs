//! The two-level path-vector metric of Section 5.2 (Figure 2).
//!
//! For path algebras the carrier may be infinite, so the height construction
//! of Section 4.1 cannot be applied to all of `S`.  The paper's insight is
//! that the set of **consistent** routes `S_c = { weight(p) | p ∈ 𝒫 }` *is*
//! finite (simple paths are), and that inconsistent routes can only survive
//! an application of `σ` by growing their path, so the length of the
//! shortest inconsistent path strictly increases each round until none are
//! left.  The metric therefore has two levels:
//!
//! * between two consistent routes, the distance is the Section 4.1 height
//!   metric `d_c` computed over `S_c`;
//! * if either route is inconsistent, the distance is `H_c + d_i`, where
//!   `d_i(x, y) = max(h_i(x), h_i(y))` and
//!   `h_i(x) = 1` for consistent `x` and `(n + 1) − length(path(x))`
//!   otherwise.
//!
//! Adding `H_c` ensures every "inconsistent" disagreement is strictly larger
//! than every "consistent" one, which is what lets the convergence proof
//! first flush all inconsistent routes and then fall back to the
//! distance-vector argument.

use crate::height::HeightMetric;
use crate::ultrametric::RouteUltrametric;
use dbf_matrix::AdjacencyMatrix;
use dbf_paths::enumerate::all_simple_paths_to;
use dbf_paths::path::Path;
use dbf_paths::path_algebra::{is_consistent, path_weight, PathAlgebra};

/// The combined consistent/inconsistent route metric for a path algebra over
/// a concrete network (adjacency).
pub struct PathVectorMetric<P: PathAlgebra> {
    alg: P,
    adj: AdjacencyMatrix<P>,
    nodes: usize,
    consistent: HeightMetric<P>,
}

impl<P: PathAlgebra + Clone> PathVectorMetric<P> {
    /// Build the metric for a path algebra over the given adjacency.
    ///
    /// Enumerates every simple path of the network to materialise `S_c`;
    /// exponential in the worst case, intended for the reference networks
    /// used in tests and experiments.
    pub fn new(alg: P, adj: &AdjacencyMatrix<P>) -> Self {
        let n = adj.node_count();
        let mut sc: Vec<P::Route> = vec![alg.invalid(), alg.trivial()];
        for dest in 0..n {
            for p in all_simple_paths_to(dest, n, |a, b| adj.get(a, b).is_some()) {
                let w = path_weight(&alg, &Path::Simple(p), |a, b| adj.get(a, b).cloned());
                sc.push(w);
            }
        }
        let consistent = HeightMetric::from_routes(alg.clone(), sc);
        Self {
            alg,
            adj: adj.clone(),
            nodes: n,
            consistent,
        }
    }
}

impl<P: PathAlgebra> PathVectorMetric<P> {
    /// Is the route consistent with the network (Definition 15)?
    pub fn is_consistent(&self, r: &P::Route) -> bool {
        is_consistent(&self.alg, r, |a, b| self.adj.get(a, b).cloned())
    }

    /// The number of distinct consistent routes `|S_c|` (the maximum
    /// consistent height `H_c`).
    pub fn consistent_height_max(&self) -> u64 {
        self.consistent.max_height()
    }

    /// The maximum inconsistent height `H_i = n + 1`.
    pub fn inconsistent_height_max(&self) -> u64 {
        self.nodes as u64 + 1
    }

    /// The consistent height `h_c` of a consistent route.
    ///
    /// # Panics
    ///
    /// Panics if the route is not consistent with the network.
    pub fn consistent_height(&self, r: &P::Route) -> u64 {
        assert!(
            self.is_consistent(r),
            "h_c is only defined on consistent routes"
        );
        self.consistent.height(r)
    }

    /// The inconsistent height `h_i`: `1` for consistent routes and
    /// `(n + 1) − length(path(x))` for inconsistent ones.
    pub fn inconsistent_height(&self, r: &P::Route) -> u64 {
        if self.is_consistent(r) {
            1
        } else {
            let len = self
                .alg
                .path_of(r)
                .len()
                .expect("inconsistent routes are valid (P1), so their path is not ⊥")
                as u64;
            (self.nodes as u64 + 1).saturating_sub(len)
        }
    }

    /// The inconsistent distance `d_i(x, y) = max(h_i(x), h_i(y))`.
    ///
    /// Not a true ultrametric on its own (it violates M1); it is only ever
    /// used inside [`RouteUltrametric::route_distance`] on unequal routes.
    pub fn inconsistent_distance(&self, x: &P::Route, y: &P::Route) -> u64 {
        self.inconsistent_height(x).max(self.inconsistent_height(y))
    }

    /// The consistent distance `d_c` (the Section 4.1 metric over `S_c`).
    pub fn consistent_distance(&self, x: &P::Route, y: &P::Route) -> u64 {
        self.consistent.route_distance(x, y)
    }

    /// The set `S_c` of consistent routes, sorted from most to least
    /// preferred.
    pub fn consistent_routes(&self) -> &[P::Route] {
        self.consistent.carrier()
    }

    /// The underlying algebra.
    pub fn algebra(&self) -> &P {
        &self.alg
    }
}

impl<P: PathAlgebra> RouteUltrametric<P> for PathVectorMetric<P> {
    fn route_distance(&self, x: &P::Route, y: &P::Route) -> u64 {
        if x == y {
            return 0;
        }
        if self.is_consistent(x) && self.is_consistent(y) {
            self.consistent_distance(x, y)
        } else {
            self.consistent_height_max() + self.inconsistent_distance(x, y)
        }
    }

    fn bound(&self) -> u64 {
        self.consistent_height_max() + self.inconsistent_height_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ultrametric::check_ultrametric_axioms;
    use dbf_algebra::prelude::*;
    use dbf_algebra::SampleableAlgebra;
    use dbf_matrix::prelude::*;
    use dbf_paths::prelude::*;
    use dbf_topology::generators;

    type Pv = PathVector<ShortestPaths>;

    fn setup(n: usize) -> (Pv, AdjacencyMatrix<Pv>, PathVectorMetric<Pv>) {
        let pv = PathVector::new(ShortestPaths::new(), n);
        let topo = generators::ring(n).with_weights(|i, j| NatInf::fin(((i + j) % 3 + 1) as u64));
        let adj = lift_topology(&pv, &topo);
        let metric = PathVectorMetric::new(pv, &adj);
        (PathVector::new(ShortestPaths::new(), n), adj, metric)
    }

    #[test]
    fn consistent_routes_are_exactly_the_path_weights() {
        let (pv, adj, metric) = setup(4);
        // Every enumerated consistent route really is consistent.
        for r in metric.consistent_routes() {
            assert!(metric.is_consistent(r), "{r:?} must be consistent");
        }
        // A route generated by extending along real edges is consistent and
        // has the expected heights.
        let e10 = adj.get(1, 0).unwrap().clone();
        let r = pv.extend(&e10, &pv.trivial());
        assert!(metric.is_consistent(&r));
        assert_eq!(metric.inconsistent_height(&r), 1);
        assert!(metric.consistent_height(&r) >= 1);
        // A made-up route is not consistent.
        let bogus = pv.lift_route(NatInf::fin(77), SimplePath::from_nodes(vec![0, 2]).unwrap());
        assert!(!metric.is_consistent(&bogus));
    }

    #[test]
    fn inconsistent_heights_decrease_with_path_length() {
        let (pv, _adj, metric) = setup(5);
        let short = pv.lift_route(NatInf::fin(77), SimplePath::from_nodes(vec![0, 1]).unwrap());
        let long = pv.lift_route(
            NatInf::fin(77),
            SimplePath::from_nodes(vec![0, 1, 2, 3]).unwrap(),
        );
        assert!(!metric.is_consistent(&short) && !metric.is_consistent(&long));
        assert_eq!(metric.inconsistent_height(&short), 5 + 1 - 1);
        assert_eq!(metric.inconsistent_height(&long), 5 + 1 - 3);
        assert!(metric.inconsistent_height(&short) > metric.inconsistent_height(&long));
        assert!(metric.inconsistent_height(&short) <= metric.inconsistent_height_max());
    }

    #[test]
    fn inconsistent_disagreements_dominate_consistent_ones() {
        let (pv, adj, metric) = setup(4);
        let consistent_a = pv.trivial();
        let e = adj.get(0, 1).unwrap().clone();
        let consistent_b = pv.extend(&e, &pv.trivial());
        let inconsistent =
            pv.lift_route(NatInf::fin(99), SimplePath::from_nodes(vec![0, 2]).unwrap());
        let dc = metric.route_distance(&consistent_a, &consistent_b);
        let di = metric.route_distance(&consistent_a, &inconsistent);
        assert!(dc > 0);
        assert!(
            di > dc,
            "distances involving inconsistent routes must exceed all consistent distances"
        );
        assert!(di > metric.consistent_height_max());
        assert!(di <= metric.bound());
    }

    #[test]
    fn the_combined_metric_is_a_bounded_ultrametric() {
        let (pv, _adj, metric) = setup(4);
        // Mix of sampled (mostly inconsistent) routes and genuinely
        // consistent routes from S_c.
        let mut routes = pv.sample_routes(7, 40);
        routes.extend(metric.consistent_routes().iter().take(20).cloned());
        check_ultrametric_axioms::<Pv, _>(&metric, &routes).unwrap();
    }

    #[test]
    #[should_panic(expected = "only defined on consistent routes")]
    fn consistent_height_rejects_inconsistent_routes() {
        let (pv, _adj, metric) = setup(4);
        let bogus = pv.lift_route(NatInf::fin(99), SimplePath::from_nodes(vec![0, 2]).unwrap());
        let _ = metric.consistent_height(&bogus);
    }

    #[test]
    fn figure2_structure_summary() {
        // The quantities of Figure 2 are all computable and related as the
        // paper describes.
        let (_pv, _adj, metric) = setup(4);
        assert!(
            metric.consistent_height_max() >= 2,
            "S_c contains at least 0̄ and ∞̄"
        );
        assert_eq!(metric.inconsistent_height_max(), 5);
        assert_eq!(
            metric.bound(),
            metric.consistent_height_max() + metric.inconsistent_height_max()
        );
        assert_eq!(metric.algebra().node_count(), 4);
    }
}
