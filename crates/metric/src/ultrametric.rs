//! Ultrametrics over routes and routing states (Definition 9 and Lemma 3).

use dbf_algebra::properties::Violation;
use dbf_algebra::RoutingAlgebra;
use dbf_matrix::RoutingState;

/// A (bounded) ultrametric over the routes of an algebra.
///
/// The three axioms of Definition 9 are
///
/// * **M1** — `d(x, y) = 0 ⇔ x = y`,
/// * **M2** — `d(x, y) = d(y, x)`,
/// * **M3** — `d(x, z) ≤ max(d(x, y), d(y, z))` (the strong triangle
///   inequality).
///
/// Implementations must also be bounded (Definition 13); the bound is what
/// makes the orbit-distance chain of Lemma 2 finite.
pub trait RouteUltrametric<A: RoutingAlgebra> {
    /// The distance between two routes.
    fn route_distance(&self, x: &A::Route, y: &A::Route) -> u64;

    /// An upper bound `d_max` on every distance (Definition 13).
    fn bound(&self) -> u64;
}

/// The state ultrametric `D(X, Y) = maxᵢⱼ d(Xᵢⱼ, Yᵢⱼ)` (Lemma 3): if `d` is
/// an ultrametric over routes then `D` is an ultrametric over routing
/// states.
pub fn state_distance<A, M>(metric: &M, x: &RoutingState<A>, y: &RoutingState<A>) -> u64
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A> + ?Sized,
{
    assert_eq!(
        x.node_count(),
        y.node_count(),
        "state dimension mismatch in state_distance"
    );
    let mut best = 0;
    for (i, j, xr) in x.entries() {
        let d = metric.route_distance(xr, y.get(i, j));
        best = best.max(d);
    }
    best
}

/// Check the ultrametric axioms M1–M3 and the bound on the given route
/// sample, returning the first violation found.
pub fn check_ultrametric_axioms<A, M>(metric: &M, routes: &[A::Route]) -> Result<(), Violation>
where
    A: RoutingAlgebra,
    M: RouteUltrametric<A> + ?Sized,
{
    for x in routes {
        for y in routes {
            let dxy = metric.route_distance(x, y);
            // M1
            if (dxy == 0) != (x == y) {
                return Err(Violation {
                    law: "M1 (d(x,y) = 0 ⇔ x = y)",
                    witness: format!("x={x:?} y={y:?} d={dxy}"),
                });
            }
            // M2
            let dyx = metric.route_distance(y, x);
            if dxy != dyx {
                return Err(Violation {
                    law: "M2 (d(x,y) = d(y,x))",
                    witness: format!("x={x:?} y={y:?}: d(x,y)={dxy} d(y,x)={dyx}"),
                });
            }
            // bound
            if dxy > metric.bound() {
                return Err(Violation {
                    law: "bounded (d(x,y) ≤ d_max)",
                    witness: format!("x={x:?} y={y:?}: d={dxy} > {}", metric.bound()),
                });
            }
            // M3
            for z in routes {
                let dxz = metric.route_distance(x, z);
                let dyz = metric.route_distance(y, z);
                if dxz > dxy.max(dyz) {
                    return Err(Violation {
                        law: "M3 (d(x,z) ≤ max(d(x,y), d(y,z)))",
                        witness: format!(
                            "x={x:?} y={y:?} z={z:?}: d(x,z)={dxz} > max({dxy}, {dyz})"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_matrix::RoutingState;

    /// A trivial discrete metric used to exercise the state lifting without
    /// depending on the concrete metrics defined elsewhere in the crate.
    struct Discrete;

    impl RouteUltrametric<ShortestPaths> for Discrete {
        fn route_distance(&self, x: &NatInf, y: &NatInf) -> u64 {
            u64::from(x != y)
        }
        fn bound(&self) -> u64 {
            1
        }
    }

    #[test]
    fn discrete_metric_satisfies_the_axioms() {
        let routes = vec![NatInf::fin(0), NatInf::fin(1), NatInf::fin(7), NatInf::Inf];
        check_ultrametric_axioms::<ShortestPaths, _>(&Discrete, &routes).unwrap();
    }

    #[test]
    fn state_distance_is_max_over_entries() {
        let alg = ShortestPaths::new();
        let x = RoutingState::identity(&alg, 3);
        let mut y = x.clone();
        assert_eq!(state_distance(&Discrete, &x, &y), 0);
        y.set(0, 1, NatInf::fin(5));
        assert_eq!(state_distance(&Discrete, &x, &y), 1);
        assert_eq!(state_distance(&Discrete, &y, &x), 1);
    }

    #[test]
    fn axiom_checker_catches_broken_metrics() {
        /// Violates M2 (asymmetric).
        struct Asym;
        impl RouteUltrametric<ShortestPaths> for Asym {
            fn route_distance(&self, x: &NatInf, y: &NatInf) -> u64 {
                if x == y {
                    0
                } else if matches!(x, NatInf::Inf) {
                    2
                } else {
                    1
                }
            }
            fn bound(&self) -> u64 {
                2
            }
        }
        let routes = vec![NatInf::fin(0), NatInf::Inf];
        let err = check_ultrametric_axioms::<ShortestPaths, _>(&Asym, &routes).unwrap_err();
        assert!(err.law.contains("M2"));

        /// Violates M1 (zero distance between distinct routes).
        struct Degenerate;
        impl RouteUltrametric<ShortestPaths> for Degenerate {
            fn route_distance(&self, _x: &NatInf, _y: &NatInf) -> u64 {
                0
            }
            fn bound(&self) -> u64 {
                0
            }
        }
        let err = check_ultrametric_axioms::<ShortestPaths, _>(&Degenerate, &routes).unwrap_err();
        assert!(err.law.contains("M1"));

        /// Violates M3: an ordinary metric that is not an ultrametric.
        struct Linear;
        impl RouteUltrametric<ShortestPaths> for Linear {
            fn route_distance(&self, x: &NatInf, y: &NatInf) -> u64 {
                match (x, y) {
                    (NatInf::Fin(a), NatInf::Fin(b)) => a.abs_diff(*b),
                    (NatInf::Inf, NatInf::Inf) => 0,
                    _ => 1_000,
                }
            }
            fn bound(&self) -> u64 {
                1_000
            }
        }
        let routes = vec![NatInf::fin(0), NatInf::fin(3), NatInf::fin(9)];
        let err = check_ultrametric_axioms::<ShortestPaths, _>(&Linear, &routes).unwrap_err();
        assert!(err.law.contains("M3"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn state_distance_rejects_mismatched_dimensions() {
        let alg = ShortestPaths::new();
        let x = RoutingState::identity(&alg, 2);
        let y = RoutingState::identity(&alg, 3);
        let _ = state_distance(&Discrete, &x, &y);
    }
}
