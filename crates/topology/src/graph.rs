//! The [`Topology`] type: a directed, weighted graph over dense node
//! indices.

use std::collections::BTreeMap;
use std::fmt;

/// A node identifier: a dense index in `0..n`, matching the row/column
/// indices of the adjacency and routing-state matrices.
pub type NodeId = usize;

/// A directed, weighted network topology.
///
/// Edges are stored sparsely; a missing entry denotes a missing link (which
/// the matrix layer treats as the constant-∞̄ edge function, exactly as the
/// paper represents absent edges).
#[derive(Clone, PartialEq, Eq)]
pub struct Topology<W> {
    nodes: usize,
    edges: BTreeMap<(NodeId, NodeId), W>,
}

impl<W> Topology<W> {
    /// An empty topology with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            edges: BTreeMap::new(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes
    }

    /// Add a node, returning its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.nodes;
        self.nodes += 1;
        id
    }

    /// Set (or overwrite) the directed edge `i → j`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `i == j` (self loops
    /// carry no routing information: a node always reaches itself via the
    /// trivial route).
    pub fn set_edge(&mut self, i: NodeId, j: NodeId, w: W) {
        assert!(
            i < self.nodes && j < self.nodes,
            "edge endpoint out of range"
        );
        assert_ne!(i, j, "self loops are not allowed");
        self.edges.insert((i, j), w);
    }

    /// Remove the directed edge `i → j`, returning its weight if present.
    pub fn remove_edge(&mut self, i: NodeId, j: NodeId) -> Option<W> {
        self.edges.remove(&(i, j))
    }

    /// The weight of the directed edge `i → j`, if present.
    pub fn edge(&self, i: NodeId, j: NodeId) -> Option<&W> {
        self.edges.get(&(i, j))
    }

    /// Does the directed edge `i → j` exist?
    pub fn has_edge(&self, i: NodeId, j: NodeId) -> bool {
        self.edges.contains_key(&(i, j))
    }

    /// Iterate over all directed edges `(i, j, &w)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &W)> {
        self.edges.iter().map(|(&(i, j), w)| (i, j, w))
    }

    /// The out-neighbours of `i` (nodes `j` with an edge `i → j`).
    pub fn out_neighbors(&self, i: NodeId) -> Vec<NodeId> {
        self.edges
            .range((i, 0)..=(i, usize::MAX))
            .map(|(&(_, j), _)| j)
            .collect()
    }

    /// The in-neighbours of `j` (nodes `i` with an edge `i → j`).
    pub fn in_neighbors(&self, j: NodeId) -> Vec<NodeId> {
        self.edges
            .keys()
            .filter(|&&(_, to)| to == j)
            .map(|&(from, _)| from)
            .collect()
    }

    /// Is the edge relation symmetric (every link present in both
    /// directions)?
    pub fn is_symmetric(&self) -> bool {
        self.edges.keys().all(|&(i, j)| self.has_edge(j, i))
    }

    /// Remove a node (and every edge incident to it), compacting the
    /// identifiers of the nodes above it.  Returns the new topology — the
    /// paper's dynamic-network model treats this as starting a fresh problem
    /// instance with the corresponding row and column deleted.
    pub fn without_node(&self, v: NodeId) -> Topology<W>
    where
        W: Clone,
    {
        assert!(v < self.nodes, "node out of range");
        let remap = |x: NodeId| if x > v { x - 1 } else { x };
        let mut out = Topology::new(self.nodes - 1);
        for (i, j, w) in self.edges() {
            if i != v && j != v {
                out.set_edge(remap(i), remap(j), w.clone());
            }
        }
        out
    }

    /// Map every edge weight, preserving the shape.
    pub fn map_weights<W2>(&self, mut f: impl FnMut(NodeId, NodeId, &W) -> W2) -> Topology<W2> {
        let mut out = Topology::new(self.nodes);
        for (i, j, w) in self.edges() {
            out.set_edge(i, j, f(i, j, w));
        }
        out
    }

    /// Attach weights to a shape: every existing edge gets `f(i, j)`.
    pub fn with_weights<W2>(&self, mut f: impl FnMut(NodeId, NodeId) -> W2) -> Topology<W2> {
        self.map_weights(|i, j, _| f(i, j))
    }

    /// Add both directions of a link with the same weight.
    pub fn set_link(&mut self, i: NodeId, j: NodeId, w: W)
    where
        W: Clone,
    {
        self.set_edge(i, j, w.clone());
        self.set_edge(j, i, w);
    }

    /// Remove both directions of a link.
    pub fn remove_link(&mut self, i: NodeId, j: NodeId) {
        self.remove_edge(i, j);
        self.remove_edge(j, i);
    }

    /// Is every node reachable from every other node, treating edges as
    /// undirected?  (A cheap sanity check used by generators and tests.)
    pub fn is_weakly_connected(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for (i, j, _) in self.edges() {
                let other = if i == v {
                    Some(j)
                } else if j == v {
                    Some(i)
                } else {
                    None
                };
                if let Some(o) = other {
                    if !seen[o] {
                        seen[o] = true;
                        stack.push(o);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

impl<W: fmt::Debug> fmt::Debug for Topology<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Topology(n={}, m={})", self.nodes, self.edge_count())?;
        for (i, j, w) in self.edges() {
            writeln!(f, "  {i} → {j}  [{w:?}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology<u32> {
        let mut t = Topology::new(3);
        t.set_link(0, 1, 1);
        t.set_link(1, 2, 2);
        t.set_link(0, 2, 3);
        t
    }

    #[test]
    fn basic_edge_operations() {
        let mut t = Topology::new(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 0);
        t.set_edge(0, 1, 10u32);
        assert!(t.has_edge(0, 1));
        assert!(!t.has_edge(1, 0));
        assert_eq!(t.edge(0, 1), Some(&10));
        assert_eq!(t.edge(1, 0), None);
        t.set_edge(0, 1, 20);
        assert_eq!(t.edge(0, 1), Some(&20));
        assert_eq!(t.remove_edge(0, 1), Some(20));
        assert_eq!(t.remove_edge(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_are_rejected() {
        Topology::new(2).set_edge(1, 1, 0u32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_are_rejected() {
        Topology::new(2).set_edge(0, 5, 0u32);
    }

    #[test]
    fn neighbours_and_symmetry() {
        let t = triangle();
        assert!(t.is_symmetric());
        assert_eq!(t.out_neighbors(0), vec![1, 2]);
        assert_eq!(t.in_neighbors(0), vec![1, 2]);
        let mut asym = Topology::new(2);
        asym.set_edge(0, 1, 1u32);
        assert!(!asym.is_symmetric());
        assert_eq!(asym.out_neighbors(1), Vec::<NodeId>::new());
        assert_eq!(asym.in_neighbors(1), vec![0]);
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut t = triangle();
        let v = t.add_node();
        assert_eq!(v, 3);
        assert_eq!(t.node_count(), 4);
        t.set_edge(3, 0, 9);

        let without1 = t.without_node(1);
        assert_eq!(without1.node_count(), 3);
        // old node 2 becomes 1, old node 3 becomes 2
        assert!(without1.has_edge(0, 1)); // was 0 → 2
        assert!(without1.has_edge(2, 0)); // was 3 → 0
        assert!(!without1.has_edge(0, 2));
        assert_eq!(
            without1.edge_count(),
            t.edges().filter(|&(i, j, _)| i != 1 && j != 1).count()
        );
    }

    #[test]
    fn weight_mapping_preserves_shape() {
        let t = triangle();
        let doubled = t.map_weights(|_, _, w| w * 2);
        assert_eq!(doubled.edge(0, 1), Some(&2));
        assert_eq!(doubled.edge_count(), t.edge_count());
        let shaped: Topology<()> = t.with_weights(|_, _| ());
        let reweighted = shaped.with_weights(|i, j| (i + j) as u32);
        assert_eq!(reweighted.edge(1, 2), Some(&3));
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_weakly_connected());
        let mut t = Topology::new(4);
        t.set_link(0, 1, 1u32);
        t.set_link(2, 3, 1);
        assert!(!t.is_weakly_connected());
        assert!(Topology::<u32>::new(0).is_weakly_connected());
        assert!(Topology::<u32>::new(1).is_weakly_connected());
    }

    #[test]
    fn link_helpers_and_debug() {
        let mut t = Topology::new(3);
        t.set_link(0, 2, 7u32);
        assert!(t.has_edge(0, 2) && t.has_edge(2, 0));
        t.remove_link(0, 2);
        assert_eq!(t.edge_count(), 0);
        let dbg = format!("{:?}", triangle());
        assert!(dbg.contains("Topology(n=3"));
        assert!(dbg.contains("0 → 1"));
    }
}
