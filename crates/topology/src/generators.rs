//! Reference topology generators.
//!
//! Generators build *shapes* — `Topology<()>` — and callers attach
//! algebra-specific edge functions with [`Topology::with_weights`].  All
//! random generators are seeded and deterministic.
//!
//! The shapes cover the topology classes invoked by the paper's narrative:
//! simple reference graphs for unit tests (lines, rings, stars, complete
//! graphs, grids, trees), Gilbert random graphs for convergence sweeps,
//! Clos/fat-tree fabrics for the data-center discussion of Section 8.3 and
//! tiered provider/customer hierarchies for the Gao-Rexford experiments.

use crate::graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bidirectional line `0 — 1 — … — n-1`.
pub fn line(n: usize) -> Topology<()> {
    let mut t = Topology::new(n);
    for i in 1..n {
        t.set_link(i - 1, i, ());
    }
    t
}

/// A bidirectional ring on `n ≥ 3` nodes.
pub fn ring(n: usize) -> Topology<()> {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut t = line(n);
    t.set_link(n - 1, 0, ());
    t
}

/// A star with node `0` at the centre.
pub fn star(n: usize) -> Topology<()> {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut t = Topology::new(n);
    for i in 1..n {
        t.set_link(0, i, ());
    }
    t
}

/// The complete (bidirectional) graph on `n` nodes.
pub fn complete(n: usize) -> Topology<()> {
    let mut t = Topology::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            t.set_link(i, j, ());
        }
    }
    t
}

/// A `rows × cols` grid with links between horizontal and vertical
/// neighbours.
pub fn grid(rows: usize, cols: usize) -> Topology<()> {
    let mut t = Topology::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                t.set_link(id(r, c), id(r, c + 1), ());
            }
            if r + 1 < rows {
                t.set_link(id(r, c), id(r + 1, c), ());
            }
        }
    }
    t
}

/// A complete binary tree of the given depth (depth 0 is a single root).
pub fn binary_tree(depth: u32) -> Topology<()> {
    let n = (1usize << (depth + 1)) - 1;
    let mut t = Topology::new(n);
    for v in 1..n {
        let parent = (v - 1) / 2;
        t.set_link(parent, v, ());
    }
    t
}

/// Visit each unordered pair `{i, j}` (`i < j`) with probability `p`,
/// skipping geometrically between hits so the cost is `O(n + p·n²)` rather
/// than `O(n²)` — at `n = 10⁴` and sweep-typical sparse `p` this is the
/// difference between microseconds and a second of pure RNG draws.
/// Deterministic in the `rng` stream.
fn sample_pairs(n: usize, p: f64, rng: &mut StdRng, mut hit: impl FnMut(NodeId, NodeId)) {
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 || n < 2 {
        return;
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                hit(i, j);
            }
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    if ln_q >= 0.0 {
        // `1 - p` rounded to 1.0: p is below f64 resolution, so no pair
        // would realistically be sampled.
        return;
    }
    let pairs = n * (n - 1) / 2;
    // Cursor over the linearised pair index `m`: row `i` (with `i < j`)
    // holds the `n - 1 - i` pair indices starting at `row_start`.  `i` only
    // ever advances, so unranking is amortised O(n) across the whole walk.
    let mut m = 0usize;
    let mut i = 0usize;
    let mut row_start = 0usize;
    loop {
        // Geometric skip: the number of misses before the next hit.
        let unit = (rng.gen_range(0.0..1.0f64)).max(f64::MIN_POSITIVE);
        let skip = (unit.ln() / ln_q).floor();
        if skip >= (pairs - m) as f64 {
            return;
        }
        m += skip as usize;
        while m >= row_start + (n - 1 - i) {
            row_start += n - 1 - i;
            i += 1;
        }
        hit(i, i + 1 + (m - row_start));
        m += 1;
        if m >= pairs {
            return;
        }
    }
}

/// A Gilbert random graph `G(n, p)`: every unordered pair is linked
/// (bidirectionally) with probability `p`.  Deterministic in `seed`.
pub fn random_gnp(n: usize, p: f64, seed: u64) -> Topology<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new(n);
    sample_pairs(n, p, &mut rng, |i, j| t.set_link(i, j, ()));
    t
}

/// A connected Gilbert random graph: `G(n, p)` with a random spanning ring
/// added first so the result is always connected.  Deterministic in `seed`.
pub fn connected_random(n: usize, p: f64, seed: u64) -> Topology<()> {
    assert!(n >= 3, "connected_random needs at least 3 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random permutation ring for connectivity.
    let mut perm: Vec<NodeId> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut t = Topology::new(n);
    for k in 0..n {
        t.set_link(perm[k], perm[(k + 1) % n], ());
    }
    sample_pairs(n, p, &mut rng, |i, j| {
        if !t.has_edge(i, j) {
            t.set_link(i, j, ());
        }
    });
    t
}

/// A Barabási–Albert-style preferential-attachment graph with the heavy
/// tailed degree profile of the AS-level Internet: the first `min(n, m+1)`
/// nodes form a clique, and every later node attaches to `m` *distinct*
/// existing nodes sampled proportionally to their current degree (the
/// classic endpoint-list trick: drawing a uniform entry from the flat list
/// of edge endpoints is exactly degree-weighted sampling).  Deterministic
/// in `seed`; connected for `m ≥ 1`.
pub fn as_graph(n: usize, m: usize, seed: u64) -> Topology<()> {
    assert!(m >= 1, "as_graph needs m >= 1");
    assert!(n >= 2, "as_graph needs at least 2 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new(n);
    // Every edge {i, j} pushes both endpoints, so a node's multiplicity in
    // `endpoints` is its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * (m + 1).min(n) * n.max(1));
    let core = (m + 1).min(n);
    for i in 0..core {
        for j in (i + 1)..core {
            t.set_link(i, j, ());
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for v in core..n {
        targets.clear();
        // `v` joins with `m` distinct degree-weighted neighbours; rejection
        // on duplicates terminates fast because m ≪ v in any realistic call.
        while targets.len() < m.min(v) {
            let u = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&u) {
                targets.push(u);
            }
        }
        for &u in &targets {
            t.set_link(v, u, ());
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    t
}

/// A two-level Clos (leaf–spine) data-center fabric: every leaf is connected
/// to every spine.  Nodes `0..spines` are spines, `spines..spines+leaves`
/// are leaves.
pub fn leaf_spine(spines: usize, leaves: usize) -> Topology<()> {
    let mut t = Topology::new(spines + leaves);
    for s in 0..spines {
        for l in 0..leaves {
            t.set_link(s, spines + l, ());
        }
    }
    t
}

/// A (simplified) three-tier fat-tree fabric parameterised by `k` pods:
/// `k` core nodes, `k` aggregation nodes per pod... this implementation
/// follows the common simplification of one aggregation and one edge switch
/// per pod pair, giving `k + k + k` nodes for benchmark purposes rather than
/// the full `k³/4`-host fabric.
pub fn fat_tree(k: usize) -> Topology<()> {
    assert!(k >= 2, "fat_tree needs k >= 2");
    // nodes: [0, k) core, [k, 2k) aggregation, [2k, 3k) edge
    let mut t = Topology::new(3 * k);
    for core in 0..k {
        for agg in 0..k {
            t.set_link(core, k + agg, ());
        }
    }
    for agg in 0..k {
        for edge in 0..k {
            // each aggregation switch connects to half the edge switches,
            // staggered so the fabric is connected but not complete
            if (agg + edge) % 2 == 0 {
                t.set_link(k + agg, 2 * k + edge, ());
            }
        }
    }
    t
}

/// The relationship attached to a directed edge of a tiered AS hierarchy.
///
/// The edge `i → j` is labelled with the relationship of `j` *as seen by*
/// `i`: routes announced by `j` arrive at `i` over this edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierRelation {
    /// `j` is a customer of `i` (`j` sits one tier below `i`).
    CustomerOf,
    /// `j` is a provider of `i` (`j` sits one tier above `i`).
    ProviderOf,
    /// `i` and `j` are peers (same tier).
    PeerOf,
}

/// A tiered provider/customer hierarchy in the style of the Gao-Rexford
/// model: `tiers[t]` nodes in tier `t` (tier 0 at the top).  Every node has
/// at least one provider in the tier above, peers are added within a tier
/// with probability `p_peer`, and extra provider links with probability
/// `p_extra`.  Edges are labelled with [`TierRelation`] from the point of
/// view of the edge's source.  Deterministic in `seed`.
pub fn tiered_hierarchy(
    tiers: &[usize],
    p_peer: f64,
    p_extra: f64,
    seed: u64,
) -> (Topology<TierRelation>, Vec<usize>) {
    assert!(!tiers.is_empty(), "at least one tier is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = tiers.iter().sum();
    let mut tier_of = Vec::with_capacity(n);
    for (t, &count) in tiers.iter().enumerate() {
        tier_of.extend(std::iter::repeat_n(t, count));
    }
    let first_of_tier: Vec<usize> = tiers
        .iter()
        .scan(0usize, |acc, &c| {
            let start = *acc;
            *acc += c;
            Some(start)
        })
        .collect();

    let mut t = Topology::new(n);
    let add_cp = |topo: &mut Topology<TierRelation>, provider: NodeId, customer: NodeId| {
        // provider sees customer as CustomerOf; customer sees provider as ProviderOf
        topo.set_edge(provider, customer, TierRelation::CustomerOf);
        topo.set_edge(customer, provider, TierRelation::ProviderOf);
    };

    // every node below tier 0 gets at least one provider in the tier above
    for (v, &tier) in tier_of.iter().enumerate() {
        if tier == 0 {
            continue;
        }
        let above_start = first_of_tier[tier - 1];
        let above_count = tiers[tier - 1];
        let provider = above_start + rng.gen_range(0..above_count);
        add_cp(&mut t, provider, v);
        // extra providers
        for p in above_start..above_start + above_count {
            if p != provider && rng.gen_bool(p_extra.clamp(0.0, 1.0)) {
                add_cp(&mut t, p, v);
            }
        }
    }
    // peering within tiers (and full mesh at tier 0 so the top is connected)
    for v in 0..n {
        for u in (v + 1)..n {
            if tier_of[v] == tier_of[u] {
                let is_top = tier_of[v] == 0;
                if is_top || rng.gen_bool(p_peer.clamp(0.0, 1.0)) {
                    t.set_edge(v, u, TierRelation::PeerOf);
                    t.set_edge(u, v, TierRelation::PeerOf);
                }
            }
        }
    }
    (t, tier_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_ring_star_shapes() {
        let l = line(5);
        assert_eq!(l.node_count(), 5);
        assert_eq!(l.edge_count(), 8); // 4 links, both directions
        assert!(l.is_weakly_connected());

        let r = ring(5);
        assert_eq!(r.edge_count(), 10);
        assert!(r.is_symmetric());

        let s = star(5);
        assert_eq!(s.edge_count(), 8);
        assert_eq!(s.out_neighbors(0).len(), 4);
        assert_eq!(s.out_neighbors(3), vec![0]);
    }

    #[test]
    fn complete_and_grid_shapes() {
        let c = complete(6);
        assert_eq!(c.edge_count(), 6 * 5);
        assert!(c.is_symmetric());

        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // horizontal links: 3 rows × 3, vertical links: 2 × 4 ⇒ 17 links
        assert_eq!(g.edge_count(), 2 * (3 * 3 + 2 * 4));
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn tree_shape() {
        let t = binary_tree(3);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.edge_count(), 2 * 14);
        assert!(t.is_weakly_connected());
        assert!(t.is_symmetric());
    }

    #[test]
    fn random_graphs_are_deterministic_in_the_seed() {
        let a = random_gnp(20, 0.3, 7);
        let b = random_gnp(20, 0.3, 7);
        let c = random_gnp(20, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_symmetric());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(random_gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(random_gnp(10, 1.0, 1).edge_count(), 90);
        // Sub-resolution p (1 - p rounds to 1.0) must behave like p = 0,
        // not degenerate into a complete graph.
        assert_eq!(random_gnp(50, 1e-18, 1).edge_count(), 0);
        // Out-of-range p is clamped.
        assert_eq!(random_gnp(6, 7.5, 1).edge_count(), 30);
    }

    #[test]
    fn gnp_density_tracks_p() {
        // The geometric-skip sampler must hit roughly p · C(n,2) pairs.
        let n = 200;
        let pairs = (n * (n - 1) / 2) as f64;
        for &p in &[0.01, 0.1, 0.5] {
            let links = random_gnp(n, p, 97).edge_count() as f64 / 2.0;
            let expected = p * pairs;
            let sd = (pairs * p * (1.0 - p)).sqrt();
            assert!(
                (links - expected).abs() < 6.0 * sd,
                "p={p}: got {links} links, expected ~{expected}"
            );
        }
    }

    #[test]
    fn connected_random_is_connected() {
        for seed in 0..10 {
            let t = connected_random(16, 0.05, seed);
            assert!(
                t.is_weakly_connected(),
                "seed {seed} produced a disconnected graph"
            );
            assert!(t.is_symmetric());
        }
    }

    #[test]
    fn datacenter_fabrics() {
        let ls = leaf_spine(4, 8);
        assert_eq!(ls.node_count(), 12);
        assert_eq!(ls.edge_count(), 2 * 4 * 8);
        assert!(ls.is_weakly_connected());

        let ft = fat_tree(4);
        assert_eq!(ft.node_count(), 12);
        assert!(ft.is_weakly_connected());
    }

    #[test]
    fn as_graph_shape_and_determinism() {
        let n = 200;
        let m = 2;
        let t = as_graph(n, m, 11);
        assert_eq!(t.node_count(), n);
        assert!(t.is_weakly_connected());
        assert!(t.is_symmetric());
        // clique on the first m+1 nodes, then m links per later node
        let links = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(t.edge_count(), 2 * links);
        assert!(t.has_edge(0, 1), "the seed clique always links 0 and 1");
        assert_eq!(t, as_graph(n, m, 11));
        assert_ne!(t, as_graph(n, m, 12));
    }

    #[test]
    fn as_graph_degree_profile_is_heavy_tailed() {
        // Preferential attachment concentrates degree: the best-connected
        // node must collect far more than the mean degree, and low-degree
        // leaves (degree exactly m) must dominate the population.
        let n = 500;
        let m = 2;
        let t = as_graph(n, m, 7);
        let degree: Vec<usize> = (0..n).map(|v| t.out_neighbors(v).len()).collect();
        let max = *degree.iter().max().unwrap();
        let mean = degree.iter().sum::<usize>() as f64 / n as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "max degree {max} vs mean {mean}: no hub emerged"
        );
        let leaves = degree.iter().filter(|&&d| d == m).count();
        assert!(leaves > n / 4, "only {leaves} degree-{m} leaves");
    }

    #[test]
    fn as_graph_small_n_degenerates_to_a_clique() {
        // n <= m + 1: everything fits in the seed clique.
        let t = as_graph(3, 4, 0);
        assert_eq!(t.edge_count(), 6);
        assert!(t.is_symmetric());
    }

    #[test]
    fn tiered_hierarchy_structure() {
        let (t, tier_of) = tiered_hierarchy(&[2, 4, 8], 0.3, 0.2, 42);
        assert_eq!(t.node_count(), 14);
        assert_eq!(tier_of.len(), 14);
        assert_eq!(tier_of.iter().filter(|&&x| x == 0).count(), 2);
        assert!(t.is_weakly_connected());
        // relationship labels are mutually consistent
        for (i, j, rel) in t.edges() {
            match rel {
                TierRelation::CustomerOf => {
                    assert_eq!(t.edge(j, i), Some(&TierRelation::ProviderOf));
                    assert!(tier_of[j] == tier_of[i] + 1);
                }
                TierRelation::ProviderOf => {
                    assert_eq!(t.edge(j, i), Some(&TierRelation::CustomerOf));
                    assert!(tier_of[j] + 1 == tier_of[i]);
                }
                TierRelation::PeerOf => {
                    assert_eq!(t.edge(j, i), Some(&TierRelation::PeerOf));
                    assert_eq!(tier_of[i], tier_of[j]);
                }
            }
        }
        // determinism
        let (t2, _) = tiered_hierarchy(&[2, 4, 8], 0.3, 0.2, 42);
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_rings_are_rejected() {
        let _ = ring(2);
    }
}
