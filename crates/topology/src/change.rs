//! Topology change events for the dynamic-network model of Section 3.2.
//!
//! The paper handles network dynamics by viewing the computation after a
//! change as a *new problem instance*: the adjacency matrix is updated and
//! the current (now possibly stale/inconsistent) routing state becomes the
//! new starting state.  [`TopologyChange`] is the vocabulary of such events;
//! the asynchronous simulator applies them mid-run and the convergence
//! theorems guarantee reconvergence from whatever state results.

use crate::graph::{NodeId, Topology};
use std::fmt;

/// A single change to the network topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyChange<W> {
    /// Add (or replace) the directed edge `i → j` with weight `w`.
    SetEdge {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The new edge weight (policy).
        weight: W,
    },
    /// Remove the directed edge `i → j`.
    RemoveEdge {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// Remove both directions of the link between `a` and `b` (a link
    /// failure).
    FailLink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Add a fresh node (with no edges).
    AddNode,
}

impl<W: Clone> TopologyChange<W> {
    /// Apply the change to a topology, returning the updated topology.
    pub fn apply(&self, topo: &Topology<W>) -> Topology<W> {
        let mut out = topo.clone();
        match self {
            TopologyChange::SetEdge { from, to, weight } => {
                out.set_edge(*from, *to, weight.clone());
            }
            TopologyChange::RemoveEdge { from, to } => {
                out.remove_edge(*from, *to);
            }
            TopologyChange::FailLink { a, b } => {
                out.remove_link(*a, *b);
            }
            TopologyChange::AddNode => {
                out.add_node();
            }
        }
        out
    }

    /// Apply a sequence of changes in order.
    pub fn apply_all(changes: &[Self], topo: &Topology<W>) -> Topology<W> {
        changes.iter().fold(topo.clone(), |t, c| c.apply(&t))
    }
}

impl<W: fmt::Debug> fmt::Display for TopologyChange<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyChange::SetEdge { from, to, weight } => {
                write!(f, "set {from} → {to} to {weight:?}")
            }
            TopologyChange::RemoveEdge { from, to } => write!(f, "remove {from} → {to}"),
            TopologyChange::FailLink { a, b } => write!(f, "fail link {a} ↔ {b}"),
            TopologyChange::AddNode => write!(f, "add node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn changes_apply_functionally() {
        let base = generators::ring(4).with_weights(|_, _| 1u32);
        let changed = TopologyChange::SetEdge {
            from: 0,
            to: 2,
            weight: 9,
        }
        .apply(&base);
        assert!(changed.has_edge(0, 2));
        assert!(!base.has_edge(0, 2), "the original topology is untouched");

        let failed = TopologyChange::FailLink { a: 0, b: 1 }.apply(&changed);
        assert!(!failed.has_edge(0, 1));
        assert!(!failed.has_edge(1, 0));

        let removed = TopologyChange::RemoveEdge { from: 1, to: 2 }.apply(&failed);
        assert!(!removed.has_edge(1, 2));
        assert!(
            removed.has_edge(2, 1),
            "only the requested direction is removed"
        );

        let grown = TopologyChange::<u32>::AddNode.apply(&removed);
        assert_eq!(grown.node_count(), 5);
    }

    #[test]
    fn apply_all_folds_in_order() {
        let base = generators::line(3).with_weights(|_, _| 1u32);
        let changes = vec![
            TopologyChange::SetEdge {
                from: 0,
                to: 2,
                weight: 5,
            },
            TopologyChange::RemoveEdge { from: 0, to: 2 },
        ];
        let out = TopologyChange::apply_all(&changes, &base);
        assert!(!out.has_edge(0, 2), "later changes win");
    }

    #[test]
    fn set_edge_overwrites_and_is_directional() {
        let base = generators::line(3).with_weights(|_, _| 1u32);
        let overwritten = TopologyChange::SetEdge {
            from: 0,
            to: 1,
            weight: 7,
        }
        .apply(&base);
        assert_eq!(
            overwritten.edge(0, 1),
            Some(&7),
            "existing edges are replaced"
        );
        assert_eq!(
            overwritten.edge(1, 0),
            Some(&1),
            "the reverse direction is untouched"
        );
        assert_eq!(overwritten.edge_count(), base.edge_count());
    }

    #[test]
    fn removals_of_absent_edges_are_no_ops() {
        let base = generators::line(3).with_weights(|_, _| 1u32);
        let removed = TopologyChange::RemoveEdge { from: 0, to: 2 }.apply(&base);
        assert_eq!(removed, base);
        let failed = TopologyChange::FailLink { a: 0, b: 2 }.apply(&base);
        assert_eq!(failed, base);
    }

    #[test]
    fn fail_link_removes_both_directions_only() {
        let base = generators::ring(4).with_weights(|_, _| 1u32);
        let failed = TopologyChange::FailLink { a: 1, b: 2 }.apply(&base);
        assert!(!failed.has_edge(1, 2) && !failed.has_edge(2, 1));
        assert_eq!(failed.edge_count(), base.edge_count() - 2);
        assert!(
            failed.has_edge(0, 1) && failed.has_edge(2, 3),
            "other links survive"
        );
    }

    #[test]
    fn add_node_grows_by_one_and_preserves_edges() {
        let base = generators::complete(3).with_weights(|i, j| (i * 10 + j) as u32);
        let grown = TopologyChange::<u32>::AddNode.apply(&base);
        assert_eq!(grown.node_count(), base.node_count() + 1);
        assert_eq!(grown.edge_count(), base.edge_count());
        for (i, j, w) in base.edges() {
            assert_eq!(grown.edge(i, j), Some(w), "edge {i}→{j} must be preserved");
        }
        // the fresh node is isolated
        let v = grown.node_count() - 1;
        assert!(grown.out_neighbors(v).is_empty());
        assert!(grown.in_neighbors(v).is_empty());
    }

    #[test]
    fn failure_then_restore_round_trips() {
        let base = generators::ring(5).with_weights(|_, _| 9u32);
        let round_tripped = TopologyChange::apply_all(
            &[
                TopologyChange::FailLink { a: 2, b: 3 },
                TopologyChange::SetEdge {
                    from: 2,
                    to: 3,
                    weight: 9,
                },
                TopologyChange::SetEdge {
                    from: 3,
                    to: 2,
                    weight: 9,
                },
            ],
            &base,
        );
        assert_eq!(round_tripped, base);
    }

    #[test]
    fn display_is_informative() {
        let c = TopologyChange::SetEdge {
            from: 1,
            to: 2,
            weight: 7u32,
        };
        assert!(c.to_string().contains("1 → 2"));
        assert!(TopologyChange::<u32>::FailLink { a: 0, b: 3 }
            .to_string()
            .contains("0 ↔ 3"));
        assert_eq!(TopologyChange::<u32>::AddNode.to_string(), "add node");
        assert!(TopologyChange::<u32>::RemoveEdge { from: 2, to: 0 }
            .to_string()
            .contains("remove"));
    }
}
