//! # dbf-topology — network topologies and generators
//!
//! Routing problems in the paper are posed over an `n`-node directed graph
//! whose edges are weighted with policy functions from the routing algebra's
//! edge set `F`.  This crate provides:
//!
//! * [`graph::Topology`] — a directed, weighted graph with dense node
//!   indices `0..n`, supporting the edge/node additions and removals that
//!   the paper's dynamic-network model (Section 3.2) requires;
//! * [`generators`] — reference topology shapes (line, ring, star, complete,
//!   grid, trees, Clos/fat-tree data-center fabrics, Gilbert random graphs
//!   and tiered provider/customer hierarchies) used by the tests, examples
//!   and experiments;
//! * [`change::TopologyChange`] — a small vocabulary of topology events used
//!   by the dynamic-network experiments to model link failures, policy
//!   changes and node churn.
//!
//! Weights are deliberately generic: generators build *shapes*
//! (`Topology<()>`) and callers attach algebra-specific edge functions with
//! [`graph::Topology::with_weights`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod change;
pub mod generators;
pub mod graph;

pub use change::TopologyChange;
pub use graph::{NodeId, Topology};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::change::TopologyChange;
    pub use crate::generators;
    pub use crate::graph::{NodeId, Topology};
}
