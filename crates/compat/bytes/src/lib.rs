//! A workspace-local stand-in for the subset of the crates.io `bytes` API
//! used by the wire-format module: `Bytes`/`BytesMut` with big-endian
//! `get_*`/`put_*` accessors via the `Buf`/`BufMut` traits.
//!
//! `Bytes` is a read cursor over an owned buffer; `get_*` consume from the
//! front, and `slice`/`Deref` operate on the *remaining* view, matching the
//! way the decoders in `dbf-protocols::wire` use the real crate.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Is the buffer fully consumed?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over the given sub-range of the remaining view.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.start..][range].to_vec(),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            start: 0,
        }
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with the given capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// The number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read access to a byte buffer, consuming from the front.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes, returning them.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Is anything left to read?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let b = self.take_bytes(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

/// Write access to a byte buffer, appending at the back.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor_semantics() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0xABCD);
        b.put_u32(0x01020304);
        b.put_u8(0xFF);
        assert_eq!(b.len(), 7);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 7);
        assert_eq!(bytes.get_u16(), 0xABCD);
        assert_eq!(bytes.remaining(), 5);
        assert_eq!(bytes.get_u32(), 0x01020304);
        assert_eq!(bytes.get_u8(), 0xFF);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slicing_and_indexing() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        b[2] = 9;
        let bytes = b.freeze();
        assert_eq!(&bytes[..], &[1, 2, 9, 4]);
        let s = bytes.slice(1..3);
        assert_eq!(&s[..], &[2, 9]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_is_detected() {
        let mut bytes = Bytes::from(vec![1u8]);
        let _ = bytes.get_u16();
    }
}
