//! A workspace-local stand-in for the subset of the crates.io `criterion`
//! API that this repository's benchmarks use.
//!
//! Statistical rigour is intentionally modest: each benchmark is warmed up
//! and then timed over `sample_size` batches, reporting the mean and the
//! min/max batch time.  The value of the shim is that (a) the benches
//! compile and run offline and (b) the numbers are stable enough to track
//! relative regressions between PRs.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A labelled benchmark identifier (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an identifier from a function name and a parameter display.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: u64,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, recording one sample per batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn report(label: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {label:<52} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    println!(
        "bench {label:<52} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        results.len()
    );
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim has no separate warm-up
    /// phase budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// batches instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set how many timed batches to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut results = Vec::new();
        f(&mut Bencher {
            samples: self.sample_size,
            results: &mut results,
        });
        report(&format!("{}/{}", self.name, id), &results);
        self
    }

    /// Run a named benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut results = Vec::new();
        f(
            &mut Bencher {
                samples: self.sample_size,
                results: &mut results,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id.label), &results);
        self
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single named benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut results = Vec::new();
        f(&mut Bencher {
            samples: 10,
            results: &mut results,
        });
        report(name, &results);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("trivial", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 5), &5u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert!(ran >= 3, "sample batches ran");
    }
}
