//! A workspace-local, dependency-free stand-in for the subset of the
//! crates.io `crossbeam` API used by this repository: multi-producer,
//! multi-consumer unbounded channels with `recv_timeout`, and scoped
//! worker threads (`crossbeam::thread::scope`).
//!
//! Channels are built on `std::sync::{Mutex, Condvar}`; performance is
//! adequate for the threaded routing runtime, and semantics (FIFO per
//! channel, cloneable senders *and* receivers) match what `dbf-protocols`
//! relies on.  Scoped threads wrap `std::thread::scope`, which provides the
//! same borrow-the-stack guarantee the real crossbeam pioneered.  (The
//! parallel σ row sweep in `dbf-matrix` used to run its per-round workers
//! through this module; it now uses the persistent `dbf_matrix::pool`
//! instead, so the scoped-thread shim serves the threaded protocol
//! runtime only.)

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    /// Error returned by [`Sender::send`] (never produced by this shim:
    /// the channel is never considered disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is disconnected (never produced by this shim).
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks, never fails.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            q.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                q = guard;
                if result.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeue a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .pop_front()
        }
    }
}

/// Scoped threads mirroring `crossbeam::thread` (the `crossbeam_utils`
/// re-export): spawn workers that may borrow from the enclosing stack and
/// are all joined before `scope` returns.
pub mod thread {
    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// The spawn surface handed to the `scope` closure (and to every
    /// spawned closure, so workers can spawn further workers).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread.  As in crossbeam, the closure receives
        /// the scope again so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing scoped threads can be
    /// spawned; every spawned thread is joined before this returns.
    ///
    /// Matching crossbeam's semantics: a panic in `f` *itself* resumes on
    /// the caller (after all workers are joined), while `Err(payload)` is
    /// reserved for panics of *unjoined* spawned threads — explicitly
    /// `join`ed panics are delivered through the handle instead.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // `std::thread::scope` re-raises unjoined child panics after
        // joining everything; catching that panic is what turns the std
        // semantics into crossbeam's `Result` contract.  `f`'s own panic
        // is caught separately so it can resume as a panic rather than be
        // misreported as a worker failure.  The closures only touch
        // caller-owned data through the scope, so the unwind-safety
        // assertions do not hide broken invariants beyond what crossbeam
        // itself promises.
        let mut f_panic: Option<Box<dyn std::any::Any + Send + 'static>> = None;
        let scope_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(&Scope { inner: s })
                })) {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        f_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        // As in crossbeam, the scope closure's own panic takes precedence
        // over unjoined-worker panics.
        if let Some(payload) = f_panic {
            std::panic::resume_unwind(payload);
        }
        match scope_result {
            Ok(r) => Ok(r.expect("f completed without panicking")),
            Err(worker_payload) => Err(worker_payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(i));
        }
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Ok(v) = rx.recv_timeout(Duration::from_millis(100)) {
                got.push(v);
            }
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv_timeout(Duration::from_millis(10)).unwrap();
        let b = rx2.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let mut partials = [0u64; 4];
        crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for (k, slot) in partials.iter_mut().enumerate() {
                let chunk = &data[k * 25..(k + 1) * 25];
                handles.push(s.spawn(move |_| {
                    *slot = chunk.iter().sum();
                    k
                }));
            }
            let ids: Vec<usize> = handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect();
            assert_eq!(ids, vec![0, 1, 2, 3]);
        })
        .expect("no unjoined panics");
        assert_eq!(partials.iter().sum::<u64>(), (0..100).sum::<u64>());
    }

    #[test]
    fn scoped_threads_can_spawn_nested_workers() {
        let result = crate::thread::scope(|s| {
            s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().expect("inner ok") * 2
            })
            .join()
            .expect("outer ok")
        })
        .expect("scope ok");
        assert_eq!(result, 42);
    }

    #[test]
    fn unjoined_scoped_panics_surface_as_err() {
        let outcome = crate::thread::scope(|s| {
            s.spawn(|_| panic!("worker exploded"));
            // Not joined: the scope must deliver the panic as Err.
        });
        assert!(outcome.is_err());
    }

    #[test]
    #[should_panic(expected = "the scope closure itself")]
    fn a_panic_in_the_scope_closure_resumes_as_a_panic_not_err() {
        // Crossbeam semantics: Err is reserved for unjoined workers; the
        // closure's own panic propagates (after workers are joined).
        let _ = crate::thread::scope(|s| {
            s.spawn(|_| 1 + 1);
            panic!("the scope closure itself");
        });
    }
}
