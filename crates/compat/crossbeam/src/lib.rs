//! A workspace-local, dependency-free stand-in for the subset of the
//! crates.io `crossbeam` API used by this repository: multi-producer,
//! multi-consumer unbounded channels with `recv_timeout`.
//!
//! Built on `std::sync::{Mutex, Condvar}`; performance is adequate for the
//! threaded routing runtime, and semantics (FIFO per channel, cloneable
//! senders *and* receivers) match what `dbf-protocols` relies on.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    /// Error returned by [`Sender::send`] (never produced by this shim:
    /// the channel is never considered disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is disconnected (never produced by this shim).
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks, never fails.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            q.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                q = guard;
                if result.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeue a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(i));
        }
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Ok(v) = rx.recv_timeout(Duration::from_millis(100)) {
                got.push(v);
            }
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv_timeout(Duration::from_millis(10)).unwrap();
        let b = rx2.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!((a, b), (1, 2));
    }
}
