//! The [`Strategy`] trait, the [`ValueTree`] shrinking model and the
//! combinators the workspace uses.
//!
//! Mirroring real proptest, a strategy does not produce bare values: it
//! produces a [`ValueTree`] — the generated value *plus* a lazily explored
//! space of simpler values.  When a property fails, the runner walks the
//! tree ([`ValueTree::simplify`] / [`ValueTree::complicate`]) to find a
//! minimal failing input, so combinator pipelines (`prop_map`, tuples,
//! collections, unions) shrink through their *inputs* rather than trying to
//! invert arbitrary functions.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generated value together with its shrink space.
///
/// The runner's contract: after a call that returns `true`, [`current`]
/// yields the newly proposed value.  [`simplify`] is called when the
/// current value *failed* the property (propose something simpler);
/// [`complicate`] when it *passed* (back off toward the last failure).
/// Both return `false` when the search in that direction is exhausted, and
/// must leave the tree at a readable value either way.
///
/// [`current`]: ValueTree::current
/// [`simplify`]: ValueTree::simplify
/// [`complicate`]: ValueTree::complicate
pub trait ValueTree {
    /// The type of the value this tree holds.
    type Value;

    /// The value at the tree's current position.
    fn current(&self) -> Self::Value;

    /// Propose a simpler value.  Returns `false` when none remains.
    fn simplify(&mut self) -> bool;

    /// The last simplification overshot (the property passed): move back
    /// toward the last failing value.  Returns `false` when exhausted.
    fn complicate(&mut self) -> bool;
}

impl<V: ValueTree + ?Sized> ValueTree for Box<V> {
    type Value = V::Value;
    fn current(&self) -> Self::Value {
        (**self).current()
    }
    fn simplify(&mut self) -> bool {
        (**self).simplify()
    }
    fn complicate(&mut self) -> bool {
        (**self).complicate()
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// The shrinkable tree this strategy produces.
    type Tree: ValueTree<Value = Self::Value>;

    /// Generate one value tree.
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree;

    /// Generate one value (the root of a fresh tree, shrink space unused).
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Map generated values through `f`.  Shrinking happens on the *input*
    /// side: the mapped tree simplifies the inner value and re-applies `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Map generated values through `f`, regenerating whenever `f` returns
    /// `None`.  `reason` is reported if the filter rejects too often.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
        U: Clone,
    {
        FilterMap {
            inner: self,
            f: Rc::new(f),
            reason,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case and `branch`
    /// wraps an inner strategy into a composite, up to `depth` levels deep.
    /// (`_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        Self::Tree: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
        S::Tree: 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, composite)]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        Self::Tree: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait StrategyObj<T> {
    fn new_tree_obj(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>>;
}

impl<S> StrategyObj<S::Value> for S
where
    S: Strategy,
    S::Tree: 'static,
{
    fn new_tree_obj(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S::Value>> {
        Box::new(self.new_tree(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn StrategyObj<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    type Tree = Box<dyn ValueTree<Value = T>>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        self.inner.new_tree_obj(rng)
    }
}

/// A strategy that always yields a clone of one value (no shrink space).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

/// The tree of a [`Just`] (and of any other single-point strategy).
#[derive(Debug, Clone)]
pub struct JustTree<T: Clone>(T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Tree = JustTree<T>;
    fn new_tree(&self, _rng: &mut TestRng) -> JustTree<T> {
        JustTree(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

/// The tree of a [`Map`]: shrinks the inner value, re-applies `f`.
pub struct MapTree<T, F> {
    inner: T,
    f: Rc<F>,
}

impl<T, F, U> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> U,
{
    type Value = U;
    fn current(&self) -> U {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    type Tree = MapTree<S::Tree, F>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(rng),
            f: Rc::clone(&self.f),
        }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: Rc<F>,
    reason: &'static str,
}

impl<S: Clone, F> Clone for FilterMap<S, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
            reason: self.reason,
        }
    }
}

/// The tree of a [`FilterMap`]: shrinks the inner value, skipping shrink
/// candidates the filter rejects.  The last accepted value is cached so the
/// tree always rests on a valid value even when a shrink direction dead-ends
/// on rejections.
pub struct FilterMapTree<T, F, U> {
    inner: T,
    f: Rc<F>,
    last_valid: U,
}

impl<T, F, U> FilterMapTree<T, F, U>
where
    T: ValueTree,
    F: Fn(T::Value) -> Option<U>,
    U: Clone,
{
    fn accept_if_valid(&mut self) -> bool {
        if let Some(v) = (self.f)(self.inner.current()) {
            self.last_valid = v;
            true
        } else {
            false
        }
    }
}

impl<T, F, U> ValueTree for FilterMapTree<T, F, U>
where
    T: ValueTree,
    F: Fn(T::Value) -> Option<U>,
    U: Clone,
{
    type Value = U;
    fn current(&self) -> U {
        // Every accepted move refreshes `last_valid` (and new_tree seeds
        // it), so the cache is always the mapping of the inner tree's
        // current resting point — no need to re-run the filter closure.
        self.last_valid.clone()
    }
    fn simplify(&mut self) -> bool {
        // A rejected candidate says nothing about pass/fail, so keep
        // moving *downward* past it — calling complicate here would raise
        // the inner tree's lower bound and permanently fence off the
        // smaller half of the search space.  If the property later passes
        // on an overshoot, the runner's ordinary complicate() recovers.
        for _ in 0..64 {
            if !self.inner.simplify() {
                return false;
            }
            if self.accept_if_valid() {
                return true;
            }
        }
        false
    }
    fn complicate(&mut self) -> bool {
        for _ in 0..8 {
            if !self.inner.complicate() {
                return false;
            }
            if self.accept_if_valid() {
                return true;
            }
        }
        false
    }
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
    U: Clone,
{
    type Value = U;
    type Tree = FilterMapTree<S::Tree, F, U>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        for _ in 0..1000 {
            let inner = self.inner.new_tree(rng);
            if let Some(v) = (self.f)(inner.current()) {
                return FilterMapTree {
                    inner,
                    f: Rc::clone(&self.f),
                    last_valid: v,
                };
            }
        }
        panic!(
            "prop_filter_map rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// A weighted union of strategies over the same value type (the expansion
/// of [`prop_oneof!`](crate::prop_oneof)).  Shrinking stays within the
/// chosen variant.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` pairs.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        let total = variants.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { variants, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            variants: self.variants.clone(),
            total: self.total,
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    type Tree = Box<dyn ValueTree<Value = T>>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        let mut pick = rng.next_below(self.total);
        for (w, strat) in &self.variants {
            if pick < *w as u64 {
                return strat.new_tree(rng);
            }
            pick -= *w as u64;
        }
        self.variants.last().unwrap().1.new_tree(rng)
    }
}

/// A binary-search shrink tree over an integer-like value space.
///
/// Values are encoded as a non-negative offset from `base` along direction
/// `dir` (`value = base + dir · offset`), with `offset = 0` the simplest
/// value.  [`simplify`](ValueTree::simplify) bisects toward 0;
/// [`complicate`](ValueTree::complicate) bisects back toward the smallest
/// offset still known to fail.
pub struct BisectTree<T> {
    base: i128,
    dir: i128,
    lo: u128,
    curr: u128,
    hi: u128,
    decode: fn(i128) -> T,
}

impl<T> BisectTree<T> {
    /// A tree whose current value is `base + dir · offset`.
    pub fn new(base: i128, dir: i128, offset: u128, decode: fn(i128) -> T) -> Self {
        Self {
            base,
            dir,
            lo: 0,
            curr: offset,
            hi: offset,
            decode,
        }
    }
}

impl<T> ValueTree for BisectTree<T> {
    type Value = T;
    fn current(&self) -> T {
        (self.decode)(self.base + self.dir * self.curr as i128)
    }
    fn simplify(&mut self) -> bool {
        if self.curr <= self.lo {
            return false;
        }
        self.hi = self.curr;
        self.curr = self.lo + (self.curr - self.lo) / 2;
        true
    }
    fn complicate(&mut self) -> bool {
        if self.curr >= self.hi {
            return false;
        }
        self.lo = self.curr + 1;
        if self.lo >= self.hi {
            // Only the known-failing upper bound remains; nothing new.
            self.curr = self.hi;
            return false;
        }
        self.curr = self.lo + (self.hi - self.lo) / 2;
        true
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            type Tree = BisectTree<$t>;
            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                let v = self.start + (rng.next_below(span)) as $t;
                BisectTree::new(
                    self.start as i128,
                    1,
                    (v - self.start) as u128,
                    |raw| raw as $t,
                )
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            type Tree = BisectTree<$t>;
            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let v = lo + ((rng.next_u64() as u128 % span) as $t);
                BisectTree::new(lo as i128, 1, (v - lo) as u128, |raw| raw as $t)
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

/// A bisection shrink tree over a floating-point interval, shrinking toward
/// the interval's lower end with a bounded number of refinement steps.
pub struct F64Tree {
    lo: f64,
    curr: f64,
    hi: f64,
    steps: u32,
}

impl ValueTree for F64Tree {
    type Value = f64;
    fn current(&self) -> f64 {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.steps == 0 || self.curr <= self.lo {
            return false;
        }
        let next = self.lo + (self.curr - self.lo) / 2.0;
        if next == self.curr {
            return false;
        }
        self.steps -= 1;
        self.hi = self.curr;
        self.curr = next;
        true
    }
    fn complicate(&mut self) -> bool {
        if self.steps == 0 || self.curr >= self.hi {
            return false;
        }
        let next = self.curr + (self.hi - self.curr) / 2.0;
        if next == self.curr {
            return false;
        }
        self.steps -= 1;
        self.lo = self.curr;
        self.curr = next;
        true
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    type Tree = F64Tree;
    fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
        let v = self.start + (self.end - self.start) * rng.next_unit_f64();
        F64Tree {
            lo: self.start,
            curr: v,
            hi: v,
            steps: 32,
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    type Tree = F64Tree;
    fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
        let v = self.start() + (self.end() - self.start()) * rng.next_unit_f64();
        F64Tree {
            lo: *self.start(),
            curr: v,
            hi: v,
            steps: 32,
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($tree:ident: $(($field:ident, $name:ident)),+);)*) => {$(
        /// The tree of a tuple strategy: components shrink left to right.
        pub struct $tree<$($name),+> {
            $($field: $name,)+
            active: usize,
        }

        impl<$($name: ValueTree),+> ValueTree for $tree<$($name),+> {
            type Value = ($($name::Value,)+);
            fn current(&self) -> Self::Value {
                ($(self.$field.current(),)+)
            }
            fn simplify(&mut self) -> bool {
                let mut idx = 0usize;
                $(
                    if self.active <= idx && self.$field.simplify() {
                        self.active = idx;
                        return true;
                    }
                    idx += 1;
                )+
                let _ = idx;
                false
            }
            fn complicate(&mut self) -> bool {
                let mut idx = 0usize;
                $(
                    if self.active == idx {
                        return self.$field.complicate();
                    }
                    idx += 1;
                )+
                let _ = idx;
                false
            }
        }

        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            type Tree = $tree<$($name::Tree),+>;
            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                let ($($name,)+) = self;
                $tree {
                    $($field: $name.new_tree(rng),)+
                    active: 0,
                }
            }
        }
    )*};
}

impl_tuple_strategy! {
    (TupleTree1: (t0, A));
    (TupleTree2: (t0, A), (t1, B));
    (TupleTree3: (t0, A), (t1, B), (t2, C));
    (TupleTree4: (t0, A), (t1, B), (t2, C), (t3, D));
    (TupleTree5: (t0, A), (t1, B), (t2, C), (t3, D), (t4, E));
    (TupleTree6: (t0, A), (t1, B), (t2, C), (t3, D), (t4, E), (t5, F));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_maps_and_unions_generate_in_bounds() {
        let mut rng = TestRng::new(42);
        let strat = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
        let union = crate::prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(7);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion should actually recurse");
        assert!(max_depth <= 3, "recursion must respect the depth bound");
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0u64..100).prop_filter_map("odd", |x| if x % 2 == 0 { Some(x) } else { None });
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    use crate::shrink_fully;

    #[test]
    fn integer_shrinking_finds_the_boundary() {
        // Property fails iff v >= 17: the minimal counterexample is 17.
        let mut rng = TestRng::new(3);
        loop {
            let mut tree = (0u64..1000).new_tree(&mut rng);
            if tree.current() < 17 {
                continue;
            }
            assert_eq!(shrink_fully(&mut tree, |&v| v >= 17), 17);
            break;
        }
    }

    #[test]
    fn mapped_shrinking_shrinks_through_the_map() {
        let strat = (0u64..1000).prop_map(|x| x * 3);
        let mut rng = TestRng::new(5);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            if tree.current() < 300 {
                continue;
            }
            // Fails iff v >= 300 (i.e. inner >= 100): minimal is 300.
            assert_eq!(shrink_fully(&mut tree, |&v| v >= 300), 300);
            break;
        }
    }

    #[test]
    fn tuple_shrinking_minimises_every_component() {
        let strat = (0u64..100, 0u64..100);
        let mut rng = TestRng::new(9);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            let (a, b) = tree.current();
            if a < 5 || b < 7 {
                continue;
            }
            let min = shrink_fully(&mut tree, |&(a, b)| a >= 5 && b >= 7);
            assert_eq!(min, (5, 7));
            break;
        }
    }

    #[test]
    fn filter_map_shrinking_skips_rejected_candidates() {
        let strat = (0u64..1000).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        let mut rng = TestRng::new(11);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            if tree.current() < 100 {
                continue;
            }
            let start = tree.current();
            let min = shrink_fully(&mut tree, |&v| v >= 100);
            assert!(
                min >= 100 && min % 2 == 0,
                "minimal even failure, got {min}"
            );
            // The parity filter skews the bisection, so the result is
            // best-effort rather than exactly 100 — but it must have moved.
            assert!(
                min < start.max(200),
                "shrinks toward the boundary: start {start}, got {min}"
            );
            break;
        }
    }
}
