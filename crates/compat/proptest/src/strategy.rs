//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Map generated values through `f`, regenerating whenever `f` returns
    /// `None`.  `reason` is reported if the filter rejects too often.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case and `branch`
    /// wraps an inner strategy into a composite, up to `depth` levels deep.
    /// (`_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, composite)]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn StrategyObj<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_obj(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// A weighted union of strategies over the same value type (the expansion
/// of [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` pairs.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        let total = variants.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { variants, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            variants: self.variants.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total);
        for (w, strat) in &self.variants {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.variants.last().unwrap().1.generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_maps_and_unions_generate_in_bounds() {
        let mut rng = TestRng::new(42);
        let strat = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
        let union = crate::prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(7);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion should actually recurse");
        assert!(max_depth <= 3, "recursion must respect the depth bound");
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0u64..100).prop_filter_map("odd", |x| if x % 2 == 0 { Some(x) } else { None });
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
