//! The `any::<T>()` entry point for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u32_covers_high_bits() {
        let mut rng = TestRng::new(3);
        let strat = any::<u32>();
        let mut saw_high = false;
        for _ in 0..100 {
            if strat.generate(&mut rng) > u32::MAX / 2 {
                saw_high = true;
            }
        }
        assert!(saw_high);
    }
}
