//! The `any::<T>()` entry point for primitive types.

use crate::strategy::{BisectTree, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            type Tree = BisectTree<$t>;
            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                // Shrink toward 0, preserving the sign of signed values.
                let v = rng.next_u64() as $t;
                let raw = v as i128;
                let dir = if raw < 0 { -1 } else { 1 };
                BisectTree::new(0, dir, raw.unsigned_abs(), |raw| raw as $t)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    type Tree = BisectTree<bool>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        // `true` shrinks to `false`.
        let v = rng.next_u64() & 1;
        BisectTree::new(0, 1, v as u128, |raw| raw != 0)
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ValueTree;

    #[test]
    fn any_u32_covers_high_bits() {
        let mut rng = TestRng::new(3);
        let strat = any::<u32>();
        let mut saw_high = false;
        for _ in 0..100 {
            if strat.generate(&mut rng) > u32::MAX / 2 {
                saw_high = true;
            }
        }
        assert!(saw_high);
    }

    #[test]
    fn signed_values_shrink_toward_zero_keeping_their_sign() {
        let mut rng = TestRng::new(8);
        let strat = any::<i64>();
        loop {
            let mut tree = strat.new_tree(&mut rng);
            if tree.current() >= -10 {
                continue;
            }
            // Fails iff value <= -5: minimal counterexample is -5.
            assert_eq!(crate::shrink_fully(&mut tree, |&x| x <= -5), -5);
            break;
        }
    }
}
