//! The case runner behind the [`proptest!`](crate::proptest) macro,
//! including the shrinking loop that minimises failing cases.

use crate::strategy::{Strategy, ValueTree};

/// Configuration for a property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many successful cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is refuted.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The result type of a generated case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving strategy generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniformly distributed in `[0, bound)`; `0` when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the test name, so every test gets its own stream but
    // runs are reproducible.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` over `config.cases` cases generated from `strat`, shrinking
/// the first failing case to a minimal counterexample before panicking.
///
/// This is what the [`proptest!`](crate::proptest) macro expands to.  The
/// panic message carries the *minimal* case's failure message (typically a
/// `prop_assert!` rendering of the offending values) plus the case index,
/// so the run is reproducible.
pub fn run_cases_with<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strat: &S,
    mut body: impl FnMut(S::Value) -> TestCaseResult,
) {
    let base = name_seed(name);
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let max_rejects = (config.cases as u64) * 50 + 1000;
    let mut case = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::new(base.wrapping_add(case.wrapping_mul(0x9E37_79B9)));
        let case_index = case;
        case += 1;
        let mut tree = strat.new_tree(&mut rng);
        match body(tree.current()) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases ({rejects}); \
                         assumptions are too strict"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, steps) = shrink_failure(&mut tree, &mut body, msg);
                panic!(
                    "proptest '{name}' failed at case #{case_index} \
                     (minimised through {steps} accepted shrink steps): {minimal}"
                );
            }
        }
    }
}

/// Walk a failing tree toward a minimal counterexample: keep simplifying
/// while the property still fails, back off (`complicate`) when a candidate
/// passes, and give up after a bounded number of evaluations.  Returns the
/// failure message of the smallest failing value and the number of accepted
/// shrink steps.
fn shrink_failure<T: ValueTree>(
    tree: &mut T,
    body: &mut impl FnMut(T::Value) -> TestCaseResult,
    first_message: String,
) -> (String, usize) {
    let mut best = first_message;
    let mut accepted = 0usize;
    let mut budget = 512usize;
    'outer: while budget > 0 {
        if !tree.simplify() {
            break;
        }
        loop {
            budget -= 1;
            match body(tree.current()) {
                Err(TestCaseError::Fail(msg)) => {
                    best = msg;
                    accepted += 1;
                    break; // keep simplifying from here
                }
                Ok(()) | Err(TestCaseError::Reject(_)) => {
                    if budget == 0 || !tree.complicate() {
                        break 'outer;
                    }
                }
            }
            if budget == 0 {
                break 'outer;
            }
        }
    }
    (best, accepted)
}

/// Run `body` over `config.cases` generated cases, panicking (with the
/// case's seed, for reproduction) on the first failure.  Unlike
/// [`run_cases_with`] this drives the RNG directly and therefore cannot
/// shrink.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = name_seed(name);
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let max_rejects = (config.cases as u64) * 50 + 1000;
    let mut case = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::new(base.wrapping_add(case.wrapping_mul(0x9E37_79B9)));
        case += 1;
        match body(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases ({rejects}); \
                         assumptions are too strict"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case #{case}: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        run_cases(ProptestConfig::with_cases(16), "p", |rng| {
            let v = rng.next_below(10);
            if v >= 10 {
                return Err(TestCaseError::fail("out of range"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        run_cases(ProptestConfig::with_cases(16), "q", |rng| {
            if rng.next_below(4) == 0 {
                return Err(TestCaseError::fail("boom"));
            }
            Ok(())
        });
    }

    #[test]
    fn run_cases_with_passes_clean_properties() {
        run_cases_with(
            ProptestConfig::with_cases(32),
            "s",
            &(0u64..100, 0u64..100),
            |(a, b)| {
                if a >= 100 || b >= 100 {
                    return Err(TestCaseError::fail("out of range"));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn failures_are_shrunk_to_the_minimal_counterexample() {
        let caught = std::panic::catch_unwind(|| {
            run_cases_with(
                ProptestConfig::with_cases(64),
                "shrinker",
                &(0u64..10_000,),
                |(v,)| {
                    if v >= 1234 {
                        return Err(TestCaseError::fail(format!("v = {v}")));
                    }
                    Ok(())
                },
            );
        })
        .expect_err("the property must fail");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(
            msg.contains("v = 1234"),
            "panic must report the minimal failing value, got: {msg}"
        );
    }

    #[test]
    fn rejections_do_not_fail_the_test() {
        let mut ran = 0u32;
        run_cases(ProptestConfig::with_cases(8), "r", |rng| {
            if rng.next_below(2) == 0 {
                return Err(TestCaseError::reject("skip"));
            }
            ran += 1;
            Ok(())
        });
        assert_eq!(ran, 8);
    }
}
