//! A workspace-local, dependency-free stand-in for the subset of the
//! crates.io `proptest` API that this repository's property tests use.
//!
//! The build environment is fully offline, so the real `proptest` crate
//! cannot be fetched.  This shim implements randomised property testing —
//! **including shrinking** — with the same surface syntax:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`],
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter_map`,
//!   `prop_recursive` and `boxed`,
//! * range, tuple and [`Just`](strategy::Just) strategies, plus
//!   [`collection::vec`] and [`collection::btree_set`],
//! * [`arbitrary::any`] for the primitive types the tests request.
//!
//! Like real proptest, strategies produce [`strategy::ValueTree`]s rather
//! than bare values: the generated value plus a lazily explored space of
//! simpler values.  On failure the runner bisects integers toward their
//! range minimum, drops collection elements and shrinks tuples
//! component-wise — through `prop_map`/`prop_filter_map` pipelines — and
//! panics with the failure message of the *minimal* counterexample.  Case
//! generation is deterministic in the test name, so runs are reproducible.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Shared helper for this crate's own tests: drive a tree exactly the way
/// [`test_runner::run_cases_with`] does, returning the smallest failing
/// value found.  Kept in one place so the tests cannot silently drift from
/// the real runner's shrink contract.
#[cfg(test)]
pub(crate) fn shrink_fully<T: strategy::ValueTree>(
    tree: &mut T,
    fails: impl Fn(&T::Value) -> bool,
) -> T::Value {
    let mut best = tree.current();
    assert!(fails(&best), "shrink starts from a failing value");
    let mut budget = 10_000;
    'outer: while budget > 0 {
        if !tree.simplify() {
            break;
        }
        loop {
            budget -= 1;
            let v = tree.current();
            if fails(&v) {
                best = v;
                break;
            }
            if budget == 0 || !tree.complicate() {
                break 'outer;
            }
        }
    }
    best
}

/// The glob-import prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discard the current case (without counting it as a failure) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A union of strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests.  Each function's arguments are drawn from the
/// given strategies; the body runs once per generated case, and the first
/// failing case is shrunk to a minimal counterexample before panicking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::test_runner::run_cases_with(config, stringify!($name), &strat, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
