//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// A size specification: an exact count or a (half-open / inclusive) range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.next_below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s of values from an element strategy.
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate sets whose size is *at most* the sampled size (duplicates
/// collapse, as in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_size_spec() {
        let mut rng = TestRng::new(5);
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0u32..10, 1..5);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_sets_are_deduplicated() {
        let mut rng = TestRng::new(9);
        let s = btree_set(0u32..3, 0..10);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() <= 3);
        }
    }
}
