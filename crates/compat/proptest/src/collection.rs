//! Collection strategies: `vec` and `btree_set`, with element-dropping and
//! element-wise shrinking.

use crate::strategy::{Strategy, ValueTree};
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// A size specification: an exact count or a (half-open / inclusive) range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.next_below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// The tree of a collection strategy.
///
/// Shrinks in two phases: first drop elements one by one (down to the
/// spec's minimum length), then shrink the surviving elements in place via
/// their own trees.
pub struct VecTree<T> {
    elems: Vec<T>,
    include: Vec<bool>,
    min_len: usize,
    next_remove: usize,
    last_removed: Option<usize>,
    active_elem: usize,
}

impl<T: ValueTree> VecTree<T> {
    fn new(elems: Vec<T>, min_len: usize) -> Self {
        let include = vec![true; elems.len()];
        Self {
            elems,
            include,
            min_len,
            next_remove: 0,
            last_removed: None,
            active_elem: 0,
        }
    }

    fn included_count(&self) -> usize {
        self.include.iter().filter(|&&b| b).count()
    }

    fn current_vec(&self) -> Vec<T::Value> {
        self.elems
            .iter()
            .zip(&self.include)
            .filter(|(_, &inc)| inc)
            .map(|(t, _)| t.current())
            .collect()
    }
}

impl<T: ValueTree> ValueTree for VecTree<T> {
    type Value = Vec<T::Value>;

    fn current(&self) -> Vec<T::Value> {
        self.current_vec()
    }

    fn simplify(&mut self) -> bool {
        // Phase 1: drop elements.
        while self.next_remove < self.elems.len() {
            let i = self.next_remove;
            self.next_remove += 1;
            if self.include[i] && self.included_count() > self.min_len {
                self.include[i] = false;
                self.last_removed = Some(i);
                return true;
            }
        }
        self.last_removed = None;
        // Phase 2: shrink surviving elements in place.
        while self.active_elem < self.elems.len() {
            let k = self.active_elem;
            if self.include[k] && self.elems[k].simplify() {
                return true;
            }
            self.active_elem += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        if let Some(i) = self.last_removed.take() {
            // The collection without element i passed: keep the element.
            self.include[i] = true;
            return true;
        }
        if self.active_elem < self.elems.len() {
            return self.elems[self.active_elem].complicate();
        }
        false
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    type Tree = VecTree<S::Tree>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        let n = self.size.sample(rng);
        let elems = (0..n).map(|_| self.element.new_tree(rng)).collect();
        VecTree::new(elems, self.size.lo)
    }
}

/// A strategy producing `BTreeSet`s of values from an element strategy.
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate sets whose size is *at most* the sampled size (duplicates
/// collapse, as in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The tree of a [`BTreeSetStrategy`]: a [`VecTree`] whose current value is
/// collected into a set.
pub struct BTreeSetTree<T>(VecTree<T>);

impl<T> ValueTree for BTreeSetTree<T>
where
    T: ValueTree,
    T::Value: Ord,
{
    type Value = BTreeSet<T::Value>;
    fn current(&self) -> BTreeSet<T::Value> {
        self.0.current().into_iter().collect()
    }
    fn simplify(&mut self) -> bool {
        self.0.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.0.complicate()
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    type Tree = BTreeSetTree<S::Tree>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        let n = self.size.sample(rng);
        let elems = (0..n).map(|_| self.element.new_tree(rng)).collect();
        // The set may dedup below the nominal minimum anyway, so shrink
        // removal keeps the vec-level minimum only.
        BTreeSetTree(VecTree::new(elems, self.size.lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_size_spec() {
        let mut rng = TestRng::new(5);
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0u32..10, 1..5);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_sets_are_deduplicated() {
        let mut rng = TestRng::new(9);
        let s = btree_set(0u32..3, 0..10);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() <= 3);
        }
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements() {
        // Property: fails iff the vector contains an element >= 50.
        let strat = vec(0u64..100, 0..12);
        let mut rng = TestRng::new(17);
        let mut tree = loop {
            let t = strat.new_tree(&mut rng);
            if t.current().iter().any(|&x| x >= 50) {
                break t;
            }
        };
        let best = crate::shrink_fully(&mut tree, |v| v.iter().any(|&x| x >= 50));
        assert_eq!(
            best,
            std::vec![50],
            "minimal counterexample is [50], got {best:?}"
        );
    }
}
