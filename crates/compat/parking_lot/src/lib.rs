//! A workspace-local stand-in for the subset of the crates.io
//! `parking_lot` API used by this repository: a `Mutex` whose `lock()`
//! returns the guard directly (no `Result`), recovering from poisoning.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutex with `parking_lot`'s panic-free locking API, backed by
/// `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.  Poisoning is
    /// transparently recovered from, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(*m.lock(), vec![1, 2, 3, 4]);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
