//! A workspace-local TOML subset parser and serializer.
//!
//! The build environment is fully offline, so the crates.io `toml` crate
//! cannot be fetched; this shim implements the slice of TOML that the
//! `dbf-scenario` file format needs:
//!
//! * `[table]` and `[[array-of-tables]]` headers (dotted paths supported),
//! * `key = value` pairs with bare or basic-quoted keys,
//! * basic strings (with `\\ \" \n \t \r` escapes), integers, floats,
//!   booleans, (possibly multi-line) arrays and inline tables,
//! * `#` comments.
//!
//! Parsing produces a [`Value`] tree; [`Value`]'s `Display` emits TOML that
//! this parser round-trips losslessly (tables serialize with sorted keys).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A string-keyed TOML table (sorted for deterministic serialization).
pub type Table = BTreeMap<String, Value>;

/// A TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    String(String),
    /// A 64-bit signed integer.
    Integer(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Boolean(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A nested table.
    Table(Table),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload (integers coerce), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The table, if this is a table.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Look up a key in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }
}

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// The 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parse a TOML document into a [`Value::Table`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    Parser::new(input).parse_document()
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            _input: input,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error {
            line: self.line,
            message: message.into(),
        }
    }

    /// Consume `expected`, erroring *before* consuming anything else (so
    /// the reported line number points at the offending character, not
    /// past a consumed newline).
    fn expect_char(&mut self, expected: char, context: &str) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {expected:?} {context}, found {:?}",
                self.peek()
            )))
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Skip whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ') | Some('\t') | Some('\n') | Some('\r') => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Require end-of-line (allowing a trailing comment).
    fn expect_eol(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.peek() == Some('#') {
            while let Some(c) = self.peek() {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                }
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected end of line, found {c:?}"))),
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let mut root = Table::new();
        // Path of the table currently being filled ([] = root).
        let mut current_path: Vec<String> = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => break,
                Some('[') => {
                    self.bump();
                    let array_of_tables = self.peek() == Some('[');
                    if array_of_tables {
                        self.bump();
                    }
                    self.skip_ws();
                    let path = self.parse_key_path()?;
                    self.skip_ws();
                    self.expect_char(']', "closing table header")?;
                    if array_of_tables {
                        self.expect_char(']', "closing array-of-tables header")?;
                    }
                    self.expect_eol()?;
                    if array_of_tables {
                        push_array_table(&mut root, &path).map_err(|m| self.err(m))?;
                    } else {
                        ensure_table(&mut root, &path).map_err(|m| self.err(m))?;
                    }
                    current_path = path;
                }
                Some(_) => {
                    let key = self.parse_key()?;
                    self.skip_ws();
                    self.expect_char('=', &format!("after key {key:?}"))?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    self.expect_eol()?;
                    let table = resolve_mut(&mut root, &current_path)
                        .ok_or_else(|| self.err("internal: unresolved current table"))?;
                    if table.insert(key.clone(), value).is_some() {
                        return Err(self.err(format!("duplicate key {key:?}")));
                    }
                }
            }
        }
        Ok(Value::Table(root))
    }

    fn parse_key_path(&mut self) -> Result<Vec<String>, Error> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
                self.skip_ws();
                path.push(self.parse_key()?);
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn parse_key(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut out = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        out.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(out)
            }
            other => Err(self.err(format!("expected a key, found {other:?}"))),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        if self.bump() != Some('"') {
            return Err(self.err("expected '\"'"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(self.err(format!("unsupported escape {other:?}"))),
                },
                Some('\n') => return Err(self.err("newline in basic string")),
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some('"') => Ok(Value::String(self.parse_basic_string()?)),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some('t') | Some('f') => {
                let word = self.parse_bare_word();
                match word.as_str() {
                    "true" => Ok(Value::Boolean(true)),
                    "false" => Ok(Value::Boolean(false)),
                    other => Err(self.err(format!("unexpected value {other:?}"))),
                }
            }
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }

    fn parse_bare_word(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let mut raw = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || "+-._eE".contains(c) {
                raw.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
        if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
            cleaned
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float {raw:?}: {e}")))
        } else {
            cleaned
                .parse::<i64>()
                .map(Value::Integer)
                .map_err(|e| self.err(format!("bad integer {raw:?}: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        if self.bump() != Some('[') {
            return Err(self.err("expected '['"));
        }
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(Value::Array(out));
            }
            out.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                other => {
                    return Err(self.err(format!("expected ',' or ']' in array, found {other:?}")))
                }
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, Error> {
        if self.bump() != Some('{') {
            return Err(self.err("expected '{'"));
        }
        let mut table = Table::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_ws();
            let key = self.parse_key()?;
            self.skip_ws();
            if self.bump() != Some('=') {
                return Err(self.err("expected '=' in inline table"));
            }
            self.skip_ws();
            let value = self.parse_value()?;
            if table.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key:?} in inline table")));
            }
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Table(table)),
                other => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in inline table, found {other:?}"
                    )))
                }
            }
        }
    }
}

/// Walk `path` from `root`, creating tables as needed, and return the
/// destination table.  A trailing array-of-tables segment resolves to its
/// last element.
fn ensure_table<'t>(root: &'t mut Table, path: &[String]) -> Result<&'t mut Table, String> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("key {seg:?} is not a table")),
            },
            _ => return Err(format!("key {seg:?} is not a table")),
        };
    }
    Ok(cur)
}

/// Append a fresh table to the array-of-tables at `path`.
fn push_array_table(root: &mut Table, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty table header")?;
    let parent = ensure_table(root, parents)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => {
            a.push(Value::Table(Table::new()));
            Ok(())
        }
        _ => Err(format!("key {last:?} is not an array of tables")),
    }
}

/// Walk an existing `path` immutably-shaped (used to re-find the current
/// table while parsing).
fn resolve_mut<'t>(root: &'t mut Table, path: &[String]) -> Option<&'t mut Table> {
    let mut cur = root;
    for seg in path {
        cur = match cur.get_mut(seg)? {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut()? {
                Value::Table(t) => t,
                _ => return None,
            },
            _ => return None,
        };
    }
    Some(cur)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn is_scalar(v: &Value) -> bool {
    !matches!(v, Value::Table(_)) && !is_array_of_tables(v)
}

fn is_array_of_tables(v: &Value) -> bool {
    match v {
        Value::Array(a) => !a.is_empty() && a.iter().all(|e| matches!(e, Value::Table(_))),
        _ => false,
    }
}

fn write_inline(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::String(s) => write!(f, "\"{}\"", escape(s)),
        Value::Integer(i) => write!(f, "{i}"),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Value::Boolean(b) => write!(f, "{b}"),
        Value::Array(a) => {
            write!(f, "[")?;
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_inline(f, e)?;
            }
            write!(f, "]")
        }
        Value::Table(t) => {
            write!(f, "{{ ")?;
            for (i, (k, v)) in t.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k} = ")?;
                write_inline(f, v)?;
            }
            write!(f, " }}")
        }
    }
}

fn write_table(f: &mut fmt::Formatter<'_>, path: &str, table: &Table) -> fmt::Result {
    // Scalars (and scalar arrays) first...
    for (k, v) in table {
        if is_scalar(v) {
            write!(f, "{k} = ")?;
            write_inline(f, v)?;
            writeln!(f)?;
        }
    }
    // ...then sub-tables and arrays of tables as sections.
    for (k, v) in table {
        let sub_path = if path.is_empty() {
            k.clone()
        } else {
            format!("{path}.{k}")
        };
        match v {
            Value::Table(t) => {
                writeln!(f, "\n[{sub_path}]")?;
                write_table(f, &sub_path, t)?;
            }
            Value::Array(a) if is_array_of_tables(v) => {
                for e in a {
                    if let Value::Table(t) = e {
                        writeln!(f, "\n[[{sub_path}]]")?;
                        write_table(f, &sub_path, t)?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Table(t) => write_table(f, "", t),
            other => write_inline(f, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# a scenario-ish document
name = "demo"
count = 42
ratio = 0.25
flag = true
tags = ["a", "b"]

[topology]
family = "ring"
size = 6

[topology.extra]
depth = 3

[[phases]]
label = "one"
loss = 0.0

[[phases]]
label = "two"
loss = 0.3
change = { op = "fail_link", a = 0, b = 1 }
"#;
        let v = from_str(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_integer(), Some(42));
        assert_eq!(v.get("ratio").unwrap().as_float(), Some(0.25));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("topology").unwrap().get("family").unwrap().as_str(),
            Some("ring")
        );
        assert_eq!(
            v.get("topology")
                .unwrap()
                .get("extra")
                .unwrap()
                .get("depth")
                .unwrap()
                .as_integer(),
            Some(3)
        );
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].get("label").unwrap().as_str(), Some("two"));
        assert_eq!(
            phases[1].get("change").unwrap().get("op").unwrap().as_str(),
            Some("fail_link")
        );
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"
name = "round \"trip\""
n = 7
f = 1.5
ok = false
xs = [1, 2, 3]
[inner]
k = "v"
[[runs]]
seed = 1
[[runs]]
seed = 2
cfg = { loss = 0.1, dup = 0.2 }
"#;
        let v = from_str(doc).unwrap();
        let emitted = v.to_string();
        let reparsed =
            from_str(&emitted).unwrap_or_else(|e| panic!("reparse failed: {e}\n{emitted}"));
        assert_eq!(v, reparsed, "emitted TOML:\n{emitted}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_str("a = 1\nb = ???\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        assert!(
            from_str("a = 1\na = 2\n").is_err(),
            "duplicate keys rejected"
        );
        assert!(from_str("[t\n").is_err(), "unclosed header rejected");
    }

    #[test]
    fn multiline_arrays_parse() {
        let doc = "xs = [\n  1,\n  2,\n  3,\n]\n";
        let v = from_str(doc).unwrap();
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn negative_numbers_and_floats() {
        let v = from_str("a = -3\nb = -0.5\nc = 1e3\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_integer(), Some(-3));
        assert_eq!(v.get("b").unwrap().as_float(), Some(-0.5));
        assert_eq!(v.get("c").unwrap().as_float(), Some(1000.0));
    }
}
