//! A workspace-local, dependency-free stand-in for the subset of the
//! crates.io `rand` 0.8 API that this repository uses.
//!
//! The build environment is fully offline, so the real `rand` crate cannot
//! be fetched.  This shim reproduces the API surface the workspace relies
//! on — `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_bool` and
//! `Rng::gen_range` over integer ranges — on top of the SplitMix64 /
//! xoshiro256++ generators.  It is deterministic in the seed, which is the
//! only statistical property the tests depend on.

#![forbid(unsafe_code)]

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A boolean that is true with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator seeded via SplitMix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        // p ≈ 0.5 produces both outcomes over a reasonable sample
        let mut seen = [false, false];
        for _ in 0..1000 {
            seen[r.gen_bool(0.5) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
