//! Property-based tests for simple paths, the path-algebra laws P1–P3 and
//! the path-vector lifting.

use dbf_algebra::prelude::*;
use dbf_paths::prelude::*;
use proptest::prelude::*;

const NODES: usize = 6;

/// A random simple path over `0..NODES` (possibly empty).
fn simple_path() -> impl Strategy<Value = SimplePath> {
    // A permutation prefix: shuffle the node ids and take a prefix of
    // length 0 or 2..=NODES.
    (
        Just(()),
        proptest::collection::vec(0usize..1_000_000, NODES),
        0usize..=NODES,
    )
        .prop_map(|((), keys, mut len)| {
            if len == 1 {
                len = 2;
            }
            let mut ids: Vec<usize> = (0..NODES).collect();
            ids.sort_by_key(|i| keys[*i]);
            ids.truncate(len);
            SimplePath::from_nodes(ids).expect("distinct prefix of a permutation")
        })
}

/// A random (possibly inconsistent) route of the path-vector lifting of
/// shortest paths.
fn pv_route() -> impl Strategy<Value = PvRoute<NatInf>> {
    prop_oneof![
        1 => Just(PvRoute::Invalid),
        8 => (0u64..2_000, simple_path()).prop_map(|(v, p)| PvRoute::Valid {
            value: NatInf::fin(v),
            path: p
        }),
    ]
}

fn pv_edge() -> impl Strategy<Value = PvEdge<NatInf>> {
    (0..NODES, 0..NODES, 1u64..50).prop_filter_map("self loop", |(i, j, w)| {
        if i == j {
            None
        } else {
            Some(PvEdge {
                src: i,
                dst: j,
                inner: NatInf::fin(w),
            })
        }
    })
}

proptest! {
    // ------------------------------------------------------------------
    // SimplePath invariants
    // ------------------------------------------------------------------

    #[test]
    fn generated_paths_are_simple(p in simple_path()) {
        let nodes = p.nodes();
        for (idx, n) in nodes.iter().enumerate() {
            prop_assert!(!nodes[idx + 1..].contains(n), "path repeats node {n}");
        }
        prop_assert_ne!(nodes.len(), 1);
        prop_assert_eq!(p.len(), nodes.len().saturating_sub(1));
    }

    #[test]
    fn extension_preserves_simplicity(p in simple_path(), i in 0..NODES, j in 0..NODES) {
        match p.try_extend(i, j) {
            Ok(q) => {
                // simple and one edge longer, starting at i
                prop_assert_eq!(q.len(), p.len() + 1);
                prop_assert_eq!(q.source(), Some(i));
                let nodes = q.nodes();
                for (idx, n) in nodes.iter().enumerate() {
                    prop_assert!(!nodes[idx + 1..].contains(n));
                }
            }
            Err(PathError::Loop { node }) => {
                prop_assert!(node == i || (p.is_empty() && i == j));
            }
            Err(PathError::NotContiguous { actual_source, .. }) => {
                prop_assert_eq!(Some(actual_source), p.source());
                prop_assert_ne!(Some(j), p.source());
            }
            Err(e) => prop_assert!(false, "unexpected extension error {e:?}"),
        }
    }

    #[test]
    fn path_ordering_is_total_and_antisymmetric(a in simple_path(), b in simple_path()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(a, b);
        }
    }

    // ------------------------------------------------------------------
    // Path-vector lifting: algebra laws
    // ------------------------------------------------------------------

    #[test]
    fn pv_choice_laws(a in pv_route(), b in pv_route(), c in pv_route()) {
        let alg = PathVector::new(ShortestPaths::new(), NODES);
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b, "selectivity");
        prop_assert_eq!(alg.choice(&a, &b), alg.choice(&b, &a));
        prop_assert_eq!(
            alg.choice(&a, &alg.choice(&b, &c)),
            alg.choice(&alg.choice(&a, &b), &c)
        );
        prop_assert_eq!(alg.choice(&a, &alg.trivial()), alg.trivial());
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
    }

    #[test]
    fn pv_extension_laws(r in pv_route(), f in pv_edge()) {
        let alg = PathVector::new(ShortestPaths::new(), NODES);
        // ∞̄ fixed point
        prop_assert_eq!(alg.extend(&f, &alg.invalid()), alg.invalid());
        // strictly increasing
        if !alg.is_invalid(&r) {
            prop_assert!(alg.route_lt(&r, &alg.extend(&f, &r)));
        }
        // P1: valid results have valid paths, invalid results have ⊥.
        let fr = alg.extend(&f, &r);
        prop_assert_eq!(alg.is_invalid(&fr), alg.path_of(&fr).is_invalid());
    }

    #[test]
    fn pv_p3_loop_freedom(r in pv_route(), f in pv_edge()) {
        let alg = PathVector::new(ShortestPaths::new(), NODES);
        let fr = alg.extend(&f, &r);
        if let PvRoute::Valid { path, .. } = &fr {
            // the importing node is the new source and appears exactly once
            prop_assert_eq!(path.source(), Some(f.src));
            let occurrences = path.nodes().iter().filter(|&&n| n == f.src).count();
            prop_assert_eq!(occurrences, 1);
            // and the old path is a suffix (extending the empty path
            // introduces both endpoints of the edge)
            if let PvRoute::Valid { path: old, .. } = &r {
                if old.is_empty() {
                    prop_assert_eq!(path.nodes(), &[f.src, f.dst]);
                } else {
                    prop_assert_eq!(&path.nodes()[1..], old.nodes());
                }
            }
        }
    }

    #[test]
    fn pv_path_algebra_checkers_accept_generated_data(
        routes in proptest::collection::vec(pv_route(), 1..20),
        edges in proptest::collection::vec(pv_edge(), 1..10)
    ) {
        let alg = PathVector::new(ShortestPaths::new(), NODES);
        prop_assert!(check_p1(&alg, &routes).is_ok());
        prop_assert!(check_p2(&alg, &routes).is_ok());
        prop_assert!(check_p3(&alg, &edges, &routes).is_ok());
    }

    // ------------------------------------------------------------------
    // weight / consistency
    // ------------------------------------------------------------------

    #[test]
    fn routes_built_by_extension_along_real_edges_are_consistent(
        hops in proptest::collection::vec((0..NODES, 1u64..20), 1..5)
    ) {
        // Build a route by repeatedly extending the trivial route along a
        // uniform-weight complete graph, then check it is consistent with
        // that graph.
        let alg = PathVector::new(ShortestPaths::new(), NODES);
        let weight_of = |i: usize, j: usize| ((i * 7 + j * 13) % 9 + 1) as u64;
        let lookup = |i: usize, j: usize| {
            if i == j {
                None
            } else {
                Some(alg.edge(i, j, NatInf::fin(weight_of(i, j))))
            }
        };
        let mut r = alg.trivial();
        for (next, _w) in hops {
            // extend over the edge (next, current source of the path) if possible
            let src = match &r {
                PvRoute::Invalid => break,
                PvRoute::Valid { path, .. } => path.source(),
            };
            let dst = src.unwrap_or(0);
            let e = alg.edge(next, dst, NatInf::fin(weight_of(next, dst)));
            if next == dst {
                continue;
            }
            r = alg.extend(&e, &r);
        }
        prop_assert!(is_consistent(&alg, &r, lookup));
    }
}
