//! Enumeration of the simple paths of a network.
//!
//! The path-vector convergence argument (Section 5 of the paper) rests on
//! the observation that the set of *consistent* routes
//! `S_c = { weight(p) | p ∈ 𝒫 }` is finite because the set `𝒫` of simple
//! paths is.  These helpers materialise `𝒫` for a concrete network so that
//! the metric crate can compute the height function `h_c` over `S_c`, and so
//! that tests can cross-check fixed points against exhaustive path
//! enumeration.
//!
//! Enumeration is exponential in the worst case (there are `O(n!)` simple
//! paths in a complete graph); it is intended for the small reference
//! networks used in tests and experiments, not for production routing.

use crate::path::{NodeId, SimplePath};

/// All simple paths ending at `dest` over the node set `0..n`, **including**
/// the empty path (the trivial route at `dest`).
///
/// `has_edge(i, j)` reports whether the directed link from `i` to `j`
/// exists; paths are built so that consecutive nodes are joined by existing
/// links.
pub fn all_simple_paths_to<F>(dest: NodeId, n: usize, has_edge: F) -> Vec<SimplePath>
where
    F: Fn(NodeId, NodeId) -> bool,
{
    let mut out = vec![SimplePath::empty()];
    // Depth-first extension of paths towards the front: a path to `dest` is
    // grown by prepending predecessors of its current source.
    let mut stack: Vec<SimplePath> = Vec::new();
    for i in 0..n {
        if i != dest && has_edge(i, dest) {
            let p = SimplePath::from_nodes(vec![i, dest]).expect("two distinct nodes");
            stack.push(p);
        }
    }
    while let Some(p) = stack.pop() {
        let src = p.source().expect("stack paths are non-empty");
        for i in 0..n {
            if !p.contains(i) && has_edge(i, src) {
                if let Ok(q) = p.try_extend(i, src) {
                    stack.push(q);
                }
            }
        }
        out.push(p);
    }
    out
}

/// All simple paths of the network over the node set `0..n`: the empty path
/// plus every non-empty simple path along existing links.
pub fn all_simple_paths<F>(n: usize, has_edge: F) -> Vec<SimplePath>
where
    F: Fn(NodeId, NodeId) -> bool,
{
    let mut out = vec![SimplePath::empty()];
    for dest in 0..n {
        for p in all_simple_paths_to(dest, n, &has_edge) {
            if !p.is_empty() {
                out.push(p);
            }
        }
    }
    out
}

/// The number of simple paths (including the empty path) of a complete
/// directed graph on `n` nodes — a convenient closed form used to sanity
/// check the enumerators:
/// `1 + Σ_{k=1..n-1} (number of ordered (k+1)-node sequences ending at a
/// fixed destination, summed over destinations)`.
pub fn complete_graph_simple_path_count(n: usize) -> usize {
    // Non-empty simple paths are ordered sequences of 2..=n distinct nodes.
    let mut count = 1usize; // the empty path
    for len in 2..=n {
        // n * (n-1) * ... * (n-len+1)
        let mut seqs = 1usize;
        for k in 0..len {
            seqs *= n - k;
        }
        count += seqs;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> impl Fn(NodeId, NodeId) -> bool {
        move |i, j| i != j && i < n && j < n
    }

    #[test]
    fn paths_to_a_destination_in_a_triangle() {
        // Complete graph on 3 nodes; paths to node 2: [], [0→2], [1→2],
        // [0→1→2], [1→0→2].
        let paths = all_simple_paths_to(2, 3, complete(3));
        assert_eq!(paths.len(), 5);
        assert!(paths.contains(&SimplePath::empty()));
        assert!(paths.contains(&SimplePath::from_nodes(vec![0, 2]).unwrap()));
        assert!(paths.contains(&SimplePath::from_nodes(vec![1, 0, 2]).unwrap()));
        // every non-empty path ends at the destination and is simple
        for p in &paths {
            if !p.is_empty() {
                assert_eq!(p.destination(), Some(2));
            }
        }
    }

    #[test]
    fn all_paths_of_a_line_graph() {
        // 0 — 1 — 2 (bidirectional line): simple paths are the empty path,
        // the 4 single edges, and the 2 two-hop paths in each direction:
        // [0→1],[1→0],[1→2],[2→1],[0→1→2],[2→1→0].
        let has_edge = |i: NodeId, j: NodeId| matches!((i, j), (0, 1) | (1, 0) | (1, 2) | (2, 1));
        let paths = all_simple_paths(3, has_edge);
        assert_eq!(paths.len(), 1 + 4 + 2);
    }

    #[test]
    fn complete_graph_count_matches_enumeration() {
        for n in 1..=4 {
            let enumerated = all_simple_paths(n, complete(n)).len();
            assert_eq!(
                enumerated,
                complete_graph_simple_path_count(n),
                "path count mismatch for n={n}"
            );
        }
    }

    #[test]
    fn disconnected_destination_has_only_the_empty_path() {
        let has_edge = |_i: NodeId, _j: NodeId| false;
        let paths = all_simple_paths_to(0, 4, has_edge);
        assert_eq!(paths, vec![SimplePath::empty()]);
    }

    #[test]
    fn enumeration_respects_link_direction() {
        // Only 0→1 exists, not 1→0.
        let has_edge = |i: NodeId, j: NodeId| (i, j) == (0, 1);
        let to1 = all_simple_paths_to(1, 2, has_edge);
        assert!(to1.contains(&SimplePath::from_nodes(vec![0, 1]).unwrap()));
        let to0 = all_simple_paths_to(0, 2, has_edge);
        assert_eq!(to0, vec![SimplePath::empty()]);
    }
}
