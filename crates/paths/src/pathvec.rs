//! The path-vector lifting: turn any routing algebra into a path algebra by
//! recording, in every route, the path along which it was generated.
//!
//! This is the algebraic model of what path-vector protocols (BGP-like
//! protocols) do operationally: routes carry the path they traversed, and a
//! node discards any route whose path already contains it.  Section 5 of the
//! paper shows that for *increasing* algebras this loop filtering is enough
//! to recover absolute convergence even though the underlying carrier may be
//! infinite (Theorem 11) — the set of *consistent* routes is finite because
//! simple paths are.
//!
//! Route preference in the lifting is decided by the base algebra first,
//! then by path length, then by a lexicographic comparison of the paths
//! (mirroring steps (2)–(4) of the Section 7 decision procedure).  The
//! length tie-break is what makes the lifting of an increasing algebra
//! *strictly* increasing: an extension either strictly worsens the base
//! value or lengthens the path.

use crate::path::{NodeId, Path, SimplePath};
use crate::path_algebra::PathAlgebra;
use dbf_algebra::algebra::SplitMix64;
use dbf_algebra::{Increasing, RoutingAlgebra, SampleableAlgebra, StrictlyIncreasing};
use std::cmp::Ordering;
use std::fmt;

/// A route of the path-vector lifting: either invalid, or a base-algebra
/// value together with the simple path along which it was generated.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum PvRoute<R> {
    /// The invalid route (path `⊥`).
    Invalid,
    /// A valid route.
    Valid {
        /// The base-algebra value of the route.
        value: R,
        /// The path along which the route was generated.
        path: SimplePath,
    },
}

impl<R> PvRoute<R> {
    /// The base value, if the route is valid.
    pub fn value(&self) -> Option<&R> {
        match self {
            PvRoute::Invalid => None,
            PvRoute::Valid { value, .. } => Some(value),
        }
    }

    /// The path of the route (`⊥` for the invalid route).
    pub fn path(&self) -> Path {
        match self {
            PvRoute::Invalid => Path::Invalid,
            PvRoute::Valid { path, .. } => Path::Simple(path.clone()),
        }
    }

    /// Is this the invalid route?
    pub fn is_invalid(&self) -> bool {
        matches!(self, PvRoute::Invalid)
    }

    /// The number of edges in the route's path, if valid.
    pub fn path_len(&self) -> Option<usize> {
        match self {
            PvRoute::Invalid => None,
            PvRoute::Valid { path, .. } => Some(path.len()),
        }
    }
}

impl<R: fmt::Debug> fmt::Debug for PvRoute<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvRoute::Invalid => write!(f, "∞⊥"),
            PvRoute::Valid { value, path } => write!(f, "{value:?}@{path:?}"),
        }
    }
}

/// An edge of the path-vector lifting: a base-algebra edge annotated with
/// its endpoints.  The edge carries routes announced by node `src`'s
/// neighbour `dst`... more precisely, following the paper's `A_ij` indexing,
/// `src = i` is the node importing the route and `dst = j` is the neighbour
/// that announced it.
#[derive(Clone, PartialEq, Eq)]
pub struct PvEdge<E> {
    /// The importing node `i`.
    pub src: NodeId,
    /// The announcing neighbour `j`.
    pub dst: NodeId,
    /// The base-algebra policy applied on import.
    pub inner: E,
}

impl<E: fmt::Debug> fmt::Debug for PvEdge<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A[{},{}]({:?})", self.src, self.dst, self.inner)
    }
}

/// The path-vector lifting of a base routing algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathVector<A> {
    base: A,
    nodes: usize,
}

impl<A: RoutingAlgebra> PathVector<A> {
    /// Lift `base` over a network of `nodes` nodes (the node count is used
    /// only for sampling and for height bounds; the algebra itself works
    /// for any node identifiers).
    pub fn new(base: A, nodes: usize) -> Self {
        Self { base, nodes }
    }

    /// The base algebra.
    pub fn base(&self) -> &A {
        &self.base
    }

    /// The node count this lifting was configured with.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Annotate a base edge with its endpoints `(i, j)` (`i` imports routes
    /// announced by `j`).
    pub fn edge(&self, src: NodeId, dst: NodeId, inner: A::Edge) -> PvEdge<A::Edge> {
        PvEdge { src, dst, inner }
    }

    /// Build a (possibly inconsistent) valid route directly from a value and
    /// a path.  This is how arbitrary/stale starting states are constructed
    /// in the experiments.
    ///
    /// # Panics
    ///
    /// Panics if `value` is the base algebra's invalid route — the invalid
    /// route of the lifting is [`PvRoute::Invalid`].
    pub fn lift_route(&self, value: A::Route, path: SimplePath) -> PvRoute<A::Route> {
        assert!(
            value != self.base.invalid(),
            "use PvRoute::Invalid for the invalid route of the lifting"
        );
        PvRoute::Valid { value, path }
    }

    fn cmp_valid(
        &self,
        av: &A::Route,
        ap: &SimplePath,
        bv: &A::Route,
        bp: &SimplePath,
    ) -> Ordering {
        self.base
            .route_cmp(av, bv)
            .then_with(|| ap.len().cmp(&bp.len()))
            .then_with(|| ap.cmp(bp))
    }
}

impl<A: RoutingAlgebra> RoutingAlgebra for PathVector<A> {
    type Route = PvRoute<A::Route>;
    type Edge = PvEdge<A::Edge>;

    fn choice(&self, a: &Self::Route, b: &Self::Route) -> Self::Route {
        match (a, b) {
            (PvRoute::Invalid, _) => b.clone(),
            (_, PvRoute::Invalid) => a.clone(),
            (
                PvRoute::Valid {
                    value: av,
                    path: ap,
                },
                PvRoute::Valid {
                    value: bv,
                    path: bp,
                },
            ) => {
                if self.cmp_valid(av, ap, bv, bp) == Ordering::Greater {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        }
    }

    fn extend(&self, f: &Self::Edge, r: &Self::Route) -> Self::Route {
        let (value, path) = match r {
            PvRoute::Invalid => return PvRoute::Invalid,
            PvRoute::Valid { value, path } => (value, path),
        };
        // Loop detection / contiguity: P3.
        let extended_path = match path.try_extend(f.src, f.dst) {
            Ok(p) => p,
            Err(_) => return PvRoute::Invalid,
        };
        // Base policy application; a filtered route is invalid (and its
        // path is ⊥), keeping P1.
        let extended_value = self.base.extend(&f.inner, value);
        if extended_value == self.base.invalid() {
            return PvRoute::Invalid;
        }
        PvRoute::Valid {
            value: extended_value,
            path: extended_path,
        }
    }

    fn trivial(&self) -> Self::Route {
        PvRoute::Valid {
            value: self.base.trivial(),
            path: SimplePath::empty(),
        }
    }

    fn invalid(&self) -> Self::Route {
        PvRoute::Invalid
    }
}

impl<A: RoutingAlgebra> PathAlgebra for PathVector<A> {
    fn path_of(&self, r: &Self::Route) -> Path {
        r.path()
    }

    fn edge_endpoints(&self, f: &Self::Edge) -> (NodeId, NodeId) {
        (f.src, f.dst)
    }
}

// The lifting of an increasing algebra is increasing, and — because a valid
// extension always lengthens the path — strictly increasing (the paper's
// observation after Definition 14 that "any increasing algebra with a path
// function is automatically strictly increasing").
impl<A: Increasing> Increasing for PathVector<A> {}
impl<A: Increasing> StrictlyIncreasing for PathVector<A> {}

impl<A> SampleableAlgebra for PathVector<A>
where
    A: SampleableAlgebra,
{
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<Self::Route> {
        let mut rng = SplitMix64::new(seed);
        let n = self.nodes.max(2);
        let base_routes = self.base.sample_routes(seed ^ 0x9A7B, count.max(4));
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            // Random simple path over the configured node set.
            let mut available: Vec<NodeId> = (0..n).collect();
            let path_len = (rng.next_below(n as u64) as usize).min(n - 1);
            let mut nodes = Vec::with_capacity(path_len + 1);
            if path_len > 0 {
                for _ in 0..=path_len {
                    let idx = rng.next_below(available.len() as u64) as usize;
                    nodes.push(available.swap_remove(idx));
                }
            }
            let path = SimplePath::from_nodes(nodes).expect("sampled nodes are distinct");
            // Random base value that is not the base invalid (the lifting
            // represents invalidity as PvRoute::Invalid).
            let mut value = base_routes[rng.next_below(base_routes.len() as u64) as usize].clone();
            if value == self.base.invalid() {
                value = self.base.trivial();
            }
            out.push(PvRoute::Valid { value, path });
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<Self::Edge> {
        let mut rng = SplitMix64::new(seed ^ 0xE46E);
        let n = self.nodes.max(2) as u64;
        let base_edges = self.base.sample_edges(seed ^ 0x177E, count.max(2));
        (0..count.max(1))
            .map(|k| {
                let src = rng.next_below(n) as NodeId;
                let mut dst = rng.next_below(n) as NodeId;
                if dst == src {
                    dst = (dst + 1) % n as NodeId;
                }
                PvEdge {
                    src,
                    dst,
                    inner: base_edges[k % base_edges.len()].clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_algebra::properties;

    fn pv() -> PathVector<ShortestPaths> {
        PathVector::new(ShortestPaths::new(), 6)
    }

    #[test]
    fn trivial_and_invalid_are_distinguished() {
        let alg = pv();
        assert!(alg.invalid().is_invalid());
        assert!(!alg.trivial().is_invalid());
        assert_eq!(alg.trivial().path_len(), Some(0));
        assert_eq!(alg.invalid().path_len(), None);
        assert_eq!(alg.trivial().value(), Some(&NatInf::fin(0)));
        assert_eq!(alg.invalid().value(), None);
    }

    #[test]
    fn choice_prefers_better_base_value() {
        let alg = pv();
        let a = alg.lift_route(NatInf::fin(2), SimplePath::from_nodes(vec![0, 1]).unwrap());
        let b = alg.lift_route(NatInf::fin(5), SimplePath::from_nodes(vec![0, 2]).unwrap());
        assert_eq!(alg.choice(&a, &b), a);
        assert_eq!(alg.choice(&b, &a), a);
        assert_eq!(alg.choice(&a, &alg.invalid()), a);
        assert_eq!(alg.choice(&alg.invalid(), &b), b);
    }

    #[test]
    fn choice_breaks_value_ties_by_path_length_then_lexicographically() {
        let alg = pv();
        let short = alg.lift_route(NatInf::fin(4), SimplePath::from_nodes(vec![0, 3]).unwrap());
        let long = alg.lift_route(
            NatInf::fin(4),
            SimplePath::from_nodes(vec![0, 1, 3]).unwrap(),
        );
        assert_eq!(alg.choice(&short, &long), short);
        let lex_a = alg.lift_route(NatInf::fin(4), SimplePath::from_nodes(vec![0, 2]).unwrap());
        let lex_b = alg.lift_route(NatInf::fin(4), SimplePath::from_nodes(vec![1, 2]).unwrap());
        assert_eq!(alg.choice(&lex_a, &lex_b), lex_a);
        assert_eq!(alg.choice(&lex_b, &lex_a), lex_a);
    }

    #[test]
    fn extension_applies_policy_and_extends_path() {
        let alg = pv();
        let r1 = alg.extend(&alg.edge(1, 2, NatInf::fin(3)), &alg.trivial());
        match &r1 {
            PvRoute::Valid { value, path } => {
                assert_eq!(*value, NatInf::fin(3));
                assert_eq!(path.nodes(), &[1, 2]);
            }
            PvRoute::Invalid => panic!("extension of the trivial route must be valid"),
        }
        let r0 = alg.extend(&alg.edge(0, 1, NatInf::fin(2)), &r1);
        assert_eq!(r0.value(), Some(&NatInf::fin(5)));
        assert_eq!(r0.path_len(), Some(2));
    }

    #[test]
    fn looping_extensions_are_filtered() {
        let alg = pv();
        let r = alg.lift_route(
            NatInf::fin(4),
            SimplePath::from_nodes(vec![1, 2, 3]).unwrap(),
        );
        // 2 is already on the path.
        assert!(alg.extend(&alg.edge(2, 1, NatInf::fin(1)), &r).is_invalid());
        // Discontiguous: the path starts at 1, not 3.
        assert!(alg.extend(&alg.edge(0, 3, NatInf::fin(1)), &r).is_invalid());
        // Contiguous, loop-free extension is fine.
        assert!(!alg.extend(&alg.edge(0, 1, NatInf::fin(1)), &r).is_invalid());
    }

    #[test]
    fn base_filtering_produces_the_invalid_route() {
        let alg = pv();
        let r = alg.lift_route(NatInf::fin(4), SimplePath::from_nodes(vec![1, 2]).unwrap());
        let filtered = alg.extend(&alg.edge(0, 1, alg.base().unreachable_edge()), &r);
        assert!(filtered.is_invalid());
        assert!(alg.path_of(&filtered).is_invalid());
    }

    #[test]
    #[should_panic(expected = "invalid route of the lifting")]
    fn lift_route_rejects_the_base_invalid_value() {
        let alg = pv();
        let _ = alg.lift_route(NatInf::Inf, SimplePath::empty());
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let alg = pv();
        let routes = alg.sample_routes(111, 48);
        let edges = alg.sample_edges(111, 16);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
    }

    #[test]
    fn lifting_of_an_increasing_algebra_is_strictly_increasing() {
        // Widest paths is increasing but not strictly; its lifting is
        // strictly increasing.
        let alg = PathVector::new(WidestPaths::new(), 5);
        let routes = alg.sample_routes(131, 48);
        let edges = alg.sample_edges(131, 16);
        properties::check_required_laws(&alg, &routes, &edges).unwrap();
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn lifting_of_shortest_paths_is_strictly_increasing() {
        let alg = pv();
        let routes = alg.sample_routes(137, 48);
        let edges = alg.sample_edges(137, 16);
        properties::check_strictly_increasing(&alg, &edges, &routes).unwrap();
    }

    #[test]
    fn sampling_is_deterministic_and_contains_distinguished_routes() {
        let alg = pv();
        let a = alg.sample_routes(7, 20);
        let b = alg.sample_routes(7, 20);
        assert_eq!(a, b);
        assert!(a.contains(&alg.trivial()));
        assert!(a.contains(&alg.invalid()));
        assert_eq!(alg.sample_edges(7, 12), alg.sample_edges(7, 12));
    }

    #[test]
    fn debug_formats() {
        let alg = pv();
        let r = alg.lift_route(NatInf::fin(4), SimplePath::from_nodes(vec![1, 2]).unwrap());
        assert_eq!(format!("{r:?}"), "4@[1→2]");
        assert_eq!(format!("{:?}", alg.invalid()), "∞⊥");
        let e = alg.edge(0, 1, NatInf::fin(9));
        assert_eq!(format!("{e:?}"), "A[0,1](9)");
    }

    #[test]
    fn node_count_and_base_accessors() {
        let alg = pv();
        assert_eq!(alg.node_count(), 6);
        assert_eq!(alg.base(), &ShortestPaths::new());
    }
}
