//! # dbf-paths — simple paths, path algebras and the path-vector lifting
//!
//! This crate implements Section 5.1 of *"Asynchronous Convergence of
//! Policy-Rich Distributed Bellman-Ford Routing Protocols"* (Daggitt,
//! Gurney & Griffin, SIGCOMM 2018):
//!
//! * [`path::SimplePath`] and [`path::Path`] — loop-free node sequences plus
//!   the invalid path `⊥`;
//! * [`path_algebra::PathAlgebra`] — routing algebras equipped with a `path`
//!   projection satisfying properties **P1–P3**, together with executable
//!   checkers for those properties and for route *consistency*
//!   (`weight(path(r)) = r`, Definition 15);
//! * [`pathvec::PathVector`] — the lifting that turns any increasing routing
//!   algebra into a (strictly increasing) path algebra by recording the path
//!   along which each route was generated and filtering looping extensions.
//!   This is the algebraic content of "path-vector protocols track the paths
//!   along which the routes are generated \[and\] routes are then removed if
//!   they contain a looping path";
//! * [`enumerate`] — enumeration of the simple paths of a network, used to
//!   materialise the finite set of *consistent* routes `S_c` on which the
//!   path-vector convergence proof (Theorem 11) rests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod path;
pub mod path_algebra;
pub mod pathvec;

pub use path::{NodeId, Path, PathError, SimplePath};
pub use path_algebra::{check_p1, check_p2, check_p3, PathAlgebra};
pub use pathvec::{PathVector, PvEdge, PvRoute};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::enumerate::{all_simple_paths, all_simple_paths_to};
    pub use crate::path::{NodeId, Path, PathError, SimplePath};
    pub use crate::path_algebra::{
        check_p1, check_p2, check_p3, is_consistent, path_weight, PathAlgebra,
    };
    pub use crate::pathvec::{PathVector, PvEdge, PvRoute};
}
