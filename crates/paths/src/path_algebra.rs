//! Path algebras: routing algebras equipped with a `path` projection
//! (Definition 14 of the paper) and the consistency machinery of
//! Definition 15.
//!
//! The paper abstracts over how protocols track paths by assuming a
//! projection `path : S → 𝒫` obeying three properties:
//!
//! * **P1** — `x = ∞̄ ⇔ path(x) = ⊥`;
//! * **P2** — `x = 0̄ ⇒ path(x) = []`;
//! * **P3** — extending a route over the edge `(i, j)` extends its path by
//!   `(i, j)`, unless the extension would loop (`i ∈ path(r)`) or break
//!   contiguity (`j ≠ src(path(r))`), in which case the result is the
//!   invalid route with path `⊥`.
//!
//! The executable formulation of P3 used by [`check_p3`] differs from the
//! paper's literal statement in one deliberate way: edge policies may also
//! *filter* a route (return `∞̄`) for policy reasons — e.g. the `reject`
//! policy of the Section 7 algebra — and in that case P1 forces the path to
//! be `⊥` rather than `(i, j) :: path(r)`.  The checker therefore requires
//!
//! 1. if the path extension is `⊥` (loop / discontiguity) the resulting
//!    route **must** be invalid, and
//! 2. if the resulting route is valid its path **must** be exactly
//!    `(i, j) :: path(r)`.
//!
//! This keeps the loop-freedom content of P3 while accommodating filtering,
//! and it is the formulation under which the path-vector convergence
//! argument (Lemma 8 / Theorem 11) goes through.

use crate::path::{NodeId, Path};
use dbf_algebra::properties::Violation;
use dbf_algebra::RoutingAlgebra;

/// A routing algebra equipped with a path projection and endpoint
/// information for its edge functions (Definition 14).
pub trait PathAlgebra: RoutingAlgebra {
    /// The path along which the route was generated.
    fn path_of(&self, r: &Self::Route) -> Path;

    /// The endpoints `(i, j)` of an edge function: the edge carries routes
    /// *from* `j` (the announcing neighbour) *to* `i` (the receiving node),
    /// matching the paper's `A_ij` indexing.
    fn edge_endpoints(&self, f: &Self::Edge) -> (NodeId, NodeId);
}

/// The weight of a path (Section 5.1):
///
/// * `weight(⊥) = ∞̄`,
/// * `weight([]) = 0̄`,
/// * `weight((i, j) :: q) = A_ij(weight(q))`.
///
/// `lookup(i, j)` returns the edge function of the link from `j` to `i` as
/// recorded in the adjacency (`None` denotes a missing link, i.e. the
/// constant-∞̄ function).
pub fn path_weight<A, F>(alg: &A, path: &Path, lookup: F) -> A::Route
where
    A: RoutingAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::Edge>,
{
    let simple = match path {
        Path::Invalid => return alg.invalid(),
        Path::Simple(p) => p,
    };
    let mut acc = alg.trivial();
    // Fold the edges from the destination end back towards the source,
    // applying A_ij at each step.
    for (i, j) in simple.edges().collect::<Vec<_>>().into_iter().rev() {
        match lookup(i, j) {
            Some(f) => acc = alg.extend(&f, &acc),
            None => return alg.invalid(),
        }
    }
    acc
}

/// Is the route consistent (Definition 15): `weight(path(r)) = r`?
pub fn is_consistent<A, F>(alg: &A, r: &A::Route, lookup: F) -> bool
where
    A: PathAlgebra,
    F: Fn(NodeId, NodeId) -> Option<A::Edge>,
{
    path_weight(alg, &alg.path_of(r), lookup) == *r
}

/// Check property P1 on the given routes: `x = ∞̄ ⇔ path(x) = ⊥`.
pub fn check_p1<A: PathAlgebra>(alg: &A, routes: &[A::Route]) -> Result<(), Violation> {
    for r in routes {
        let p = alg.path_of(r);
        let inv = alg.is_invalid(r);
        if inv != p.is_invalid() {
            return Err(Violation {
                law: "P1 (x = ∞̄ ⇔ path(x) = ⊥)",
                witness: format!("route {r:?} has path {p:?}"),
            });
        }
    }
    Ok(())
}

/// Check property P2 on the given routes: `x = 0̄ ⇒ path(x) = []`.
pub fn check_p2<A: PathAlgebra>(alg: &A, routes: &[A::Route]) -> Result<(), Violation> {
    for r in routes {
        if alg.is_trivial(r) {
            let p = alg.path_of(r);
            if !p.is_empty() {
                return Err(Violation {
                    law: "P2 (x = 0̄ ⇒ path(x) = [])",
                    witness: format!("trivial route {r:?} has path {p:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Check (the executable formulation of) property P3 on the given edges and
/// routes; see the module documentation for the precise statement.
pub fn check_p3<A: PathAlgebra>(
    alg: &A,
    edges: &[A::Edge],
    routes: &[A::Route],
) -> Result<(), Violation> {
    for f in edges {
        let (i, j) = alg.edge_endpoints(f);
        for r in routes {
            let fr = alg.extend(f, r);
            let expected_path = alg.path_of(r).extend(i, j);
            if expected_path.is_invalid() {
                // Loop or discontiguity: the extension must be filtered.
                if !alg.is_invalid(&fr) {
                    return Err(Violation {
                        law: "P3 (looping/discontiguous extensions are invalid)",
                        witness: format!(
                            "edge ({i},{j}) applied to {r:?} with path {:?} produced the \
                             valid route {fr:?}",
                            alg.path_of(r)
                        ),
                    });
                }
            } else if !alg.is_invalid(&fr) {
                // Valid result: its path must be (i, j) :: path(r).
                let actual = alg.path_of(&fr);
                if actual != expected_path {
                    return Err(Violation {
                        law: "P3 (path(A_ij(r)) = (i,j) :: path(r))",
                        witness: format!(
                            "edge ({i},{j}) applied to {r:?}: expected path {expected_path:?}, \
                             got {actual:?}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Check P1, P2 and P3 together, collecting every violation.
pub fn check_path_algebra_laws<A: PathAlgebra>(
    alg: &A,
    routes: &[A::Route],
    edges: &[A::Edge],
) -> Result<(), Vec<Violation>> {
    let checks = [
        check_p1(alg, routes),
        check_p2(alg, routes),
        check_p3(alg, edges, routes),
    ];
    let violations: Vec<Violation> = checks.into_iter().filter_map(Result::err).collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::SimplePath;
    use crate::pathvec::PathVector;
    use dbf_algebra::prelude::*;

    fn pv() -> PathVector<ShortestPaths> {
        PathVector::new(ShortestPaths::new(), 5)
    }

    /// A uniform-weight lookup: every ordered pair of distinct nodes has an
    /// edge of weight 1.
    fn unit_lookup(
        alg: &PathVector<ShortestPaths>,
    ) -> impl Fn(usize, usize) -> Option<<PathVector<ShortestPaths> as RoutingAlgebra>::Edge> + '_
    {
        move |i, j| {
            if i == j {
                None
            } else {
                Some(alg.edge(i, j, NatInf::fin(1)))
            }
        }
    }

    #[test]
    fn weight_of_distinguished_paths() {
        let alg = pv();
        let lookup = unit_lookup(&alg);
        assert_eq!(path_weight(&alg, &Path::Invalid, &lookup), alg.invalid());
        assert_eq!(path_weight(&alg, &Path::empty(), &lookup), alg.trivial());
    }

    #[test]
    fn weight_of_a_two_hop_path() {
        let alg = pv();
        let lookup = unit_lookup(&alg);
        let p: Path = SimplePath::from_nodes(vec![0, 1, 2]).unwrap().into();
        let w = path_weight(&alg, &p, &lookup);
        // Two unit-weight hops.
        let expected = alg.lift_route(
            NatInf::fin(2),
            SimplePath::from_nodes(vec![0, 1, 2]).unwrap(),
        );
        assert_eq!(w, expected);
    }

    #[test]
    fn weight_over_a_missing_edge_is_invalid() {
        let alg = pv();
        let lookup = |i: usize, j: usize| {
            if (i, j) == (0, 1) {
                Some(alg.edge(0, 1, NatInf::fin(1)))
            } else {
                None
            }
        };
        let p: Path = SimplePath::from_nodes(vec![0, 1, 2]).unwrap().into();
        assert_eq!(path_weight(&alg, &p, lookup), alg.invalid());
    }

    #[test]
    fn consistency_of_generated_routes() {
        let alg = pv();
        let lookup = unit_lookup(&alg);
        // A route generated by actually extending along existing edges is
        // consistent.
        let r1 = alg.extend(&alg.edge(1, 2, NatInf::fin(1)), &alg.trivial());
        let r0 = alg.extend(&alg.edge(0, 1, NatInf::fin(1)), &r1);
        assert!(is_consistent(&alg, &r0, &lookup));
        // A route whose value disagrees with its path weight is not.
        let bogus = alg.lift_route(NatInf::fin(40), SimplePath::from_nodes(vec![0, 1]).unwrap());
        assert!(!is_consistent(&alg, &bogus, &lookup));
        // The distinguished routes are consistent.
        assert!(is_consistent(&alg, &alg.trivial(), &lookup));
        assert!(is_consistent(&alg, &alg.invalid(), &lookup));
    }

    #[test]
    fn path_algebra_laws_hold_for_the_lifting() {
        let alg = pv();
        let routes = alg.sample_routes(101, 64);
        let edges = alg.sample_edges(101, 24);
        check_path_algebra_laws(&alg, &routes, &edges).unwrap();
    }
}
