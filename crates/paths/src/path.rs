//! Simple paths: loop-free sequences of contiguous edges, plus the invalid
//! path `⊥`.
//!
//! Following Section 5.1 of the paper, a path is a sequence of contiguous
//! edges, it is *simple* if it never visits a node more than once, the empty
//! path `[]` is the path of the trivial route, and the distinguished path
//! `⊥` is the path of the invalid route.  In order to reason about
//! arbitrary starting states, paths are **not** restricted to the edges of
//! any particular topology.

use std::cmp::Ordering;
use std::fmt;

/// A node identifier.  Nodes are dense indices `0..n`, matching the row and
/// column indices of the adjacency and routing-state matrices.
pub type NodeId = usize;

/// Errors arising when constructing or extending simple paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The extension `(i, j)` would revisit node `i`, creating a loop.
    Loop {
        /// The node that would be revisited.
        node: NodeId,
    },
    /// The extension `(i, j)` does not join onto the path's source
    /// (`j ≠ src(p)`), so the edges would not be contiguous.
    NotContiguous {
        /// The far end of the extending edge.
        expected_source: NodeId,
        /// The actual source of the path being extended.
        actual_source: NodeId,
    },
    /// A node sequence given to [`SimplePath::from_nodes`] repeats a node.
    DuplicateNode {
        /// The repeated node.
        node: NodeId,
    },
    /// A node sequence given to [`SimplePath::from_nodes`] has exactly one
    /// node; paths are edge sequences, so a path has either zero nodes (the
    /// empty path) or at least two.
    SingletonSequence,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Loop { node } => write!(f, "extension would revisit node {node}"),
            PathError::NotContiguous {
                expected_source,
                actual_source,
            } => write!(
                f,
                "extension edge ends at {expected_source} but the path starts at {actual_source}"
            ),
            PathError::DuplicateNode { node } => {
                write!(f, "node sequence repeats node {node}")
            }
            PathError::SingletonSequence => {
                write!(f, "a path cannot consist of a single node")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A simple (loop-free) path, stored as its node sequence from source to
/// destination.  The empty sequence is the empty path `[]`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SimplePath {
    nodes: Vec<NodeId>,
}

impl SimplePath {
    /// The empty path `[]` (the path of the trivial route).
    pub fn empty() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Build a path from a node sequence (source first).
    ///
    /// The sequence must not repeat a node and must not consist of exactly
    /// one node.
    pub fn from_nodes(nodes: Vec<NodeId>) -> Result<Self, PathError> {
        if nodes.len() == 1 {
            return Err(PathError::SingletonSequence);
        }
        for (idx, n) in nodes.iter().enumerate() {
            if nodes[idx + 1..].contains(n) {
                return Err(PathError::DuplicateNode { node: *n });
            }
        }
        Ok(Self { nodes })
    }

    /// The number of edges in the path (`0` for the empty path).
    pub fn len(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Is this the empty path?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The first node of the path, if any.
    pub fn source(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last node of the path, if any.
    pub fn destination(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Does the path visit `node`?
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterate over the edges `(i, j)` of the path, source first.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Can the path be extended by the edge `(i, j)` without breaking
    /// contiguity or simplicity?
    ///
    /// For the empty path any `(i, j)` with `i ≠ j` is a valid extension
    /// (the empty path is the trivial route at `j`, so extending it over
    /// `(i, j)` yields the one-hop path `[i, j]`).
    pub fn can_extend(&self, i: NodeId, j: NodeId) -> bool {
        self.try_extend(i, j).is_ok()
    }

    /// Extend the path by prepending the edge `(i, j)` (the paper's
    /// `(i, j) :: p`), or explain why that is impossible.
    pub fn try_extend(&self, i: NodeId, j: NodeId) -> Result<SimplePath, PathError> {
        if self.is_empty() {
            if i == j {
                return Err(PathError::Loop { node: i });
            }
            return Ok(SimplePath { nodes: vec![i, j] });
        }
        let src = self.source().expect("non-empty path has a source");
        if j != src {
            return Err(PathError::NotContiguous {
                expected_source: j,
                actual_source: src,
            });
        }
        if self.contains(i) {
            return Err(PathError::Loop { node: i });
        }
        let mut nodes = Vec::with_capacity(self.nodes.len() + 1);
        nodes.push(i);
        nodes.extend_from_slice(&self.nodes);
        Ok(SimplePath { nodes })
    }
}

impl Ord for SimplePath {
    fn cmp(&self, other: &Self) -> Ordering {
        // Shorter paths first, then lexicographic on the node sequence.
        // This is the tie-breaking order used by the path-vector lifting and
        // by the Section 7 algebra's step (3)-(4).
        self.len()
            .cmp(&other.len())
            .then_with(|| self.nodes.cmp(&other.nodes))
    }
}

impl PartialOrd for SimplePath {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for SimplePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "[]");
        }
        write!(f, "[")?;
        for (k, n) in self.nodes.iter().enumerate() {
            if k > 0 {
                write!(f, "→")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for SimplePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A path value as carried by routes: either the invalid path `⊥` or a
/// simple path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Path {
    /// The invalid path `⊥` (the path of the invalid route).
    Invalid,
    /// A simple path.
    Simple(SimplePath),
}

impl Path {
    /// The empty (trivial) path.
    pub fn empty() -> Self {
        Path::Simple(SimplePath::empty())
    }

    /// Is this the invalid path?
    pub fn is_invalid(&self) -> bool {
        matches!(self, Path::Invalid)
    }

    /// The simple path, if this is not `⊥`.
    pub fn as_simple(&self) -> Option<&SimplePath> {
        match self {
            Path::Invalid => None,
            Path::Simple(p) => Some(p),
        }
    }

    /// The number of edges, or `None` for `⊥`.
    pub fn len(&self) -> Option<usize> {
        self.as_simple().map(SimplePath::len)
    }

    /// Is this the empty path?
    pub fn is_empty(&self) -> bool {
        matches!(self, Path::Simple(p) if p.is_empty())
    }

    /// Extend by the edge `(i, j)` following property P3 of the paper:
    /// the result is `⊥` when the extension would loop or break contiguity,
    /// and `(i, j) :: p` otherwise.  Extending `⊥` gives `⊥`.
    pub fn extend(&self, i: NodeId, j: NodeId) -> Path {
        match self {
            Path::Invalid => Path::Invalid,
            Path::Simple(p) => match p.try_extend(i, j) {
                Ok(q) => Path::Simple(q),
                Err(_) => Path::Invalid,
            },
        }
    }

    /// Does the path visit `node`?  (`⊥` visits nothing.)
    pub fn contains(&self, node: NodeId) -> bool {
        self.as_simple().is_some_and(|p| p.contains(node))
    }

    /// The source node, if any.
    pub fn source(&self) -> Option<NodeId> {
        self.as_simple().and_then(SimplePath::source)
    }
}

impl From<SimplePath> for Path {
    fn from(p: SimplePath) -> Self {
        Path::Simple(p)
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Invalid => write!(f, "⊥"),
            Path::Simple(p) => write!(f, "{p:?}"),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_basics() {
        let p = SimplePath::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.source(), None);
        assert_eq!(p.destination(), None);
        assert_eq!(p.edges().count(), 0);
        assert_eq!(format!("{p}"), "[]");
    }

    #[test]
    fn from_nodes_validates() {
        assert!(SimplePath::from_nodes(vec![]).is_ok());
        assert!(SimplePath::from_nodes(vec![1, 2, 3]).is_ok());
        assert_eq!(
            SimplePath::from_nodes(vec![5]),
            Err(PathError::SingletonSequence)
        );
        assert_eq!(
            SimplePath::from_nodes(vec![1, 2, 1]),
            Err(PathError::DuplicateNode { node: 1 })
        );
    }

    #[test]
    fn extension_prepends_an_edge() {
        let p = SimplePath::empty();
        let p = p.try_extend(1, 2).unwrap(); // [1→2]
        assert_eq!(p.nodes(), &[1, 2]);
        let p = p.try_extend(0, 1).unwrap(); // [0→1→2]
        assert_eq!(p.nodes(), &[0, 1, 2]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), Some(0));
        assert_eq!(p.destination(), Some(2));
        assert_eq!(p.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn extension_rejects_loops_and_discontiguity() {
        let p = SimplePath::from_nodes(vec![1, 2, 3]).unwrap();
        assert_eq!(p.try_extend(2, 1), Err(PathError::Loop { node: 2 }));
        assert_eq!(
            p.try_extend(0, 2),
            Err(PathError::NotContiguous {
                expected_source: 2,
                actual_source: 1
            })
        );
        assert!(p.can_extend(0, 1));
        assert!(!p.can_extend(3, 1));
        // self-loop on the empty path
        assert_eq!(
            SimplePath::empty().try_extend(4, 4),
            Err(PathError::Loop { node: 4 })
        );
    }

    #[test]
    fn ordering_is_length_then_lexicographic() {
        let short = SimplePath::from_nodes(vec![5, 6]).unwrap();
        let long = SimplePath::from_nodes(vec![0, 1, 2]).unwrap();
        assert!(short < long);
        let a = SimplePath::from_nodes(vec![0, 2]).unwrap();
        let b = SimplePath::from_nodes(vec![1, 2]).unwrap();
        assert!(a < b);
        assert!(SimplePath::empty() < a);
    }

    #[test]
    fn path_extension_follows_p3() {
        // extending ⊥ stays ⊥
        assert_eq!(Path::Invalid.extend(0, 1), Path::Invalid);
        // looping extension collapses to ⊥
        let p: Path = SimplePath::from_nodes(vec![1, 2]).unwrap().into();
        assert_eq!(p.extend(2, 1), Path::Invalid);
        // discontiguous extension collapses to ⊥
        assert_eq!(p.extend(0, 2), Path::Invalid);
        // good extension prepends
        let q = p.extend(0, 1);
        assert_eq!(
            q.as_simple().unwrap().nodes(),
            &[0, 1, 2],
            "good extensions prepend the edge"
        );
    }

    #[test]
    fn path_accessors() {
        let p: Path = SimplePath::from_nodes(vec![3, 4, 5]).unwrap().into();
        assert!(!p.is_invalid());
        assert!(!p.is_empty());
        assert_eq!(p.len(), Some(2));
        assert_eq!(p.source(), Some(3));
        assert!(p.contains(4));
        assert!(!p.contains(9));
        assert!(Path::empty().is_empty());
        assert_eq!(Path::Invalid.len(), None);
        assert!(!Path::Invalid.contains(0));
        assert_eq!(format!("{:?}", Path::Invalid), "⊥");
        assert_eq!(format!("{}", p), "[3→4→5]");
    }

    #[test]
    fn display_of_errors() {
        assert!(PathError::Loop { node: 3 }.to_string().contains('3'));
        assert!(PathError::SingletonSequence.to_string().contains("single"));
        assert!(PathError::DuplicateNode { node: 2 }
            .to_string()
            .contains('2'));
        assert!(PathError::NotContiguous {
            expected_source: 1,
            actual_source: 2
        }
        .to_string()
        .contains("starts at 2"));
    }
}
