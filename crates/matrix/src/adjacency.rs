//! The adjacency matrix `A` of edge functions.

use dbf_algebra::RoutingAlgebra;
use dbf_paths::pathvec::PathVector;
use dbf_paths::NodeId;
use dbf_topology::Topology;
use std::fmt;

/// The `n × n` adjacency matrix of a routing problem instance.
///
/// `A[i][j]` (when present) is the edge function node `i` applies to routes
/// announced by node `j` — the paper's `A_ij`.  Missing entries represent
/// missing links and behave as the constant-∞̄ function.
///
/// Real topologies are sparse (a router has a handful of neighbours, not
/// `n`), so the matrix is stored row-compressed: row `i` is the sorted list
/// of `(j, A_ij)` pairs for the links that exist.  This keeps the memory
/// footprint `O(n + |E|)` instead of `O(n²)` and lets `σ`/`δ` iterate over a
/// node's actual neighbours, which is what makes 10⁴-node sweeps feasible.
pub struct AdjacencyMatrix<A: RoutingAlgebra> {
    n: usize,
    /// `rows[i]` is sorted by neighbour index and never contains `i` itself.
    rows: Vec<Vec<(NodeId, A::Edge)>>,
}

// Manual Clone: deriving would add an unnecessary `A: Clone` bound on the
// algebra itself, whereas only the edges need it (and the `RoutingAlgebra`
// trait already requires `Edge: Clone`).
impl<A: RoutingAlgebra> Clone for AdjacencyMatrix<A> {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            rows: self.rows.clone(),
        }
    }
}

impl<A: RoutingAlgebra> AdjacencyMatrix<A> {
    /// An adjacency with no links at all.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            rows: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Build an adjacency from an explicit entry function.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId, NodeId) -> Option<A::Edge>) -> Self {
        let mut adj = Self::empty(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    if let Some(e) = f(i, j) {
                        adj.rows[i].push((j, e));
                    }
                }
            }
        }
        adj
    }

    /// Build an adjacency from a topology whose edge weights *are* the
    /// algebra's edge functions: the topology edge `i → j` becomes `A_ij`.
    pub fn from_topology(topo: &Topology<A::Edge>) -> Self {
        let n = topo.node_count();
        let mut adj = Self::empty(n);
        // `Topology::edges` iterates in sorted `(i, j)` order, so each row is
        // built already sorted.
        for (i, j, w) in topo.edges() {
            adj.rows[i].push((j, w.clone()));
        }
        adj
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The number of present (non-∞̄) entries.
    pub fn link_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The entry `A_ij`, if the link exists.
    pub fn get(&self, i: NodeId, j: NodeId) -> Option<&A::Edge> {
        assert!(i < self.n && j < self.n, "adjacency index out of range");
        self.rows[i]
            .binary_search_by_key(&j, |&(k, _)| k)
            .ok()
            .map(|pos| &self.rows[i][pos].1)
    }

    /// Set (or clear) the entry `A_ij`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or on the diagonal (`i == j`); the
    /// diagonal is handled by the identity matrix `I`, not by `A`.
    pub fn set(&mut self, i: NodeId, j: NodeId, e: Option<A::Edge>) {
        assert!(i < self.n && j < self.n, "adjacency index out of range");
        assert_ne!(
            i, j,
            "the diagonal of A is unused (see the identity matrix I)"
        );
        let row = &mut self.rows[i];
        match (row.binary_search_by_key(&j, |&(k, _)| k), e) {
            (Ok(pos), Some(e)) => row[pos].1 = e,
            (Ok(pos), None) => {
                row.remove(pos);
            }
            (Err(pos), Some(e)) => row.insert(pos, (j, e)),
            (Err(_), None) => {}
        }
    }

    /// Row `i` as a sorted slice of `(neighbour, A_ij)` pairs — the links
    /// over which node `i` imports routes.  This is the representation `σ`
    /// iterates over, giving per-round cost `O(n · |E|)` instead of `O(n³)`.
    pub fn row(&self, i: NodeId) -> &[(NodeId, A::Edge)] {
        assert!(i < self.n, "adjacency index out of range");
        &self.rows[i]
    }

    /// The neighbours `j` from which node `i` can import routes
    /// (`A_ij` present).
    pub fn import_neighbors(&self, i: NodeId) -> Vec<NodeId> {
        self.rows[i].iter().map(|&(j, _)| j).collect()
    }

    /// Apply `A_ij` to a route, treating a missing entry as the constant-∞̄
    /// function.
    pub fn apply(&self, alg: &A, i: NodeId, j: NodeId, r: &A::Route) -> A::Route {
        match self.get(i, j) {
            Some(f) => alg.extend(f, r),
            None => alg.invalid(),
        }
    }

    /// The adjacency relabeled by `perm`: the new matrix has
    /// `A'[p(i)][p(j)] = A[i][j]`.  Edge *values* are untouched (a
    /// path-vector annotation still names the original endpoints), which is
    /// what lets the engines un-permute the fixed point and recover the
    /// original-space digest bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not over exactly this matrix's node count.
    pub fn permuted(&self, perm: &crate::permute::NodePermutation) -> Self {
        assert_eq!(self.n, perm.len(), "permutation size must match");
        let mut rows: Vec<Vec<(NodeId, A::Edge)>> = vec![Vec::new(); self.n];
        for (i, row) in self.rows.iter().enumerate() {
            let mut new_row: Vec<(NodeId, A::Edge)> = row
                .iter()
                .map(|(j, e)| (perm.forward(*j), e.clone()))
                .collect();
            new_row.sort_unstable_by_key(|&(j, _)| j);
            rows[perm.forward(i)] = new_row;
        }
        Self { n: self.n, rows }
    }

    /// `dependants[k]` = the rows that import from row `k` (the transpose
    /// of the sparsity pattern).  This is the propagation structure both
    /// dirty-row engines and the full-sweep row-skip walk each round: when
    /// row `k` changes, exactly `dependants[k]` can change next round.
    pub fn dependants(&self) -> Vec<Vec<NodeId>> {
        let mut dependants: Vec<Vec<NodeId>> = vec![Vec::new(); self.n];
        for (i, row) in self.rows.iter().enumerate() {
            for (k, _) in row {
                dependants[*k].push(i);
            }
        }
        dependants
    }
}

impl<A: RoutingAlgebra> fmt::Debug for AdjacencyMatrix<A>
where
    A::Edge: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AdjacencyMatrix(n={})", self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                if let Some(e) = self.get(i, j) {
                    writeln!(f, "  A[{i},{j}] = {e:?}")?;
                }
            }
        }
        Ok(())
    }
}

/// Lift a topology of *base-algebra* edges into the adjacency of the
/// path-vector lifting: the topology edge `i → j` with base policy `w`
/// becomes the annotated edge `A_ij = (i, j, w)`.
pub fn lift_topology<A: RoutingAlgebra>(
    pv: &PathVector<A>,
    topo: &Topology<A::Edge>,
) -> AdjacencyMatrix<PathVector<A>> {
    let n = topo.node_count();
    AdjacencyMatrix::from_fn(n, |i, j| topo.edge(i, j).map(|w| pv.edge(i, j, w.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn from_topology_respects_direction() {
        let mut topo = dbf_topology::Topology::new(3);
        topo.set_edge(0, 1, NatInf::fin(5));
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::from_topology(&topo);
        assert_eq!(adj.get(0, 1), Some(&NatInf::fin(5)));
        assert_eq!(adj.get(1, 0), None);
        assert_eq!(adj.node_count(), 3);
        assert_eq!(adj.link_count(), 1);
        assert_eq!(adj.import_neighbors(0), vec![1]);
        assert!(adj.import_neighbors(2).is_empty());
    }

    #[test]
    fn apply_treats_missing_links_as_filtering() {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::from_topology(&topo);
        assert_eq!(adj.apply(&alg, 0, 1, &NatInf::fin(3)), NatInf::fin(4));
        assert_eq!(adj.apply(&alg, 0, 2, &NatInf::fin(3)), NatInf::Inf);
    }

    #[test]
    fn rows_are_sorted_and_track_set_and_clear() {
        let mut adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(4);
        adj.set(1, 3, Some(NatInf::fin(3)));
        adj.set(1, 0, Some(NatInf::fin(1)));
        adj.set(1, 2, Some(NatInf::fin(2)));
        assert_eq!(
            adj.row(1),
            &[
                (0, NatInf::fin(1)),
                (2, NatInf::fin(2)),
                (3, NatInf::fin(3))
            ]
        );
        adj.set(1, 2, Some(NatInf::fin(9))); // overwrite in place
        assert_eq!(adj.get(1, 2), Some(&NatInf::fin(9)));
        adj.set(1, 2, None); // clear
        assert_eq!(adj.get(1, 2), None);
        assert_eq!(adj.import_neighbors(1), vec![0, 3]);
        adj.set(1, 2, None); // clearing a missing entry is a no-op
        assert_eq!(adj.link_count(), 2);
        assert!(adj.row(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_entries_are_rejected() {
        let mut adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(2);
        adj.set(1, 1, Some(NatInf::fin(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_is_rejected() {
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(2);
        let _ = adj.get(0, 5);
    }

    #[test]
    fn from_fn_skips_the_diagonal() {
        let adj: AdjacencyMatrix<ShortestPaths> =
            AdjacencyMatrix::from_fn(3, |_, _| Some(NatInf::fin(1)));
        assert_eq!(adj.link_count(), 6);
        for i in 0..3 {
            assert_eq!(adj.get(i, i), None);
        }
    }

    #[test]
    fn lifting_a_topology_annotates_endpoints() {
        let pv = dbf_paths::PathVector::new(ShortestPaths::new(), 4);
        let topo = generators::ring(4).with_weights(|_, _| NatInf::fin(2));
        let adj = lift_topology(&pv, &topo);
        let e = adj.get(0, 1).expect("ring edge 0→1 exists");
        assert_eq!((e.src, e.dst), (0, 1));
        assert_eq!(e.inner, NatInf::fin(2));
        assert_eq!(adj.link_count(), topo.edge_count());
    }

    #[test]
    fn debug_output_lists_links() {
        let topo = generators::line(2).with_weights(|_, _| NatInf::fin(7));
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::from_topology(&topo);
        let s = format!("{adj:?}");
        assert!(s.contains("A[0,1] = 7"));
    }
}
