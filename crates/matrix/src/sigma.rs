//! The synchronous iteration operator `σ(X) = A(X) ⊕ I` (Section 2.2).

use crate::adjacency::AdjacencyMatrix;
use crate::state::RoutingState;
use dbf_algebra::RoutingAlgebra;
use dbf_paths::NodeId;

/// Recompute a single entry of `σ(X)` (Equation 5 of the paper):
///
/// ```text
/// σ(X)[i][j] = 0̄                              if i = j
///            = ⨁_k A_ik(X[k][j])              otherwise
/// ```
///
/// This per-entry form is shared with the asynchronous iterate `δ`, which
/// applies it to *stale* snapshots of the other nodes' tables.
pub fn sigma_entry<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    i: NodeId,
    j: NodeId,
) -> A::Route {
    if i == j {
        return alg.trivial();
    }
    // Only the links that exist contribute: a missing `A_ik` is the
    // constant-∞̄ function and ∞̄ is the identity of ⊕, so folding over the
    // sparse row is exactly the paper's sum over all `k`.
    let mut best = alg.invalid();
    for (k, f) in adj.row(i) {
        let candidate = alg.extend(f, x.get(*k, j));
        best = alg.choice(&best, &candidate);
    }
    best
}

/// One synchronous round `σ(X)`, written into an existing state buffer.
///
/// This is the allocation-free work-horse behind [`sigma`] and the
/// double-buffered fixed-point loop in [`crate::sync`].  It sweeps row-wise:
/// node `i`'s next table is the ⊕-fold of `A_ik` applied pointwise to
/// neighbour `k`'s *entire current table*, so both the read of `X[k][·]`
/// and the write of `σ(X)[i][·]` stream over contiguous memory — at
/// `n = 10⁴` this is the difference between being memory-bandwidth-bound
/// and being cache-miss-bound.
///
/// # Panics
///
/// Panics if `adj`, `x` and `out` do not all have the same node count.
pub fn sigma_into<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    out: &mut RoutingState<A>,
) {
    let n = adj.node_count();
    assert_eq!(
        n,
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    assert_eq!(n, out.node_count(), "output state dimension must match");
    for i in 0..n {
        sigma_row_into(alg, adj, x, i, out.row_mut(i));
    }
}

/// Recompute node `i`'s entire next table `σ(X)[i][·]` into `out` (a slice
/// of length `n`).
///
/// This is one row of [`sigma_into`], exposed so the incremental engine in
/// [`crate::incremental`] can recompute only the rows a topology change (or
/// a neighbour's update) actually perturbs.  The write streams over `out`
/// once per present link, so the cost is `O(deg(i) · n)`.
///
/// # Panics
///
/// Panics if `adj` and `x` disagree on the node count or if `out` is not
/// exactly `n` entries long.
pub fn sigma_row_into<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    i: NodeId,
    out: &mut [A::Route],
) {
    let n = adj.node_count();
    assert_eq!(
        n,
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    assert_eq!(n, out.len(), "output row length must match");
    for r in out.iter_mut() {
        *r = alg.invalid();
    }
    for (k, f) in adj.row(i) {
        let src = x.row(*k);
        for (d, s) in out.iter_mut().zip(src.iter()) {
            let candidate = alg.extend(f, s);
            *d = alg.choice(d, &candidate);
        }
    }
    out[i] = alg.trivial();
}

/// [`sigma_row_into`] fused with the change test: recompute node `i`'s
/// next table into `out` and report whether it differs from the current
/// row `X[i][·]` — the comparison happens *during* the final streaming
/// write, so the fixed-point loops need no second full-row `Eq` pass over
/// a row that was just computed.
///
/// # Panics
///
/// Panics if `adj` and `x` disagree on the node count or if `out` is not
/// exactly `n` entries long.
pub fn sigma_row_into_changed<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    i: NodeId,
    out: &mut [A::Route],
) -> bool {
    let n = adj.node_count();
    assert_eq!(
        n,
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    assert_eq!(n, out.len(), "output row length must match");
    let old = x.row(i);
    let mut changed = false;
    match adj.row(i).split_last() {
        None => {
            // No imports: the row is ∞̄ everywhere except the diagonal.
            for (j, (d, o)) in out.iter_mut().zip(old.iter()).enumerate() {
                let v = if j == i { alg.trivial() } else { alg.invalid() };
                changed |= v != *o;
                *d = v;
            }
        }
        Some(((last_k, last_f), rest)) => {
            for r in out.iter_mut() {
                *r = alg.invalid();
            }
            for (k, f) in rest {
                let src = x.row(*k);
                for (d, s) in out.iter_mut().zip(src.iter()) {
                    let candidate = alg.extend(f, s);
                    *d = alg.choice(d, &candidate);
                }
            }
            // The last import's pass doubles as the write-out-and-compare
            // pass (the adjacency row never contains `i`, so `last_k != i`
            // and the diagonal override cannot alias the source row).
            let src = x.row(*last_k);
            for (j, ((d, s), o)) in out.iter_mut().zip(src.iter()).zip(old.iter()).enumerate() {
                let v = if j == i {
                    alg.trivial()
                } else {
                    alg.choice(d, &alg.extend(last_f, s))
                };
                changed |= v != *o;
                *d = v;
            }
        }
    }
    changed
}

/// One synchronous round of the Distributed Bellman-Ford computation:
/// every node simultaneously recomputes its table from its neighbours'
/// current tables.
pub fn sigma<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
) -> RoutingState<A> {
    assert_eq!(
        adj.node_count(),
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    let mut out = RoutingState::uniform(x.node_count(), alg.invalid());
    sigma_into(alg, adj, x, &mut out);
    out
}

/// The `k`-fold iterate `σᵏ(X)`.
pub fn sigma_k<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    k: usize,
) -> RoutingState<A> {
    let mut cur = x.clone();
    for _ in 0..k {
        cur = sigma(alg, adj, &cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn line3() -> (ShortestPaths, AdjacencyMatrix<ShortestPaths>) {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        (alg, AdjacencyMatrix::from_topology(&topo))
    }

    #[test]
    fn diagonal_is_always_trivial_after_one_round() {
        // Lemma 1 of the paper.
        let (alg, adj) = line3();
        let garbage = RoutingState::<ShortestPaths>::uniform(3, NatInf::fin(42));
        let next = sigma(&alg, &adj, &garbage);
        for i in 0..3 {
            assert_eq!(next.get(i, i), &NatInf::fin(0));
        }
    }

    #[test]
    fn one_round_learns_one_hop_routes() {
        let (alg, adj) = line3();
        let x0 = RoutingState::identity(&alg, 3);
        let x1 = sigma(&alg, &adj, &x0);
        assert_eq!(x1.get(0, 1), &NatInf::fin(1));
        assert_eq!(x1.get(1, 2), &NatInf::fin(1));
        // two-hop destination not learned yet
        assert_eq!(x1.get(0, 2), &NatInf::Inf);
        let x2 = sigma(&alg, &adj, &x1);
        assert_eq!(x2.get(0, 2), &NatInf::fin(2));
    }

    #[test]
    fn sigma_k_composes() {
        let (alg, adj) = line3();
        let x0 = RoutingState::identity(&alg, 3);
        let a = sigma_k(&alg, &adj, &x0, 3);
        let b = sigma(&alg, &adj, &sigma(&alg, &adj, &sigma(&alg, &adj, &x0)));
        assert_eq!(a, b);
        assert_eq!(sigma_k(&alg, &adj, &x0, 0), x0);
    }

    #[test]
    fn sigma_into_reuses_a_buffer_and_matches_sigma() {
        let (alg, adj) = line3();
        let x = RoutingState::<ShortestPaths>::from_fn(3, |i, j| NatInf::fin((2 * i + j) as u64));
        let fresh = sigma(&alg, &adj, &x);
        // Start from a garbage buffer to prove every entry is overwritten.
        let mut buf = RoutingState::<ShortestPaths>::uniform(3, NatInf::fin(77));
        sigma_into(&alg, &adj, &x, &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn entry_recomputation_matches_full_sigma() {
        let (alg, adj) = line3();
        let x = RoutingState::<ShortestPaths>::from_fn(3, |i, j| NatInf::fin((3 * i + j) as u64));
        let full = sigma(&alg, &adj, &x);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(&sigma_entry(&alg, &adj, &x, i, j), full.get(i, j));
            }
        }
    }

    #[test]
    fn fused_change_test_matches_the_two_pass_form() {
        let (alg, adj) = line3();
        // A state mid-convergence: some rows will change, some will not.
        let x = sigma(&alg, &adj, &RoutingState::identity(&alg, 3));
        let mut fused = vec![alg.invalid(); 3];
        let mut plain = vec![alg.invalid(); 3];
        for i in 0..3 {
            let changed = sigma_row_into_changed(&alg, &adj, &x, i, &mut fused);
            sigma_row_into(&alg, &adj, &x, i, &mut plain);
            assert_eq!(fused, plain, "row {i} values");
            assert_eq!(changed, plain[..] != *x.row(i), "row {i} change flag");
        }
        // An import-free node: row = identity pattern, so starting from the
        // identity state nothing changes.
        let lonely: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(2);
        let id = RoutingState::identity(&alg, 2);
        let mut out = vec![alg.invalid(); 2];
        assert!(!sigma_row_into_changed(&alg, &lonely, &id, 0, &mut out));
        assert_eq!(out, vec![NatInf::fin(0), NatInf::Inf]);
        let garbage = RoutingState::<ShortestPaths>::uniform(2, NatInf::fin(9));
        assert!(sigma_row_into_changed(&alg, &lonely, &garbage, 0, &mut out));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn dimension_mismatch_is_rejected() {
        let (alg, adj) = line3();
        let x = RoutingState::identity(&alg, 4);
        let _ = sigma(&alg, &adj, &x);
    }
}
