//! The synchronous iteration operator `σ(X) = A(X) ⊕ I` (Section 2.2).

use crate::adjacency::AdjacencyMatrix;
use crate::state::RoutingState;
use dbf_algebra::RoutingAlgebra;
use dbf_paths::NodeId;

/// Recompute a single entry of `σ(X)` (Equation 5 of the paper):
///
/// ```text
/// σ(X)[i][j] = 0̄                              if i = j
///            = ⨁_k A_ik(X[k][j])              otherwise
/// ```
///
/// This per-entry form is shared with the asynchronous iterate `δ`, which
/// applies it to *stale* snapshots of the other nodes' tables.
pub fn sigma_entry<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    i: NodeId,
    j: NodeId,
) -> A::Route {
    if i == j {
        return alg.trivial();
    }
    let n = adj.node_count();
    let mut best = alg.invalid();
    for k in 0..n {
        if k == i {
            // A_ii is absent (the diagonal is handled by I); skipping it is
            // purely an optimisation since a missing entry contributes ∞̄.
            continue;
        }
        let candidate = adj.apply(alg, i, k, x.get(k, j));
        best = alg.choice(&best, &candidate);
    }
    best
}

/// One synchronous round of the Distributed Bellman-Ford computation:
/// every node simultaneously recomputes its table from its neighbours'
/// current tables.
pub fn sigma<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
) -> RoutingState<A> {
    assert_eq!(
        adj.node_count(),
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    RoutingState::from_fn(x.node_count(), |i, j| sigma_entry(alg, adj, x, i, j))
}

/// The `k`-fold iterate `σᵏ(X)`.
pub fn sigma_k<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    k: usize,
) -> RoutingState<A> {
    let mut cur = x.clone();
    for _ in 0..k {
        cur = sigma(alg, adj, &cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn line3() -> (ShortestPaths, AdjacencyMatrix<ShortestPaths>) {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        (alg, AdjacencyMatrix::from_topology(&topo))
    }

    #[test]
    fn diagonal_is_always_trivial_after_one_round() {
        // Lemma 1 of the paper.
        let (alg, adj) = line3();
        let garbage = RoutingState::<ShortestPaths>::uniform(3, NatInf::fin(42));
        let next = sigma(&alg, &adj, &garbage);
        for i in 0..3 {
            assert_eq!(next.get(i, i), &NatInf::fin(0));
        }
    }

    #[test]
    fn one_round_learns_one_hop_routes() {
        let (alg, adj) = line3();
        let x0 = RoutingState::identity(&alg, 3);
        let x1 = sigma(&alg, &adj, &x0);
        assert_eq!(x1.get(0, 1), &NatInf::fin(1));
        assert_eq!(x1.get(1, 2), &NatInf::fin(1));
        // two-hop destination not learned yet
        assert_eq!(x1.get(0, 2), &NatInf::Inf);
        let x2 = sigma(&alg, &adj, &x1);
        assert_eq!(x2.get(0, 2), &NatInf::fin(2));
    }

    #[test]
    fn sigma_k_composes() {
        let (alg, adj) = line3();
        let x0 = RoutingState::identity(&alg, 3);
        let a = sigma_k(&alg, &adj, &x0, 3);
        let b = sigma(&alg, &adj, &sigma(&alg, &adj, &sigma(&alg, &adj, &x0)));
        assert_eq!(a, b);
        assert_eq!(sigma_k(&alg, &adj, &x0, 0), x0);
    }

    #[test]
    fn entry_recomputation_matches_full_sigma() {
        let (alg, adj) = line3();
        let x = RoutingState::<ShortestPaths>::from_fn(3, |i, j| NatInf::fin((3 * i + j) as u64));
        let full = sigma(&alg, &adj, &x);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(&sigma_entry(&alg, &adj, &x, i, j), full.get(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn dimension_mismatch_is_rejected() {
        let (alg, adj) = line3();
        let x = RoutingState::identity(&alg, 4);
        let _ = sigma(&alg, &adj, &x);
    }
}
