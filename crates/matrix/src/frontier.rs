//! The epoch-stamped dense frontier behind the dirty-row engines.
//!
//! The incremental iteration's per-round work list used to be a
//! `Vec<bool>` mask rescanned end-to-end every round — `O(n)` bookkeeping
//! per round even when the active frontier is ten rows out of 10⁵.  A
//! [`Frontier`] keeps the membership test *and* the member list:
//!
//! * `stamp[i] == generation` means row `i` is in the current frontier, so
//!   insertion dedups in `O(1)` without clearing anything;
//! * `queue` holds exactly the members, so draining a round's work list is
//!   `O(|frontier|)`, not `O(n)`;
//! * advancing to the next round is a generation bump — no `fill(false)`
//!   sweep, no allocation (both vectors are reused for the lifetime of the
//!   iteration).
//!
//! Determinism: the work list handed to the σ kernels is the *sorted*
//! queue ([`Frontier::sorted`]), so the rows a round recomputes — and the
//! order changed rows are applied in — are a pure function of the dirty
//! set, independent of insertion order and thread count.

/// A reusable dense work queue over the node ids `0..n` with O(1)
/// dedup-insert and O(|frontier|) drain.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// `stamp[i] == generation` ⇔ `i` is currently enqueued.
    stamp: Vec<u32>,
    /// The enqueued ids, in insertion order until [`Frontier::sorted`].
    queue: Vec<usize>,
    /// Current epoch; bumped by [`Frontier::clear`] instead of rewriting
    /// `stamp`.
    generation: u32,
}

impl Frontier {
    /// An empty frontier over `n` nodes.
    pub fn new(n: usize) -> Frontier {
        Frontier {
            stamp: vec![0; n],
            queue: Vec::new(),
            generation: 1,
        }
    }

    /// The number of nodes the frontier ranges over.
    pub fn node_count(&self) -> usize {
        self.stamp.len()
    }

    /// The number of enqueued rows.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the frontier empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Is row `i` currently enqueued?
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    /// Enqueue row `i` unless it already is; returns whether it was
    /// inserted.  O(1) either way.
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.generation {
            return false;
        }
        self.stamp[i] = self.generation;
        self.queue.push(i);
        true
    }

    /// Empty the frontier in O(1) by advancing the epoch (the stamps are
    /// only rewritten on the once-per-2³²-rounds wraparound).
    pub fn clear(&mut self) {
        self.queue.clear();
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Sort the queue ascending in place and return it as the round's work
    /// list.  Sorting makes the work list independent of insertion order,
    /// which is what keeps the incremental trajectory identical to the
    /// legacy full-scan worklist (which was ascending by construction).
    pub fn sorted(&mut self) -> &[usize] {
        self.queue.sort_unstable();
        &self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_sorted_orders() {
        let mut f = Frontier::new(8);
        assert!(f.is_empty());
        assert!(f.insert(5));
        assert!(f.insert(2));
        assert!(!f.insert(5), "duplicate insert is a no-op");
        assert!(f.insert(7));
        assert_eq!(f.len(), 3);
        assert!(f.contains(2) && f.contains(5) && f.contains(7));
        assert!(!f.contains(0));
        assert_eq!(f.sorted(), &[2, 5, 7]);
    }

    #[test]
    fn clear_is_an_epoch_bump() {
        let mut f = Frontier::new(4);
        f.insert(1);
        f.insert(3);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(1) && !f.contains(3));
        // Stale stamps from the previous epoch must not block re-insertion.
        assert!(f.insert(3));
        assert_eq!(f.sorted(), &[3]);
    }

    #[test]
    fn generation_wraparound_resets_stamps() {
        let mut f = Frontier::new(3);
        f.generation = u32::MAX - 1;
        f.insert(0);
        f.clear(); // → u32::MAX
        f.insert(1);
        f.clear(); // wraps: stamps rewritten, generation back to 1
        assert_eq!(f.generation, 1);
        assert!(f.is_empty());
        assert!(f.insert(0) && f.insert(1) && f.insert(2));
        assert_eq!(f.sorted(), &[0, 1, 2]);
    }

    #[test]
    fn membership_survives_many_clears() {
        let mut f = Frontier::new(2);
        for round in 0..1000 {
            assert!(f.insert(round % 2));
            assert_eq!(f.len(), 1);
            f.clear();
        }
    }
}
