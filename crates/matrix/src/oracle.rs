//! An exhaustive all-simple-paths optimum, used as an independent oracle for
//! the fixed points computed by the Bellman-Ford iteration.
//!
//! For **distributive** algebras the classical theory says the DBF fixed
//! point equals the *globally* optimal route matrix — the best route over
//! all possible paths — so the oracle and the fixed point must agree
//! exactly.  For **policy-rich** (non-distributive) algebras the protocol
//! only reaches a *locally* optimal stable state (Section 1 / Definition 4
//! of the paper), which can be strictly worse than the global optimum on
//! some entries but never better.  Both facts are exercised by tests and by
//! the Table 2 experiment.
//!
//! The oracle enumerates every simple path, so it is exponential and meant
//! for the small reference networks used in tests and experiments.

use crate::adjacency::AdjacencyMatrix;
use crate::state::RoutingState;
use dbf_algebra::RoutingAlgebra;
use dbf_paths::enumerate::all_simple_paths_to;
use dbf_paths::path::Path;
use dbf_paths::path_algebra::path_weight;

/// The globally optimal routing state: entry `(i, j)` is the ⊕-best weight
/// over **all** simple paths from `i` to `j` in the adjacency.
pub fn exhaustive_path_optimum<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
) -> RoutingState<A> {
    let n = adj.node_count();
    // Pre-compute the simple paths towards every destination once.
    let paths_to: Vec<_> = (0..n)
        .map(|j| all_simple_paths_to(j, n, |a, b| adj.get(a, b).is_some()))
        .collect();
    RoutingState::from_fn(n, |i, j| {
        if i == j {
            return alg.trivial();
        }
        let mut best = alg.invalid();
        for p in &paths_to[j] {
            if p.source() == Some(i) {
                let w = path_weight(alg, &Path::Simple(p.clone()), |a, b| adj.get(a, b).cloned());
                best = alg.choice(&best, &w);
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::iterate_to_fixed_point;
    use dbf_algebra::instances::filtered::{FilterPolicy, FilteredShortestPaths};
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn distributive_fixed_point_equals_global_optimum() {
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(7, 0.4, 3)
            .with_weights(|i, j| NatInf::fin(((i * 3 + j * 5) % 9 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let oracle = exhaustive_path_optimum(&alg, &adj);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 7), 200);
        assert!(out.converged);
        assert_eq!(
            out.state, oracle,
            "shortest paths is distributive: local = global optimum"
        );
    }

    #[test]
    fn widest_paths_fixed_point_equals_global_optimum() {
        let alg = WidestPaths::new();
        let topo = generators::connected_random(6, 0.5, 11)
            .with_weights(|i, j| NatInf::fin(((i * 7 + j) % 13 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let oracle = exhaustive_path_optimum(&alg, &adj);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 200);
        assert!(out.converged);
        assert_eq!(out.state, oracle);
    }

    #[test]
    fn policy_rich_fixed_point_is_locally_but_not_necessarily_globally_optimal() {
        // Conditional policies (Eq 2 of the paper) break distributivity, so
        // the stable state need only be a local optimum: every entry is at
        // least as bad as the global optimum and the state is stable.
        let alg = FilteredShortestPaths::new();
        let topo = generators::connected_random(6, 0.5, 17).with_weights(|i, j| {
            if (i + j) % 3 == 0 {
                FilterPolicy::if_below(4, FilterPolicy::Add(10), FilterPolicy::Add(1))
            } else {
                FilterPolicy::Add(1 + ((i * 2 + j) % 4) as u64)
            }
        });
        let adj = AdjacencyMatrix::from_topology(&topo);
        let oracle = exhaustive_path_optimum(&alg, &adj);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 500);
        assert!(out.converged);
        for (i, j, r) in out.state.entries() {
            assert!(
                alg.route_le(oracle.get(i, j), r),
                "entry ({i},{j}): the global optimum {:?} must be at least as good as the \
                 locally optimal fixed point {r:?}",
                oracle.get(i, j)
            );
        }
    }

    #[test]
    fn oracle_of_a_disconnected_pair_is_invalid() {
        let alg = ShortestPaths::new();
        let mut topo = dbf_topology::Topology::new(4);
        topo.set_link(0, 1, NatInf::fin(1));
        topo.set_link(2, 3, NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let oracle = exhaustive_path_optimum(&alg, &adj);
        assert_eq!(oracle.get(0, 2), &NatInf::Inf);
        assert_eq!(oracle.get(0, 1), &NatInf::fin(1));
        assert_eq!(oracle.get(1, 1), &NatInf::fin(0));
    }
}
