//! Deterministic multi-threaded σ: the row sweep sharded across worker
//! threads.
//!
//! One Jacobi round `σ(X)` computes every row of the next state from the
//! *previous* state only, so the row sweep is embarrassingly parallel: the
//! sweep is partitioned into contiguous row bands, each band is written by
//! exactly one worker into its disjoint slice of the double buffer, and the
//! result is **bit-identical** to the sequential sweep for every thread
//! count — no reduction order, no scheduling dependence, nothing for a
//! thread to race on.  The differential checker therefore treats the
//! parallel engine exactly like the sequential one: same digests, same
//! iteration counts, same JSON.
//!
//! Bands are balanced by *work*, not by row count: one row of `σ(X)` costs
//! `O(deg(i) · n)`, and real fabrics are skewed (a leaf–spine spine imports
//! from thousands of leaves while a leaf imports from four spines), so
//! equal-row bands would leave most workers idle behind the one holding the
//! hubs.  The internal `balanced_chunks` planner cuts the row list at
//! cumulative-degree boundaries instead.
//!
//! Bands run on the persistent shared [`WorkerPool`]: workers are spawned
//! once per process and parked between rounds, each round hands them an
//! epoch-stamped band work list, and the calling thread executes the first
//! band itself — so `threads = t` uses up to `t` OS threads without any
//! per-round spawn/join cost.  A worker panic does not abort the process:
//! the pool returns the payload to the coordinator, which re-raises it
//! here so the engine layer above can report it as an engine error.

use crate::adjacency::AdjacencyMatrix;
use crate::pool::WorkerPool;
use crate::sigma::{sigma_into, sigma_row_into_changed};
use crate::state::RoutingState;
use crate::sync::{
    emit_settles, iterate_to_fixed_point, iterate_traced, update_needs, SyncOutcome,
};
use dbf_algebra::RoutingAlgebra;
use dbf_telemetry::TelemetrySink;
use std::ops::Range;
use std::time::Instant;

/// The algebra bounds of the parallel sweep: the algebra and adjacency are
/// shared read-only across workers and each worker writes `Route`s into its
/// own band.
pub trait ParallelAlgebra: RoutingAlgebra + Sync
where
    Self::Route: Send + Sync,
    Self::Edge: Sync,
{
}

impl<A> ParallelAlgebra for A
where
    A: RoutingAlgebra + Sync,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
}

/// Partition `0..len` into at most `parts` non-empty contiguous ranges of
/// approximately equal total `weight`.  Cuts fall where the cumulative
/// weight crosses `k/parts` of the total, so a few heavy items early (hub
/// rows) shrink the first range instead of starving the later workers.
pub(crate) fn balanced_chunks(
    len: usize,
    parts: usize,
    weight: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let total: u64 = (0..len).map(&weight).sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut acc = 0u64;
    let mut pos = 0usize;
    for k in 1..parts {
        let target = total * k as u64 / parts as u64;
        // Every range gets at least one item, and enough items are left
        // over for the remaining ranges to be non-empty too.  A row is
        // taken only while that lands the cut *nearer* the target than
        // stopping would (closest-cut): crossing-then-cutting instead
        // would glue two heavy hub rows into one band.
        let min_end = bounds[k - 1] + 1;
        let max_end = len - (parts - k);
        while pos < max_end && (pos < min_end || (acc < target && 2 * (target - acc) > weight(pos)))
        {
            acc += weight(pos);
            pos += 1;
        }
        bounds.push(pos);
    }
    bounds.push(len);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Band weight of row `i` under row-skip: a computed row costs
/// `O(deg(i) · n)`, a freshly-settled row (changed last round but outside
/// the frontier now) is a single memcpy weighted as a light constant, and
/// a row quiet for two rounds costs nothing at all — a band whose rows are
/// all quiet therefore has weight 0 and is short-circuited without even
/// dispatching to a worker.
fn band_weight<A: RoutingAlgebra>(
    adj: &AdjacencyMatrix<A>,
    needs: &[bool],
    prev: &[bool],
    i: usize,
) -> u64 {
    if needs[i] {
        adj.row(i).len() as u64 + 1
    } else if prev[i] {
        1
    } else {
        0
    }
}

/// One parallel round: compute `σ(cur)` into `next` across `threads`
/// workers, filling `flags[i]` with whether row `i` changed.  Rows outside
/// the active frontier (`needs[i] == false`) provably satisfy
/// `σ(cur)[i] = cur[i]` and are copied (if freshly settled) or skipped
/// outright (if quiet for two rounds, the idle buffer already holds the
/// current value) — the same row-skip as the sequential sweep, so the
/// trajectory stays bit-identical; a band whose rows are all quiet is not
/// dispatched at all.  The change test rides the streaming write so the
/// fixed-point loop needs no second full-matrix comparison pass.
#[allow(clippy::too_many_arguments)]
fn par_step<A>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    cur: &RoutingState<A>,
    next: &mut RoutingState<A>,
    threads: usize,
    needs: &[bool],
    prev: &[bool],
    flags: &mut [bool],
) where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    let n = adj.node_count();
    let chunks = balanced_chunks(n, threads, |i| band_weight(adj, needs, prev, i));
    let sweep_band = |band: &mut [A::Route], rows: Range<usize>, flags: &mut [bool]| {
        for ((slot, i), flag) in band.chunks_mut(n).zip(rows).zip(flags.iter_mut()) {
            *flag = if needs[i] {
                sigma_row_into_changed(alg, adj, cur, i, slot)
            } else {
                if prev[i] {
                    slot.clone_from_slice(cur.row(i));
                }
                false
            };
        }
    };
    let mut rest = next.entries_mut();
    let mut flags_rest = flags;
    #[allow(clippy::type_complexity)]
    let mut first: Option<(&mut [A::Route], Range<usize>, &mut [bool])> = None;
    let outcome = WorkerPool::shared().scoped(|scope| {
        for rows in chunks {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut((rows.end - rows.start) * n);
            rest = tail;
            let (frow, ftail) = std::mem::take(&mut flags_rest).split_at_mut(rows.end - rows.start);
            flags_rest = ftail;
            if rows.clone().all(|i| band_weight(adj, needs, prev, i) == 0) {
                // Per-band short-circuit: every row is quiet, the buffer
                // band is already current — clear the flags and move on
                // without waking a worker.
                frow.fill(false);
                continue;
            }
            if first.is_none() {
                // The calling thread works too instead of idling at the
                // join, so `threads` means `threads`, not `threads + 1`.
                first = Some((band, rows, frow));
            } else {
                scope.execute(move || sweep_band(band, rows, frow));
            }
        }
        if let Some((band, rows, frow)) = first.take() {
            sweep_band(band, rows, frow);
        }
    });
    if let Err(payload) = outcome {
        // Re-raise the worker's own panic (payload intact) instead of
        // aborting behind a generic expect message: the engine dispatch
        // layer catches it and reports the failing engine plus a
        // reproduction command.
        std::panic::resume_unwind(payload);
    }
}

/// One synchronous round `σ(X)` written into an existing buffer, with the
/// row sweep sharded across up to `threads` worker threads.
///
/// The output is bit-identical to [`crate::sigma::sigma_into`] for every
/// thread count (each row is computed by exactly one worker from the same
/// immutable previous state); `threads <= 1` runs the sequential sweep
/// directly.
///
/// # Panics
///
/// Panics if `adj`, `x` and `out` do not all have the same node count.
pub fn par_sigma_into<A>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
    out: &mut RoutingState<A>,
    threads: usize,
) where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    let n = adj.node_count();
    assert_eq!(
        n,
        x.node_count(),
        "adjacency and state dimensions must match"
    );
    assert_eq!(n, out.node_count(), "output state dimension must match");
    if threads <= 1 || n < 2 {
        sigma_into(alg, adj, x, out);
    } else {
        // A one-shot σ has no previous round to justify skipping anything:
        // every row is in the frontier.
        let needs = vec![true; n];
        let prev = vec![true; n];
        let mut flags = vec![false; n];
        par_step(alg, adj, x, out, threads, &needs, &prev, &mut flags);
    }
}

/// Iterate `σ` to a fixed point exactly like
/// [`crate::sync::iterate_to_fixed_point`], but with every round's row
/// sweep sharded across up to `threads` worker threads.
///
/// The returned outcome — state, iteration count and convergence flag — is
/// identical to the sequential iteration for every thread count, because
/// each round is a pure function of the previous double-buffered state and
/// the convergence test (`no row changed this round`) is exactly the
/// sequential `next == cur` comparison.
pub fn par_iterate_to_fixed_point<A>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    max_iterations: usize,
    threads: usize,
) -> SyncOutcome<A>
where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    let n = adj.node_count();
    if threads <= 1 || n < 2 {
        return iterate_to_fixed_point(alg, adj, x0, max_iterations);
    }
    // The same row-skip bookkeeping as the sequential loop: round 1 sweeps
    // everything, later rounds recompute only the dependants of the rows
    // that changed — so the parallel and sequential schedules (and hence
    // the trajectories) stay identical for every thread count.
    let dependants = adj.dependants();
    let mut needs = vec![true; n];
    let mut prev = vec![true; n];
    let mut flags = vec![false; n];
    let mut cur = x0.clone();
    let mut next = cur.clone();
    for k in 0..max_iterations {
        par_step(
            alg, adj, &cur, &mut next, threads, &needs, &prev, &mut flags,
        );
        if !flags.iter().any(|&f| f) {
            return SyncOutcome {
                state: cur,
                iterations: k,
                converged: true,
            };
        }
        update_needs(&dependants, &flags, &mut needs);
        std::mem::swap(&mut prev, &mut flags);
        std::mem::swap(&mut cur, &mut next);
    }
    // Mirror the sequential budget-boundary check: one last round into the
    // idle buffer decides convergence without moving the reported state.
    par_step(
        alg, adj, &cur, &mut next, threads, &needs, &prev, &mut flags,
    );
    SyncOutcome {
        state: cur,
        iterations: max_iterations,
        converged: !flags.iter().any(|&f| f),
    }
}

/// One instrumented parallel round: like `par_step`, but each worker also
/// records which of its rows changed into its disjoint slice of a per-row
/// flag vector and its own band sweep time into a per-band slot.  After the
/// join, the *coordinating* thread emits one `band_sweep` event per band in
/// band-index order — workers never touch the sink, so trace ordering is
/// deterministic — and returns the flags for the caller to fold.
///
/// Only called on the enabled-telemetry path, so the per-round wall
/// allocations and `Instant` reads are never paid by untraced runs.
#[allow(clippy::too_many_arguments)]
fn par_step_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    cur: &RoutingState<A>,
    next: &mut RoutingState<A>,
    threads: usize,
    needs: &[bool],
    prev: &[bool],
    flags: &mut [bool],
    round: u64,
    tel: &mut S,
) where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
    S: TelemetrySink + ?Sized,
{
    let n = adj.node_count();
    let chunks = balanced_chunks(n, threads, |i| band_weight(adj, needs, prev, i));
    let mut walls = vec![0u64; chunks.len()];
    let sweep_band = |band: &mut [A::Route], rows: Range<usize>, flags: &mut [bool]| -> u64 {
        let t0 = Instant::now();
        for ((slot, i), flag) in band.chunks_mut(n).zip(rows).zip(flags.iter_mut()) {
            *flag = if needs[i] {
                sigma_row_into_changed(alg, adj, cur, i, slot)
            } else {
                if prev[i] {
                    slot.clone_from_slice(cur.row(i));
                }
                false
            };
        }
        t0.elapsed().as_nanos() as u64
    };
    // One worker's share of the round: its disjoint band of the double
    // buffer, the row range it covers, its change flags and its wall slot.
    type BandWork<'a, R> = (&'a mut [R], Range<usize>, &'a mut [bool], &'a mut [u64]);
    let mut rest = next.entries_mut();
    let mut flags_rest = flags;
    let mut walls_rest = walls.as_mut_slice();
    let outcome = WorkerPool::shared().scoped(|scope| {
        let mut first: Option<BandWork<'_, A::Route>> = None;
        for rows in chunks.iter().cloned() {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut((rows.end - rows.start) * n);
            rest = tail;
            let (frow, ftail) = std::mem::take(&mut flags_rest).split_at_mut(rows.end - rows.start);
            flags_rest = ftail;
            let (wslot, wtail) = std::mem::take(&mut walls_rest).split_at_mut(1);
            walls_rest = wtail;
            if rows.clone().all(|i| band_weight(adj, needs, prev, i) == 0) {
                // Per-band short-circuit: all rows quiet, the buffer band
                // is already current — no dispatch, zero wall time.
                frow.fill(false);
                continue;
            }
            if first.is_none() {
                first = Some((band, rows, frow, wslot));
            } else {
                scope.execute(move || {
                    wslot[0] = sweep_band(band, rows, frow);
                });
            }
        }
        if let Some((band, rows, frow, wslot)) = first.take() {
            wslot[0] = sweep_band(band, rows, frow);
        }
    });
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
    for (b, rows) in chunks.iter().enumerate() {
        let weight: u64 = rows.clone().map(|i| band_weight(adj, needs, prev, i)).sum();
        tel.band_sweep(
            round,
            b as u64,
            (rows.end - rows.start) as u64,
            weight,
            walls[b],
        );
    }
}

/// [`par_iterate_to_fixed_point`] with a telemetry sink: per-round
/// `round_start`/`round_end` events, per-band `band_sweep` profiling (the
/// band-balance evidence: rows, degree weight, and worker sweep time per
/// band), and per-node `node_settled` events once the loop stops.
///
/// The outcome — and every deterministic event argument (round indices,
/// rows recomputed/changed, settle rounds) — is identical to the
/// sequential [`iterate_traced`] for every thread count; only the band
/// events and wall times depend on the execution geometry.  With a
/// disabled sink this forwards to the untraced [`par_iterate_to_fixed_point`].
pub fn par_iterate_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    max_iterations: usize,
    threads: usize,
    tel: &mut S,
) -> SyncOutcome<A>
where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
    S: TelemetrySink + ?Sized,
{
    if !tel.enabled() {
        return par_iterate_to_fixed_point(alg, adj, x0, max_iterations, threads);
    }
    let n = adj.node_count();
    if threads <= 1 || n < 2 {
        return iterate_traced(alg, adj, x0, max_iterations, tel);
    }
    let mut last_changed = vec![0u64; n];
    let round_traced = |cur: &RoutingState<A>,
                        next: &mut RoutingState<A>,
                        round: u64,
                        needs: &[bool],
                        prev: &[bool],
                        flags: &mut [bool],
                        last_changed: &mut [u64],
                        tel: &mut S|
     -> u64 {
        let t0 = Instant::now();
        let frontier = needs.iter().filter(|&&d| d).count() as u64;
        tel.round_start(round, n as u64, frontier);
        par_step_traced(alg, adj, cur, next, threads, needs, prev, flags, round, tel);
        let mut changed = 0u64;
        for (i, &flag) in flags.iter().enumerate() {
            if flag {
                changed += 1;
                last_changed[i] = round;
            }
        }
        tel.round_end(round, frontier, changed, t0.elapsed().as_nanos() as u64);
        changed
    };
    // Row-skip bookkeeping, identical to the sequential loop so every
    // deterministic event argument stays thread-invariant.
    let dependants = adj.dependants();
    let mut needs = vec![true; n];
    let mut prev = vec![true; n];
    let mut flags = vec![false; n];
    let mut cur = x0.clone();
    let mut next = cur.clone();
    let mut round = 0u64;
    for k in 0..max_iterations {
        round = k as u64 + 1;
        if round_traced(
            &cur,
            &mut next,
            round,
            &needs,
            &prev,
            &mut flags,
            &mut last_changed,
            tel,
        ) == 0
        {
            emit_settles(tel, &last_changed);
            return SyncOutcome {
                state: cur,
                iterations: k,
                converged: true,
            };
        }
        update_needs(&dependants, &flags, &mut needs);
        std::mem::swap(&mut prev, &mut flags);
        std::mem::swap(&mut cur, &mut next);
    }
    // Mirror the sequential budget-boundary check: one last round into the
    // idle buffer decides convergence without moving the reported state.
    let changed = round_traced(
        &cur,
        &mut next,
        round + 1,
        &needs,
        &prev,
        &mut flags,
        &mut last_changed,
        tel,
    );
    emit_settles(tel, &last_changed);
    SyncOutcome {
        state: cur,
        iterations: max_iterations,
        converged: changed == 0,
    }
}

/// Recompute the rows of `worklist` (ascending, deduplicated) from `state`
/// across up to `threads` workers, into the caller's reusable buffers:
/// `staging[pos·n .. (pos+1)·n]` receives the new table of row
/// `worklist[pos]` and `changed[pos]` whether it differs from the current
/// one.  `staging` grows on demand but is never shrunk, so a fixed-point
/// loop that calls this every round allocates only while the frontier is
/// still widening.
///
/// This is the per-round kernel of the sharded incremental engine
/// ([`crate::incremental::par_iterate_dirty_to_fixed_point`]): each worker
/// owns one contiguous segment of the work list (degree-weighted, like the
/// full sweep) and writes its disjoint slice of `staging`/`changed`, so
/// the result — and therefore the whole trajectory — is independent of the
/// thread count by construction.
pub(crate) fn par_recompute_rows_into<A>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    state: &RoutingState<A>,
    worklist: &[usize],
    threads: usize,
    staging: &mut Vec<A::Route>,
    changed: &mut Vec<bool>,
) where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    par_recompute_rows_into_on(
        WorkerPool::shared(),
        alg,
        adj,
        state,
        worklist,
        threads,
        staging,
        changed,
    )
}

/// [`par_recompute_rows_into`] against an explicit pool instead of the
/// process-wide shared one.  The route server uses a dedicated pool so
/// that fault plans keyed on epoch indices are deterministic (the shared
/// pool's epoch counter depends on whatever else the process ran).
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_recompute_rows_into_on<A>(
    pool: &WorkerPool,
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    state: &RoutingState<A>,
    worklist: &[usize],
    threads: usize,
    staging: &mut Vec<A::Route>,
    changed: &mut Vec<bool>,
) where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    let n = adj.node_count();
    let need = worklist.len() * n;
    if staging.len() < need {
        staging.resize(need, alg.invalid());
    }
    changed.clear();
    changed.resize(worklist.len(), false);
    let recompute_segment = |rows: &[usize], stage: &mut [A::Route], flags: &mut [bool]| {
        for ((&i, slot), flag) in rows.iter().zip(stage.chunks_mut(n)).zip(flags.iter_mut()) {
            *flag = sigma_row_into_changed(alg, adj, state, i, slot);
        }
    };
    if threads <= 1 || worklist.len() < 2 {
        recompute_segment(worklist, &mut staging[..need], changed);
        return;
    }
    let chunks = balanced_chunks(worklist.len(), threads, |pos| {
        adj.row(worklist[pos]).len() as u64 + 1
    });
    let mut stage_rest = &mut staging[..need];
    let mut flag_rest = changed.as_mut_slice();
    #[allow(clippy::type_complexity)]
    let mut first: Option<(&[usize], &mut [A::Route], &mut [bool])> = None;
    let outcome = pool.scoped(|scope| {
        for range in chunks {
            let rows = &worklist[range.clone()];
            let (stage, stail) =
                std::mem::take(&mut stage_rest).split_at_mut((range.end - range.start) * n);
            stage_rest = stail;
            let (fl, ftail) = std::mem::take(&mut flag_rest).split_at_mut(range.end - range.start);
            flag_rest = ftail;
            if first.is_none() {
                first = Some((rows, stage, fl));
            } else {
                scope.execute(move || recompute_segment(rows, stage, fl));
            }
        }
        if let Some((rows, stage, fl)) = first.take() {
            recompute_segment(rows, stage, fl);
        }
    });
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::sigma;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn widest_fabric(spines: usize, leaves: usize) -> (WidestPaths, AdjacencyMatrix<WidestPaths>) {
        let alg = WidestPaths::new();
        let topo = generators::leaf_spine(spines, leaves)
            .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
        (alg, AdjacencyMatrix::from_topology(&topo))
    }

    #[test]
    fn balanced_chunks_cover_everything_without_overlap() {
        for (len, parts) in [(1, 1), (1, 8), (7, 3), (64, 8), (10, 10), (10, 100)] {
            let chunks = balanced_chunks(len, parts, |_| 1);
            assert!(chunks.len() <= parts.max(1), "len={len} parts={parts}");
            assert!(chunks.iter().all(|r| !r.is_empty()));
            let flat: Vec<usize> = chunks.iter().cloned().flatten().collect();
            assert_eq!(
                flat,
                (0..len).collect::<Vec<_>>(),
                "len={len} parts={parts}"
            );
        }
        assert!(balanced_chunks(0, 4, |_| 1).is_empty());
    }

    #[test]
    fn balanced_chunks_weight_by_degree_not_row_count() {
        // Four hub rows followed by a thousand light rows — the leaf-spine
        // degree profile.  Equal-ROW chunking would put all four hubs plus
        // 247 light rows in the first chunk (weight 4247 of 5000); the
        // weighted cut must keep every chunk within 2× the ideal share
        // (the contiguous-partition optimum for this input is 2000, since
        // all the light mass trails the hubs).
        let weight = |i: usize| if i < 4 { 1000 } else { 1 };
        let chunks = balanced_chunks(1004, 4, weight);
        assert_eq!(chunks.len(), 4);
        let chunk_weight = |r: &Range<usize>| -> u64 { r.clone().map(weight).sum() };
        let weights: Vec<u64> = chunks.iter().map(chunk_weight).collect();
        let total: u64 = weights.iter().sum();
        let max = *weights.iter().max().unwrap();
        assert!(
            max <= 2 * total / 4,
            "no chunk may exceed 2x the ideal share: {weights:?}"
        );
        // ... and with one worker per hub plus light tail (8 parts), every
        // hub lands in its own chunk.
        let chunks = balanced_chunks(1004, 8, weight);
        for (k, r) in chunks.iter().take(4).enumerate() {
            assert_eq!(*r, k..k + 1, "hub {k} gets a dedicated chunk: {chunks:?}");
        }
    }

    #[test]
    fn par_sigma_matches_sequential_sigma_for_every_thread_count() {
        let (alg, adj) = widest_fabric(4, 29);
        let n = adj.node_count();
        let x =
            RoutingState::<WidestPaths>::from_fn(n, |i, j| NatInf::fin(((i * 3 + j) % 40) as u64));
        let expected = sigma(&alg, &adj, &x);
        for threads in [1, 2, 3, 5, 8] {
            let mut out = RoutingState::uniform(n, NatInf::fin(777));
            par_sigma_into(&alg, &adj, &x, &mut out, threads);
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_iterate_reproduces_the_sequential_outcome_exactly() {
        let alg = ShortestPaths::new();
        let topo = generators::ring(37)
            .with_weights(|i, j| NatInf::fin(((i * 7 + j * 13) % 9 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let x0 = RoutingState::identity(&alg, 37);
        let seq = iterate_to_fixed_point(&alg, &adj, &x0, 500);
        for threads in [2, 4, 8] {
            let par = par_iterate_to_fixed_point(&alg, &adj, &x0, 500, threads);
            assert_eq!(par.state, seq.state, "threads={threads}");
            assert_eq!(par.iterations, seq.iterations, "threads={threads}");
            assert_eq!(par.converged, seq.converged);
        }
    }

    #[test]
    fn budget_boundaries_agree_with_the_sequential_iteration() {
        let (alg, adj) = widest_fabric(3, 13);
        let x0 = RoutingState::identity(&alg, 16);
        for budget in 0..6 {
            let seq = iterate_to_fixed_point(&alg, &adj, &x0, budget);
            let par = par_iterate_to_fixed_point(&alg, &adj, &x0, budget, 4);
            assert_eq!(par.state, seq.state, "budget={budget}");
            assert_eq!(par.iterations, seq.iterations, "budget={budget}");
            assert_eq!(par.converged, seq.converged, "budget={budget}");
        }
    }

    #[test]
    fn traced_outcome_and_deterministic_events_are_thread_invariant() {
        use dbf_telemetry::AggregatingSink;
        let (alg, adj) = widest_fabric(4, 29);
        let n = adj.node_count();
        let x0 = RoutingState::identity(&alg, n);
        let untraced = par_iterate_to_fixed_point(&alg, &adj, &x0, 500, 4);
        let mut deterministic_sides = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut sink = AggregatingSink::new();
            let out = par_iterate_traced(&alg, &adj, &x0, 500, threads, &mut sink);
            assert_eq!(out.state, untraced.state, "threads={threads}");
            assert_eq!(out.iterations, untraced.iterations, "threads={threads}");
            let report = sink.finish();
            deterministic_sides.push(report.phases);
        }
        assert_eq!(deterministic_sides[0], deterministic_sides[1]);
        assert_eq!(deterministic_sides[0], deterministic_sides[2]);
        let phase = &deterministic_sides[0][0];
        // Rounds include the sweep that detects the fixed point.
        assert_eq!(phase.rounds, untraced.iterations as u64 + 1);
        // Row-skip: round 1 sweeps all n rows, later rounds only the
        // dependants of last round's changed rows — so the recomputation
        // total sits strictly between one full sweep and rounds·n.
        assert!(phase.rows_recomputed >= n as u64);
        assert!(phase.rows_recomputed <= phase.rounds * n as u64);
        assert_eq!(phase.peak_frontier, n as u64, "round 1 sweeps every row");
        let settle = phase.settle.expect("σ engines emit settle events");
        assert_eq!(settle.count, n as u64);
        assert!(settle.max <= untraced.iterations as u64);
    }

    #[test]
    fn par_recompute_rows_into_is_thread_invariant_and_flags_changes() {
        let alg = BoundedHopCount::new(12);
        let n = 24;
        let topo = generators::line(n).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::<BoundedHopCount>::from_topology(&topo);
        let x0 = RoutingState::identity(&alg, n);
        let worklist: Vec<usize> = (0..n).collect();
        let mut seq_stage = Vec::new();
        let mut seq_flags = Vec::new();
        par_recompute_rows_into(
            &alg,
            &adj,
            &x0,
            &worklist,
            1,
            &mut seq_stage,
            &mut seq_flags,
        );
        for threads in [2, 3, 8] {
            let mut stage = Vec::new();
            let mut flags = Vec::new();
            par_recompute_rows_into(&alg, &adj, &x0, &worklist, threads, &mut stage, &mut flags);
            assert_eq!(flags, seq_flags, "threads={threads}");
            assert_eq!(stage, seq_stage, "threads={threads}");
        }
        // The flags are exactly "the staged table differs from the current
        // one", and from the identity every line node learns a new route.
        for (pos, &i) in worklist.iter().enumerate() {
            let slot = &seq_stage[pos * n..(pos + 1) * n];
            assert_eq!(seq_flags[pos], slot != x0.row(i), "row {i}");
            assert!(seq_flags[pos], "row {i} learns one-hop routes");
        }
        // The staging buffer is reused, not reallocated: a narrower
        // worklist keeps the old capacity and only the flag vector shrinks.
        let cap = seq_stage.len();
        par_recompute_rows_into(
            &alg,
            &adj,
            &x0,
            &worklist[..3],
            2,
            &mut seq_stage,
            &mut seq_flags,
        );
        assert_eq!(seq_stage.len(), cap);
        assert_eq!(seq_flags.len(), 3);
    }
}
