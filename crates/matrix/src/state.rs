//! The global routing state `X ∈ 𝕄ₙ(S)` and the identity matrix `I`.

use dbf_algebra::RoutingAlgebra;
use dbf_paths::NodeId;
use std::fmt;

/// The global routing state: an `n × n` matrix of routes where `X[i][j]` is
/// node `i`'s current best route to destination `j` (row `i` is node `i`'s
/// routing table).
pub struct RoutingState<A: RoutingAlgebra> {
    n: usize,
    entries: Vec<A::Route>,
}

// Manual impls: deriving would add unnecessary `A: Clone / PartialEq` bounds
// on the *algebra* itself, whereas only the routes need them (and the
// `RoutingAlgebra` trait already requires `Route: Clone + Eq`).
impl<A: RoutingAlgebra> Clone for RoutingState<A> {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            entries: self.entries.clone(),
        }
    }
}

impl<A: RoutingAlgebra> PartialEq for RoutingState<A> {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.entries == other.entries
    }
}

impl<A: RoutingAlgebra> Eq for RoutingState<A> {}

impl<A: RoutingAlgebra> RoutingState<A> {
    /// The identity matrix `I`: the trivial route on the diagonal and the
    /// invalid route everywhere else.  This is the canonical "clean" start
    /// state of a routing protocol (no node knows anything except how to
    /// reach itself).
    pub fn identity(alg: &A, n: usize) -> Self {
        Self::from_fn(n, |i, j| if i == j { alg.trivial() } else { alg.invalid() })
    }

    /// A state with every entry equal to `r`.
    pub fn uniform(n: usize, r: A::Route) -> Self {
        Self {
            n,
            entries: vec![r; n * n],
        }
    }

    /// Build a state from an explicit entry function.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId, NodeId) -> A::Route) -> Self {
        let mut entries = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                entries.push(f(i, j));
            }
        }
        Self { n, entries }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The route `X[i][j]`.
    pub fn get(&self, i: NodeId, j: NodeId) -> &A::Route {
        assert!(i < self.n && j < self.n, "state index out of range");
        &self.entries[i * self.n + j]
    }

    /// Overwrite the route `X[i][j]`.
    pub fn set(&mut self, i: NodeId, j: NodeId, r: A::Route) {
        assert!(i < self.n && j < self.n, "state index out of range");
        self.entries[i * self.n + j] = r;
    }

    /// Node `i`'s routing table (row `i`).
    pub fn row(&self, i: NodeId) -> &[A::Route] {
        assert!(i < self.n, "state index out of range");
        &self.entries[i * self.n..(i + 1) * self.n]
    }

    /// Mutable access to node `i`'s routing table (row `i`).  Used by the
    /// streaming `σ` implementation to write a whole table at once.
    pub fn row_mut(&mut self, i: NodeId) -> &mut [A::Route] {
        assert!(i < self.n, "state index out of range");
        &mut self.entries[i * self.n..(i + 1) * self.n]
    }

    /// The row-major backing storage (`n · n` routes, row `i` at
    /// `[i·n, (i+1)·n)`).  The parallel row sweep in [`crate::parallel`]
    /// splits this into disjoint contiguous row bands, one per worker, so
    /// every thread writes its own region without synchronisation.
    pub(crate) fn entries_mut(&mut self) -> &mut [A::Route] {
        &mut self.entries
    }

    /// Iterate over all entries as `(i, j, &route)`, in row-major order.
    /// Walks the storage row by row — no per-entry division — so digesting
    /// a 10⁵-row block costs a pair of counters, not a `div`+`mod` per
    /// route.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, &A::Route)> {
        self.entries
            .chunks(self.n.max(1))
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, r)| (i, j, r)))
    }

    /// The pointwise choice `X ⊕ Y` of two states.
    pub fn choice(&self, alg: &A, other: &Self) -> Self {
        assert_eq!(self.n, other.n, "state dimension mismatch");
        Self::from_fn(self.n, |i, j| alg.choice(self.get(i, j), other.get(i, j)))
    }

    /// The number of entries on which two states disagree.
    pub fn disagreements(&self, other: &Self) -> usize {
        assert_eq!(self.n, other.n, "state dimension mismatch");
        self.entries
            .iter()
            .zip(other.entries.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Do two states disagree anywhere?  Short-circuits at the first
    /// differing entry — use this instead of `disagreements() > 0` when
    /// only the boolean matters.
    pub fn differs(&self, other: &Self) -> bool {
        assert_eq!(self.n, other.n, "state dimension mismatch");
        self.entries
            .iter()
            .zip(other.entries.iter())
            .any(|(a, b)| a != b)
    }

    /// The state relabeled by `perm`: `X'[p(i)][p(j)] = X[i][j]`.  Route
    /// values are cloned untouched, so [`RoutingState::unpermuted`] is an
    /// exact inverse (see [`crate::permute`] for the equivariance
    /// argument).
    pub fn permuted(&self, perm: &crate::permute::NodePermutation) -> Self {
        assert_eq!(self.n, perm.len(), "permutation size must match");
        Self::from_fn(self.n, |i, j| {
            self.get(perm.inverse(i), perm.inverse(j)).clone()
        })
    }

    /// Undo [`RoutingState::permuted`]: `X'[i][j] = X[p(i)][p(j)]`.
    pub fn unpermuted(&self, perm: &crate::permute::NodePermutation) -> Self {
        assert_eq!(self.n, perm.len(), "permutation size must match");
        Self::from_fn(self.n, |i, j| {
            self.get(perm.forward(i), perm.forward(j)).clone()
        })
    }

    /// The number of invalid entries (useful as a crude progress metric).
    pub fn invalid_count(&self, alg: &A) -> usize {
        self.entries.iter().filter(|r| alg.is_invalid(r)).count()
    }

    /// Grow the state to `new_n ≥ n` nodes, filling fresh entries with the
    /// identity pattern (trivial on the diagonal, invalid elsewhere).  Used
    /// when a node joins the network (Section 3.2).
    pub fn grown(&self, alg: &A, new_n: usize) -> Self {
        assert!(new_n >= self.n, "grown() cannot shrink a state");
        Self::from_fn(new_n, |i, j| {
            if i < self.n && j < self.n {
                self.get(i, j).clone()
            } else if i == j {
                alg.trivial()
            } else {
                alg.invalid()
            }
        })
    }

    /// Remove a node's row and column (the node left the network,
    /// Section 3.2), compacting indices above it.
    pub fn without_node(&self, v: NodeId) -> Self {
        assert!(v < self.n, "state index out of range");
        let expand = |x: NodeId| if x >= v { x + 1 } else { x };
        Self::from_fn(self.n - 1, |i, j| self.get(expand(i), expand(j)).clone())
    }
}

impl<A: RoutingAlgebra> fmt::Debug for RoutingState<A>
where
    A::Route: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RoutingState(n={})", self.n)?;
        for i in 0..self.n {
            write!(f, "  node {i}: ")?;
            for j in 0..self.n {
                write!(f, "{:?} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::prelude::*;

    #[test]
    fn identity_matrix_shape() {
        let alg = ShortestPaths::new();
        let i3 = RoutingState::identity(&alg, 3);
        assert_eq!(i3.node_count(), 3);
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    assert_eq!(i3.get(a, b), &NatInf::fin(0));
                } else {
                    assert_eq!(i3.get(a, b), &NatInf::Inf);
                }
            }
        }
        assert_eq!(i3.invalid_count(&alg), 6);
    }

    #[test]
    fn rows_and_entries() {
        let alg = ShortestPaths::new();
        let x = RoutingState::<ShortestPaths>::from_fn(2, |i, j| NatInf::fin((i * 10 + j) as u64));
        assert_eq!(x.row(1), &[NatInf::fin(10), NatInf::fin(11)]);
        assert_eq!(x.entries().count(), 4);
        assert_eq!(x.invalid_count(&alg), 0);
        let mut y = x.clone();
        y.set(0, 1, NatInf::Inf);
        assert_eq!(y.get(0, 1), &NatInf::Inf);
        assert_eq!(x.disagreements(&y), 1);
        assert_eq!(x.disagreements(&x), 0);
        assert!(x.differs(&y));
        assert!(!x.differs(&x));
    }

    #[test]
    fn entries_iterate_in_row_major_index_order() {
        let x = RoutingState::<ShortestPaths>::from_fn(3, |i, j| NatInf::fin((i * 3 + j) as u64));
        let seen: Vec<(usize, usize)> = x.entries().map(|(i, j, _)| (i, j)).collect();
        let expected: Vec<(usize, usize)> =
            (0..3).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        assert_eq!(seen, expected);
        for (i, j, r) in x.entries() {
            assert_eq!(r, x.get(i, j));
        }
    }

    #[test]
    fn pointwise_choice() {
        let alg = ShortestPaths::new();
        let x = RoutingState::<ShortestPaths>::uniform(2, NatInf::fin(5));
        let y = RoutingState::<ShortestPaths>::from_fn(2, |i, _| {
            NatInf::fin(if i == 0 { 3 } else { 9 })
        });
        let z = x.choice(&alg, &y);
        assert_eq!(z.get(0, 0), &NatInf::fin(3));
        assert_eq!(z.get(1, 1), &NatInf::fin(5));
    }

    #[test]
    fn growing_and_shrinking() {
        let alg = ShortestPaths::new();
        let x = RoutingState::<ShortestPaths>::from_fn(2, |i, j| NatInf::fin((i + j) as u64));
        let g = x.grown(&alg, 4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.get(1, 1), x.get(1, 1));
        assert_eq!(g.get(3, 3), &NatInf::fin(0));
        assert_eq!(g.get(2, 3), &NatInf::Inf);

        let s = g.without_node(0);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.get(0, 0), x.get(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let alg = ShortestPaths::new();
        let x = RoutingState::identity(&alg, 2);
        let _ = x.get(2, 0);
    }

    #[test]
    fn debug_output_mentions_rows() {
        let alg = ShortestPaths::new();
        let x = RoutingState::identity(&alg, 2);
        let s = format!("{x:?}");
        assert!(s.contains("node 0"));
        assert!(s.contains("node 1"));
    }
}
