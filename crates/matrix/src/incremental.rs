//! Incremental (dirty-row) synchronous iteration.
//!
//! The full iteration in [`crate::sync`] recomputes every node's table
//! every round, even though most rounds change only a shrinking frontier of
//! tables — and after a topology change only the region around the edit is
//! perturbed at all ("Dynamic Asynchronous Iterations" makes exactly this
//! observation).  This module tracks *dirty rows* instead:
//!
//! * row `i` of `σ(X)` depends only on the rows `k` with `A_ik` present
//!   (node `i`'s import neighbourhood), so a row whose inputs have not
//!   changed since its last recomputation cannot change either;
//! * each round recomputes exactly the dirty rows **from the previous
//!   round's values** (Jacobi order, buffered writes), marks the dependants
//!   of every row that actually changed dirty for the next round, and stops
//!   when no row is dirty.
//!
//! Because clean rows provably satisfy `σ(X)[i] = X[i]`, the produced
//! sequence of states is *identical* to the full synchronous iteration —
//! for every algebra, not just the strictly-increasing ones — while the
//! work per round shrinks to the active frontier.  The dirty set itself is
//! an epoch-stamped [`Frontier`] work queue, so the per-round bookkeeping
//! is `O(|frontier|)` too — no `O(n)` mask scan, no per-row allocation
//! (recomputed rows are staged in a buffer reused across rounds).
//! Starting from a fixed
//! point of a previous topology, [`dirty_rows_after_change`] computes the
//! only rows the edit can perturb, which is what makes reconvergence after
//! a change `O(perturbed region)` instead of `O(n · |E|)` per round.

use crate::adjacency::AdjacencyMatrix;
use crate::frontier::Frontier;
use crate::parallel::{par_recompute_rows_into, ParallelAlgebra};
use crate::sigma::sigma_row_into_changed;
use crate::state::RoutingState;
use crate::sync::emit_settles;
use dbf_algebra::RoutingAlgebra;
use dbf_telemetry::{NoopSink, TelemetrySink};
use std::time::Instant;

/// The outcome of an incremental iteration run.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome<A: RoutingAlgebra> {
    /// The final state (a fixed point when `converged` is true).
    pub state: RoutingState<A>,
    /// Rounds performed (a round recomputes the currently dirty rows).
    pub rounds: usize,
    /// Total row recomputations across all rounds.  A full synchronous
    /// round costs `n` of these, so `row_recomputations / n` is directly
    /// comparable to [`crate::sync::SyncOutcome::iterations`].
    pub row_recomputations: u64,
    /// Whether the dirty set emptied (a fixed point was reached) within the
    /// round budget.
    pub converged: bool,
    /// The residual dirty mask when `converged` is false: exactly the rows
    /// still scheduled for recomputation, so the iteration can be resumed
    /// (`x0 = state`, `dirty0 = dirty`) and will reproduce the uninterrupted
    /// trajectory — the Jacobi staging makes the split point invisible.
    /// Empty when `converged` is true.
    pub dirty: Vec<bool>,
}

/// The rows a topology change can perturb directly: every row whose import
/// neighbourhood (its adjacency row) differs between `old` and `new`, plus
/// every row that did not exist in `old`.
///
/// Starting [`iterate_dirty_to_fixed_point`] from a fixed point of `old`
/// with exactly these rows dirty reconverges to the fixed point of `new`:
/// an untouched row `i` satisfies `σ_new(X)[i] = σ_old(X)[i] = X[i]`, so it
/// only needs recomputing once a dirty neighbour's table actually changes.
pub fn dirty_rows_after_change<A>(old: &AdjacencyMatrix<A>, new: &AdjacencyMatrix<A>) -> Vec<bool>
where
    A: RoutingAlgebra,
    A::Edge: PartialEq,
{
    (0..new.node_count())
        .map(|i| i >= old.node_count() || old.row(i) != new.row(i))
        .collect()
}

/// Iterate `σ` from `x0`, recomputing only dirty rows, until no row is
/// dirty or `max_rounds` rounds have been performed.
///
/// `dirty0` marks the rows that must be recomputed at least once: pass
/// all-`true` for a fresh start (the result then equals
/// [`crate::sync::iterate_to_fixed_point`] state-for-state, round-for-round)
/// or [`dirty_rows_after_change`] when `x0` is the fixed point of a
/// previous topology.
///
/// # Panics
///
/// Panics if `adj`, `x0` and `dirty0` do not agree on the node count.
pub fn iterate_dirty_to_fixed_point<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
) -> IncrementalOutcome<A> {
    iterate_dirty_traced(alg, adj, x0, dirty0, max_rounds, &mut NoopSink)
}

/// [`iterate_dirty_to_fixed_point`] with a telemetry sink: per-round
/// `round_start`/`round_end` events carrying the dirty-set size (the work
/// list is exactly the dirty rows), and per-node `node_settled` events once
/// the loop stops.  The outcome is identical to the untraced iteration for
/// every sink; with [`NoopSink`] the instrumentation compiles out.
pub fn iterate_dirty_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
    tel: &mut S,
) -> IncrementalOutcome<A>
where
    A: RoutingAlgebra,
    S: TelemetrySink + ?Sized,
{
    let n = adj.node_count();
    run_dirty_loop(
        adj,
        x0,
        dirty0,
        max_rounds,
        |state, worklist, staging, changed| {
            let need = worklist.len() * n;
            if staging.len() < need {
                staging.resize(need, alg.invalid());
            }
            changed.clear();
            changed.resize(worklist.len(), false);
            for (pos, &i) in worklist.iter().enumerate() {
                let slot = &mut staging[pos * n..(pos + 1) * n];
                changed[pos] = sigma_row_into_changed(alg, adj, state, i, slot);
            }
        },
        tel,
    )
}

/// The shared dirty-set engine behind the sequential and sharded dirty-row
/// iterations: the round loop, the frontier bookkeeping and the outcome
/// accounting live here *once*, parameterised only by how a round's work
/// list is recomputed.
///
/// Each round drains the epoch-stamped [`Frontier`] into a sorted work
/// list (`O(|frontier| log |frontier|)`, not an `O(n)` mask scan) and
/// hands `recompute` the previous round's state plus two buffers that are
/// reused across rounds: `staging` must end up holding the recomputed row
/// for work-list position `pos` at `staging[pos·n .. (pos+1)·n]`, and
/// `changed[pos]` must say whether that row differs from the current one.
/// Both the sequential kernel and
/// [`crate::parallel::par_recompute_rows_into`] fill the same
/// position-major layout, so the trajectory is identical by construction
/// rather than by keeping two loops in lockstep — and neither allocates
/// per round once the buffers have grown to the peak frontier size.
fn run_dirty_loop<A, S>(
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
    mut recompute: impl FnMut(&RoutingState<A>, &[usize], &mut Vec<A::Route>, &mut Vec<bool>),
    tel: &mut S,
) -> IncrementalOutcome<A>
where
    A: RoutingAlgebra,
    S: TelemetrySink + ?Sized,
{
    let n = adj.node_count();
    assert_eq!(
        n,
        x0.node_count(),
        "adjacency and state dimensions must match"
    );
    assert_eq!(n, dirty0.len(), "dirty mask length must match");

    // dependants[k] = the rows that read row k (the nodes importing from k).
    let dependants = adj.dependants();

    let on = tel.enabled();
    let mut last_changed = vec![0u64; if on { n } else { 0 }];
    let mut state = x0.clone();
    let mut frontier = Frontier::new(n);
    let mut next_frontier = Frontier::new(n);
    for (i, &d) in dirty0.iter().enumerate() {
        if d {
            frontier.insert(i);
        }
    }
    // Reused across rounds: one staging row per work-list position plus the
    // matching change flags — zero per-round allocation once they reach the
    // peak frontier size.
    let mut staging: Vec<A::Route> = Vec::new();
    let mut changed_flags: Vec<bool> = Vec::new();
    let mut rounds = 0usize;
    let mut row_recomputations = 0u64;

    while !frontier.is_empty() {
        if rounds == max_rounds {
            if on {
                emit_settles(tel, &last_changed);
            }
            let mut residual = vec![false; n];
            for &i in frontier.sorted() {
                residual[i] = true;
            }
            return IncrementalOutcome {
                state,
                rounds,
                row_recomputations,
                converged: false,
                dirty: residual,
            };
        }
        rounds += 1;
        let wl_len = frontier.len() as u64;
        row_recomputations += wl_len;
        let t0 = on.then(Instant::now);
        tel.round_start(rounds as u64, wl_len, wl_len);
        let worklist = frontier.sorted();
        // Changed rows are staged and applied after the whole work list is
        // recomputed, so every recomputation reads the *previous* round's
        // values (Jacobi order) — this is what keeps the trajectory
        // identical to the full σ iteration.
        recompute(&state, worklist, &mut staging, &mut changed_flags);
        let mut changed_rows = 0u64;
        for (pos, &i) in worklist.iter().enumerate() {
            if !changed_flags[pos] {
                continue;
            }
            changed_rows += 1;
            state
                .row_mut(i)
                .clone_from_slice(&staging[pos * n..(pos + 1) * n]);
            if on {
                last_changed[i] = rounds as u64;
            }
            for &d in &dependants[i] {
                next_frontier.insert(d);
            }
        }
        let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        tel.round_end(rounds as u64, wl_len, changed_rows, wall_ns);
        std::mem::swap(&mut frontier, &mut next_frontier);
        next_frontier.clear();
    }
    if on {
        emit_settles(tel, &last_changed);
    }
    IncrementalOutcome {
        state,
        rounds,
        row_recomputations,
        converged: true,
        dirty: Vec::new(),
    }
}

/// [`iterate_dirty_to_fixed_point`] with each round's dirty-row work list
/// sharded across up to `threads` worker threads (see [`crate::parallel`]).
///
/// The trajectory is identical to the sequential engine for every thread
/// count: a round recomputes exactly the dirty rows from the previous
/// round's buffered state (each row by exactly one worker), the changed
/// rows are applied in ascending row order, and the dirty bookkeeping is
/// single-threaded — so `state`, `rounds` and `row_recomputations` are all
/// pure functions of the problem.  `threads <= 1` runs the sequential
/// engine directly.
///
/// # Panics
///
/// Panics if `adj`, `x0` and `dirty0` do not agree on the node count.
pub fn par_iterate_dirty_to_fixed_point<A>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
    threads: usize,
) -> IncrementalOutcome<A>
where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
{
    if threads <= 1 {
        return iterate_dirty_to_fixed_point(alg, adj, x0, dirty0, max_rounds);
    }
    run_dirty_loop(
        adj,
        x0,
        dirty0,
        max_rounds,
        |state, worklist, staging, changed| {
            par_recompute_rows_into(alg, adj, state, worklist, threads, staging, changed)
        },
        &mut NoopSink,
    )
}

/// [`par_iterate_dirty_to_fixed_point`] with a telemetry sink.  The
/// deterministic event stream — round indices, work-list sizes, changed-row
/// counts, settle rounds — is identical to [`iterate_dirty_traced`] for
/// every thread count, because the dirty bookkeeping (and the sink) stay on
/// the coordinating thread and the sharded recomputation returns changed
/// rows in the sequential order.
pub fn par_iterate_dirty_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
    threads: usize,
    tel: &mut S,
) -> IncrementalOutcome<A>
where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
    S: TelemetrySink + ?Sized,
{
    if threads <= 1 {
        return iterate_dirty_traced(alg, adj, x0, dirty0, max_rounds, tel);
    }
    run_dirty_loop(
        adj,
        x0,
        dirty0,
        max_rounds,
        |state, worklist, staging, changed| {
            par_recompute_rows_into(alg, adj, state, worklist, threads, staging, changed)
        },
        tel,
    )
}

/// [`par_iterate_dirty_traced`] against an explicit [`WorkerPool`](crate::pool::WorkerPool) instead
/// of the process-wide shared one.
///
/// The route server runs its reconvergences on a dedicated pool for two
/// reasons: an armed [`FaultPlan`](crate::faults::FaultPlan) keys its
/// triggers on epoch indices, which are only deterministic on a pool whose
/// history the server controls; and a fault that kills or stalls a worker
/// must not perturb unrelated work sharing the process-wide pool.
/// `threads <= 1` still runs the sequential engine (the pool is unused).
#[allow(clippy::too_many_arguments)]
pub fn par_iterate_dirty_traced_on<A, S>(
    pool: &crate::pool::WorkerPool,
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    dirty0: &[bool],
    max_rounds: usize,
    threads: usize,
    tel: &mut S,
) -> IncrementalOutcome<A>
where
    A: ParallelAlgebra,
    A::Route: Send + Sync,
    A::Edge: Sync,
    S: TelemetrySink + ?Sized,
{
    if threads <= 1 {
        return iterate_dirty_traced(alg, adj, x0, dirty0, max_rounds, tel);
    }
    run_dirty_loop(
        adj,
        x0,
        dirty0,
        max_rounds,
        |state, worklist, staging, changed| {
            crate::parallel::par_recompute_rows_into_on(
                pool, alg, adj, state, worklist, threads, staging, changed,
            )
        },
        tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{is_stable, iterate_to_fixed_point};
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn weighted_ring(n: usize) -> AdjacencyMatrix<ShortestPaths> {
        let topo =
            generators::ring(n).with_weights(|i, j| NatInf::fin(((i * 7 + j * 13) % 9 + 1) as u64));
        AdjacencyMatrix::from_topology(&topo)
    }

    #[test]
    fn all_dirty_start_matches_full_sync_round_for_round() {
        let alg = ShortestPaths::new();
        let adj = weighted_ring(9);
        let x0 = RoutingState::identity(&alg, 9);
        let full = iterate_to_fixed_point(&alg, &adj, &x0, 200);
        let inc = iterate_dirty_to_fixed_point(&alg, &adj, &x0, &[true; 9], 200);
        assert!(full.converged && inc.converged);
        assert_eq!(inc.state, full.state);
        // The dirty engine detects the fixed point one round earlier than
        // the full iteration's equality test (an empty dirty set *is* the
        // stability proof), but never later.
        assert!(inc.rounds <= full.iterations + 1);
        assert!(inc.row_recomputations <= (full.iterations as u64 + 1) * 9);
    }

    #[test]
    fn change_phase_recomputes_only_the_perturbed_region() {
        // A long line: failing the far-end link must not recompute the rows
        // at the other end (bad news propagates a bounded number of hops on
        // the bounded hop-count algebra).
        let alg = BoundedHopCount::new(8);
        let n = 64;
        let old_topo = generators::line(n).with_weights(|_, _| 1u64);
        let old_adj = AdjacencyMatrix::<BoundedHopCount>::from_topology(&old_topo);
        let fixed = iterate_to_fixed_point(&alg, &old_adj, &RoutingState::identity(&alg, n), 400);
        assert!(fixed.converged);

        let mut new_adj = old_adj.clone();
        new_adj.set(0, 1, None);
        new_adj.set(1, 0, None);
        let dirty = dirty_rows_after_change(&old_adj, &new_adj);
        assert_eq!(
            dirty.iter().filter(|&&d| d).count(),
            2,
            "only the two endpoints' import sets changed"
        );

        let inc = iterate_dirty_to_fixed_point(&alg, &new_adj, &fixed.state, &dirty, 400);
        let full = iterate_to_fixed_point(&alg, &new_adj, &fixed.state, 400);
        assert!(inc.converged && full.converged);
        assert_eq!(inc.state, full.state);
        assert!(is_stable(&alg, &new_adj, &inc.state));
        // The full iteration recomputes n rows per round; the dirty engine
        // only touches the frontier around the failed link.
        let full_row_equivalents = (full.iterations as u64 + 1) * n as u64;
        assert!(
            inc.row_recomputations < full_row_equivalents / 2,
            "incremental {} vs full {}",
            inc.row_recomputations,
            full_row_equivalents
        );
    }

    #[test]
    fn widest_paths_agree_with_full_sync() {
        // Widest paths is increasing but not strictly, so its fixed point is
        // not guaranteed unique — the incremental engine must still land on
        // the *same* one as full σ because it reproduces the trajectory.
        let alg = WidestPaths::new();
        let topo = generators::leaf_spine(3, 6)
            .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let x0 = RoutingState::identity(&alg, 9);
        let full = iterate_to_fixed_point(&alg, &adj, &x0, 200);
        let inc = iterate_dirty_to_fixed_point(&alg, &adj, &x0, &[true; 9], 200);
        assert!(full.converged && inc.converged);
        assert_eq!(inc.state, full.state);

        let mut cut = adj.clone();
        cut.set(0, 6, None);
        cut.set(6, 0, None);
        let dirty = dirty_rows_after_change(&adj, &cut);
        let inc2 = iterate_dirty_to_fixed_point(&alg, &cut, &inc.state, &dirty, 200);
        let full2 = iterate_to_fixed_point(&alg, &cut, &full.state, 200);
        assert_eq!(inc2.state, full2.state);
        assert!(inc2.converged);
    }

    #[test]
    fn growing_networks_mark_fresh_rows_dirty() {
        let alg = ShortestPaths::new();
        let small = weighted_ring(5);
        let fixed = iterate_to_fixed_point(&alg, &small, &RoutingState::identity(&alg, 5), 100);
        // Node 5 joins and links to node 0 (both directions, weight 1).
        let mut grown = AdjacencyMatrix::<ShortestPaths>::empty(6);
        for i in 0..5 {
            for (j, w) in small.row(i) {
                grown.set(i, *j, Some(*w));
            }
        }
        grown.set(0, 5, Some(NatInf::fin(1)));
        grown.set(5, 0, Some(NatInf::fin(1)));
        let dirty = dirty_rows_after_change(&small, &grown);
        assert!(dirty[0] && dirty[5], "both endpoints of the new link");
        let state0 = fixed.state.grown(&alg, 6);
        let inc = iterate_dirty_to_fixed_point(&alg, &grown, &state0, &dirty, 100);
        let full = iterate_to_fixed_point(&alg, &grown, &state0, 100);
        assert!(inc.converged);
        assert_eq!(inc.state, full.state);
    }

    #[test]
    fn the_sharded_engine_reproduces_the_sequential_trajectory() {
        // Fresh start and change-phase start, across thread counts: state,
        // round count and row-recomputation count must all be identical to
        // the sequential dirty engine (which itself matches full σ).
        let alg = ShortestPaths::new();
        let adj = weighted_ring(23);
        let x0 = RoutingState::identity(&alg, 23);
        let seq = iterate_dirty_to_fixed_point(&alg, &adj, &x0, &[true; 23], 300);
        for threads in [2, 3, 8] {
            let par = par_iterate_dirty_to_fixed_point(&alg, &adj, &x0, &[true; 23], 300, threads);
            assert_eq!(par.state, seq.state, "threads={threads}");
            assert_eq!(par.rounds, seq.rounds, "threads={threads}");
            assert_eq!(
                par.row_recomputations, seq.row_recomputations,
                "threads={threads}"
            );
            assert!(par.converged);
        }

        let mut cut = adj.clone();
        cut.set(0, 1, None);
        cut.set(1, 0, None);
        let dirty = dirty_rows_after_change(&adj, &cut);
        let seq2 = iterate_dirty_to_fixed_point(&alg, &cut, &seq.state, &dirty, 300);
        let par2 = par_iterate_dirty_to_fixed_point(&alg, &cut, &seq.state, &dirty, 300, 4);
        assert_eq!(par2.state, seq2.state);
        assert_eq!(par2.rounds, seq2.rounds);
        assert_eq!(par2.row_recomputations, seq2.row_recomputations);
        assert!(is_stable(&alg, &cut, &par2.state));
    }

    #[test]
    fn a_zero_round_budget_reports_non_convergence() {
        let alg = ShortestPaths::new();
        let adj = weighted_ring(4);
        let x0 = RoutingState::identity(&alg, 4);
        let out = iterate_dirty_to_fixed_point(&alg, &adj, &x0, &[true; 4], 0);
        assert!(!out.converged);
        assert_eq!(out.rounds, 0);
        // ... and a clean start over a clean mask is trivially converged.
        let fixed = iterate_to_fixed_point(&alg, &adj, &x0, 100).state;
        let out = iterate_dirty_to_fixed_point(&alg, &adj, &fixed, &[false; 4], 0);
        assert!(out.converged);
        assert_eq!(out.row_recomputations, 0);
    }
}
