//! Synchronous fixed-point iteration (Section 2.3) and stability testing
//! (Definition 4).

use crate::adjacency::AdjacencyMatrix;
use crate::sigma::{sigma, sigma_into};
use crate::state::RoutingState;
use dbf_algebra::RoutingAlgebra;

/// The outcome of a synchronous iteration run.
#[derive(Clone, Debug)]
pub struct SyncOutcome<A: RoutingAlgebra> {
    /// The final state (a fixed point when `converged` is true).
    pub state: RoutingState<A>,
    /// The number of applications of `σ` that were performed.
    pub iterations: usize,
    /// Whether a fixed point was reached within the iteration budget.
    pub converged: bool,
}

/// Is `X` stable, i.e. a fixed point of `σ` (Definition 4)?  Equivalently:
/// no node can improve any of its selected routes by unilaterally
/// re-running its selection — a *local* optimum.
pub fn is_stable<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
) -> bool {
    sigma(alg, adj, x) == *x
}

/// Iterate `σ` from `x0` until a fixed point is reached or `max_iterations`
/// rounds have been performed.
///
/// For strictly increasing algebras with finite carriers (Theorem 7) and for
/// increasing path algebras (Theorem 11) a fixed point is always reached;
/// for other algebras (for example the non-increasing longest-paths algebra
/// on a cyclic topology, or a BAD-GADGET-style policy configuration) the
/// iteration may never converge, which the caller observes as
/// `converged == false`.
pub fn iterate_to_fixed_point<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    max_iterations: usize,
) -> SyncOutcome<A> {
    // Double-buffered: `σ` streams into a reusable second state and the
    // buffers are swapped each round, so the loop performs no per-round
    // allocation (at n = 10⁴ a state is ~1.6 GB, so this matters).
    let mut cur = x0.clone();
    let mut next = cur.clone();
    for k in 0..max_iterations {
        sigma_into(alg, adj, &cur, &mut next);
        if next == cur {
            return SyncOutcome {
                state: cur,
                iterations: k,
                converged: true,
            };
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // One last check so that a state that becomes stable exactly at the
    // budget boundary is still reported as converged — into the idle
    // buffer, not a fresh allocation.
    sigma_into(alg, adj, &cur, &mut next);
    let converged = next == cur;
    SyncOutcome {
        state: cur,
        iterations: max_iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::instances::longest::LongestPaths;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn shortest_paths_on_a_ring_converges_to_ring_distances() {
        let alg = ShortestPaths::new();
        let topo = generators::ring(6).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);
        assert!(is_stable(&alg, &adj, &out.state));
        // ring distance = min(|i-j|, 6-|i-j|)
        for i in 0..6u64 {
            for j in 0..6u64 {
                let d = (i as i64 - j as i64).unsigned_abs();
                let expected = d.min(6 - d);
                assert_eq!(
                    out.state.get(i as usize, j as usize),
                    &NatInf::fin(expected),
                    "distance {i}→{j}"
                );
            }
        }
    }

    #[test]
    fn convergence_takes_about_diameter_rounds_on_a_line() {
        let alg = ShortestPaths::new();
        let n = 10;
        let topo = generators::line(n).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 100);
        assert!(out.converged);
        assert!(out.iterations >= n - 1, "needs at least diameter rounds");
        assert!(
            out.iterations <= n + 1,
            "distributive algebras converge in O(n)"
        );
    }

    #[test]
    fn widest_paths_reaches_a_stable_state() {
        let alg = WidestPaths::new();
        let topo =
            generators::complete(5).with_weights(|i, j| NatInf::fin(((i * 5 + j) % 7 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
        assert!(out.converged);
        assert!(is_stable(&alg, &adj, &out.state));
    }

    #[test]
    fn longest_paths_on_a_cycle_converges_to_a_nonsensical_state() {
        // The non-increasing negative example.  Because ℕ∞ addition
        // saturates, the longest-path iteration on a cycle does reach a
        // fixed point — but it is the degenerate all-∞ state, claiming
        // arbitrarily long routes around the cycle rather than the true
        // longest *simple* path lengths.  (The genuinely oscillating
        // non-increasing examples are the BGP gadgets in `dbf-bgp`.)
        let alg = LongestPaths::new();
        let topo = generators::ring(4).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 4), 50);
        assert!(out.converged);
        for (i, j, r) in out.state.entries() {
            if i != j {
                assert_eq!(r, &NatInf::Inf, "entry ({i},{j}) saturates");
            }
        }
        // The true longest *simple* path between adjacent ring nodes has
        // only 3 hops, so claiming ∞ is nonsense — the algebra satisfies
        // Definition 1 but, being non-increasing, none of the paper's
        // guarantees (or classical optimality) apply to it.
    }

    #[test]
    fn stability_detects_fixed_points_and_non_fixed_points() {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let start = RoutingState::identity(&alg, 3);
        assert!(!is_stable(&alg, &adj, &start));
        let out = iterate_to_fixed_point(&alg, &adj, &start, 10);
        assert!(is_stable(&alg, &adj, &out.state));
    }

    #[test]
    fn convergence_from_garbage_states_for_finite_algebras() {
        // Theorem 7 in miniature: a finite strictly increasing algebra
        // (bounded hop count) reaches the same fixed point from the clean
        // state and from a garbage state.
        let alg = BoundedHopCount::new(7);
        let topo = generators::ring(5).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let from_clean = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
        let garbage = RoutingState::<BoundedHopCount>::from_fn(5, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                NatInf::fin(((i * 3 + j) % 7) as u64)
            }
        });
        let from_garbage = iterate_to_fixed_point(&alg, &adj, &garbage, 100);
        assert!(from_clean.converged && from_garbage.converged);
        assert_eq!(from_clean.state, from_garbage.state);
    }

    #[test]
    fn zero_iteration_budget_reports_instability() {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 3), 0);
        assert!(!out.converged);
        assert_eq!(out.iterations, 0);
    }
}
