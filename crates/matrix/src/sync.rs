//! Synchronous fixed-point iteration (Section 2.3) and stability testing
//! (Definition 4).

use crate::adjacency::AdjacencyMatrix;
use crate::sigma::{sigma, sigma_row_into_changed};
use crate::state::RoutingState;
use dbf_algebra::RoutingAlgebra;
use dbf_telemetry::{NoopSink, TelemetrySink};
use std::time::Instant;

/// The outcome of a synchronous iteration run.
#[derive(Clone, Debug)]
pub struct SyncOutcome<A: RoutingAlgebra> {
    /// The final state (a fixed point when `converged` is true).
    pub state: RoutingState<A>,
    /// The number of applications of `σ` that were performed.
    pub iterations: usize,
    /// Whether a fixed point was reached within the iteration budget.
    pub converged: bool,
}

/// The σ iteration budget for an `n`-node problem.
///
/// When the caller knows a convergence bound (the `n·h` of arXiv
/// 2106.01184, computed by `dbf-scenario`'s bound oracle), the budget is
/// `bound + 1`: the theorem says the fixed point arrives within `bound`
/// changing rounds, and the single extra round of headroom means an
/// off-by-one in a bound formula is observed as a *bound violation*
/// (`iterations = bound + 1` with `converged` still true) instead of a
/// spurious convergence failure.  Without a bound the generous quadratic
/// horizon `4n² + 64` is used — large enough for every increasing algebra
/// in the repository while still terminating the genuinely oscillating
/// gadgets.
///
/// Both branches saturate instead of overflowing: at the 10⁵-node scale
/// the route server targets, `4n²` is `4·10¹⁰` — past `u32::MAX`, so on a
/// 32-bit `usize` the unchecked product would wrap to a tiny (or zero)
/// budget and convergence would be misreported.  A saturated budget merely
/// means "iterate until the fixed point", which is always safe.
pub fn iteration_budget(n: usize, predicted_bound: Option<u64>) -> usize {
    match predicted_bound {
        Some(bound) => usize::try_from(bound)
            .unwrap_or(usize::MAX)
            .saturating_add(1),
        None => n.saturating_mul(n).saturating_mul(4).saturating_add(64),
    }
}

/// Is `X` stable, i.e. a fixed point of `σ` (Definition 4)?  Equivalently:
/// no node can improve any of its selected routes by unilaterally
/// re-running its selection — a *local* optimum.
pub fn is_stable<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x: &RoutingState<A>,
) -> bool {
    sigma(alg, adj, x) == *x
}

/// Iterate `σ` from `x0` until a fixed point is reached or `max_iterations`
/// rounds have been performed.
///
/// For strictly increasing algebras with finite carriers (Theorem 7) and for
/// increasing path algebras (Theorem 11) a fixed point is always reached;
/// for other algebras (for example the non-increasing longest-paths algebra
/// on a cyclic topology, or a BAD-GADGET-style policy configuration) the
/// iteration may never converge, which the caller observes as
/// `converged == false`.
pub fn iterate_to_fixed_point<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    max_iterations: usize,
) -> SyncOutcome<A> {
    iterate_traced(alg, adj, x0, max_iterations, &mut NoopSink)
}

/// One instrumented σ round: sweep every row of `σ(cur)` into `next` and
/// report how many rows changed.  Rows outside the active frontier
/// (`needs[i] == false`: no import neighbour changed last round) provably
/// satisfy `σ(cur)[i] = cur[i]` and are not recomputed; of those, rows that
/// also did not change *themselves* last round (`prev[i] == false`) already
/// hold the current value in the idle double buffer (it lags exactly one
/// round behind) and are not even copied — the late-convergence rounds
/// where only a few rows still move cost a frontier-sized σ sweep plus a
/// memcpy per freshly-settled row, nothing per long-quiet row.  The change
/// test rides the streaming write ([`sigma_row_into_changed`]), so there is
/// no second full-row `Eq` pass either.  Telemetry-only work — the
/// wall-clock read and the settle bookkeeping — is guarded behind
/// `tel.enabled()`, so the `NoopSink` monomorphization is the plain sweep.
#[allow(clippy::too_many_arguments)]
fn traced_round<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    cur: &RoutingState<A>,
    next: &mut RoutingState<A>,
    round: u64,
    needs: &[bool],
    prev: &[bool],
    flags: &mut [bool],
    last_changed: &mut [u64],
    tel: &mut S,
) -> u64
where
    A: RoutingAlgebra,
    S: TelemetrySink + ?Sized,
{
    let n = adj.node_count();
    let on = tel.enabled();
    let t0 = on.then(Instant::now);
    let frontier = needs.iter().filter(|&&d| d).count() as u64;
    tel.round_start(round, n as u64, frontier);
    let mut changed = 0u64;
    for ((i, slot), flag) in next
        .entries_mut()
        .chunks_mut(n.max(1))
        .enumerate()
        .zip(flags.iter_mut())
    {
        *flag = if needs[i] {
            sigma_row_into_changed(alg, adj, cur, i, slot)
        } else {
            if prev[i] {
                // Freshly settled row: σ(cur)[i] = cur[i], but the idle
                // buffer still holds the value from two rounds ago, so
                // refresh it by copy instead of recomputing.
                slot.clone_from_slice(cur.row(i));
            }
            // else: quiet for two rounds — the idle buffer already holds
            // the current value, skip the row entirely.
            false
        };
        if *flag {
            changed += 1;
            if on {
                last_changed[i] = round;
            }
        }
    }
    let wall_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
    tel.round_end(round, frontier, changed, wall_ns);
    changed
}

/// Recompute the next round's active frontier: exactly the dependants of
/// the rows whose tables changed this round need a σ recomputation; every
/// other row is provably stable and may be copied.  Shared by the
/// sequential loop here and the parallel loops in [`crate::parallel`] so
/// the two engines' schedules (and telemetry) stay identical.
pub(crate) fn update_needs(dependants: &[Vec<usize>], flags: &[bool], needs: &mut [bool]) {
    needs.fill(false);
    for (i, &changed) in flags.iter().enumerate() {
        if changed {
            for &d in &dependants[i] {
                needs[d] = true;
            }
        }
    }
}

/// Emit `node_settled` for every node, in node order: the round in which
/// the node's row last changed (0 if it never moved).
pub(crate) fn emit_settles<S: TelemetrySink + ?Sized>(tel: &mut S, last_changed: &[u64]) {
    for (node, &round) in last_changed.iter().enumerate() {
        tel.node_settled(node, round);
    }
}

/// [`iterate_to_fixed_point`] with a telemetry sink: emits
/// `round_start`/`round_end` per σ round (rows recomputed, rows changed)
/// and, once the loop stops, a `node_settled` event per node carrying the
/// last round in which its row changed.
///
/// The returned outcome is identical to the untraced iteration for every
/// sink — instrumentation never alters the trajectory.  With
/// [`NoopSink`] the instrumentation compiles out entirely (this *is* the
/// untraced implementation: [`iterate_to_fixed_point`] forwards here).
pub fn iterate_traced<A, S>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    x0: &RoutingState<A>,
    max_iterations: usize,
    tel: &mut S,
) -> SyncOutcome<A>
where
    A: RoutingAlgebra,
    S: TelemetrySink + ?Sized,
{
    // Double-buffered: `σ` streams into a reusable second state and the
    // buffers are swapped each round, so the loop performs no per-round
    // allocation (at n = 10⁴ a state is ~1.6 GB, so this matters).
    let n = adj.node_count();
    let on = tel.enabled();
    let mut last_changed = vec![0u64; if on { n } else { 0 }];
    // Row-skip bookkeeping: round 1 must recompute everything (x0 is
    // arbitrary), after which only the dependants of last round's changed
    // rows can move.  `changed == 0` over the active frontier therefore
    // certifies a genuine fixed point: every skipped row already satisfied
    // σ(X)[i] = X[i] by the frontier invariant.  `prev`/`flags` alternate
    // as last round's and this round's change sets (prev starts all-true
    // so round 2 refreshes whatever round 1 left stale in the idle buffer).
    let dependants = adj.dependants();
    let mut needs = vec![true; n];
    let mut prev = vec![true; n];
    let mut flags = vec![false; n];
    let mut cur = x0.clone();
    let mut next = cur.clone();
    let mut round = 0u64;
    for k in 0..max_iterations {
        round = k as u64 + 1;
        if traced_round(
            alg,
            adj,
            &cur,
            &mut next,
            round,
            &needs,
            &prev,
            &mut flags,
            &mut last_changed,
            tel,
        ) == 0
        {
            if on {
                emit_settles(tel, &last_changed);
            }
            return SyncOutcome {
                state: cur,
                iterations: k,
                converged: true,
            };
        }
        update_needs(&dependants, &flags, &mut needs);
        std::mem::swap(&mut prev, &mut flags);
        std::mem::swap(&mut cur, &mut next);
    }
    // One last check so that a state that becomes stable exactly at the
    // budget boundary is still reported as converged — into the idle
    // buffer, not a fresh allocation.  The frontier invariant still holds
    // here, so checking only the active rows is the full stability test.
    let changed = traced_round(
        alg,
        adj,
        &cur,
        &mut next,
        round + 1,
        &needs,
        &prev,
        &mut flags,
        &mut last_changed,
        tel,
    );
    if on {
        emit_settles(tel, &last_changed);
    }
    SyncOutcome {
        state: cur,
        iterations: max_iterations,
        converged: changed == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::instances::longest::LongestPaths;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    #[test]
    fn iteration_budget_saturates_at_route_server_scale() {
        // The legacy horizon, where it fits.
        assert_eq!(iteration_budget(0, None), 64);
        assert_eq!(iteration_budget(10, None), 464);
        // n = 10⁵ (the serve-mode target): 4n² = 4·10¹⁰ must not wrap.
        // On 64-bit it is exact; on 32-bit it saturates instead of
        // wrapping to a tiny budget.
        let big = iteration_budget(100_000, None);
        if usize::BITS >= 64 {
            assert_eq!(big as u128, 4u128 * 100_000 * 100_000 + 64);
        } else {
            assert_eq!(big, usize::MAX);
        }
        // Degenerate extreme: no panic, full saturation.
        assert_eq!(iteration_budget(usize::MAX, None), usize::MAX);
        // The bound-driven branch saturates too (bound + 1 at the top).
        assert_eq!(iteration_budget(5, Some(9)), 10);
        assert_eq!(iteration_budget(5, Some(u64::MAX)), usize::MAX);
    }

    #[test]
    fn shortest_paths_on_a_ring_converges_to_ring_distances() {
        let alg = ShortestPaths::new();
        let topo = generators::ring(6).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 100);
        assert!(out.converged);
        assert!(is_stable(&alg, &adj, &out.state));
        // ring distance = min(|i-j|, 6-|i-j|)
        for i in 0..6u64 {
            for j in 0..6u64 {
                let d = (i as i64 - j as i64).unsigned_abs();
                let expected = d.min(6 - d);
                assert_eq!(
                    out.state.get(i as usize, j as usize),
                    &NatInf::fin(expected),
                    "distance {i}→{j}"
                );
            }
        }
    }

    #[test]
    fn convergence_takes_about_diameter_rounds_on_a_line() {
        let alg = ShortestPaths::new();
        let n = 10;
        let topo = generators::line(n).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 100);
        assert!(out.converged);
        assert!(out.iterations >= n - 1, "needs at least diameter rounds");
        assert!(
            out.iterations <= n + 1,
            "distributive algebras converge in O(n)"
        );
    }

    #[test]
    fn widest_paths_reaches_a_stable_state() {
        let alg = WidestPaths::new();
        let topo =
            generators::complete(5).with_weights(|i, j| NatInf::fin(((i * 5 + j) % 7 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
        assert!(out.converged);
        assert!(is_stable(&alg, &adj, &out.state));
    }

    #[test]
    fn longest_paths_on_a_cycle_converges_to_a_nonsensical_state() {
        // The non-increasing negative example.  Because ℕ∞ addition
        // saturates, the longest-path iteration on a cycle does reach a
        // fixed point — but it is the degenerate all-∞ state, claiming
        // arbitrarily long routes around the cycle rather than the true
        // longest *simple* path lengths.  (The genuinely oscillating
        // non-increasing examples are the BGP gadgets in `dbf-bgp`.)
        let alg = LongestPaths::new();
        let topo = generators::ring(4).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 4), 50);
        assert!(out.converged);
        for (i, j, r) in out.state.entries() {
            if i != j {
                assert_eq!(r, &NatInf::Inf, "entry ({i},{j}) saturates");
            }
        }
        // The true longest *simple* path between adjacent ring nodes has
        // only 3 hops, so claiming ∞ is nonsense — the algebra satisfies
        // Definition 1 but, being non-increasing, none of the paper's
        // guarantees (or classical optimality) apply to it.
    }

    #[test]
    fn stability_detects_fixed_points_and_non_fixed_points() {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let start = RoutingState::identity(&alg, 3);
        assert!(!is_stable(&alg, &adj, &start));
        let out = iterate_to_fixed_point(&alg, &adj, &start, 10);
        assert!(is_stable(&alg, &adj, &out.state));
    }

    #[test]
    fn convergence_from_garbage_states_for_finite_algebras() {
        // Theorem 7 in miniature: a finite strictly increasing algebra
        // (bounded hop count) reaches the same fixed point from the clean
        // state and from a garbage state.
        let alg = BoundedHopCount::new(7);
        let topo = generators::ring(5).with_weights(|_, _| 1u64);
        let adj = AdjacencyMatrix::from_topology(&topo);
        let from_clean = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 100);
        let garbage = RoutingState::<BoundedHopCount>::from_fn(5, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                NatInf::fin(((i * 3 + j) % 7) as u64)
            }
        });
        let from_garbage = iterate_to_fixed_point(&alg, &adj, &garbage, 100);
        assert!(from_clean.converged && from_garbage.converged);
        assert_eq!(from_clean.state, from_garbage.state);
    }

    #[test]
    fn iteration_budget_prefers_the_bound_and_falls_back_quadratically() {
        assert_eq!(iteration_budget(10, Some(40)), 41);
        assert_eq!(iteration_budget(10, None), 4 * 100 + 64);
        // Saturates instead of overflowing on absurd declared bounds.
        assert_eq!(iteration_budget(2, Some(u64::MAX)), usize::MAX);
    }

    #[test]
    fn zero_iteration_budget_reports_instability() {
        let alg = ShortestPaths::new();
        let topo = generators::line(3).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 3), 0);
        assert!(!out.converged);
        assert_eq!(out.iterations, 0);
    }
}
