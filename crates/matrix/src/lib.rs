//! # dbf-matrix — the matrix model of synchronous Distributed Bellman-Ford
//!
//! This crate implements Sections 2.2 and 2.3 of *"Asynchronous Convergence
//! of Policy-Rich Distributed Bellman-Ford Routing Protocols"* (Daggitt,
//! Gurney & Griffin, SIGCOMM 2018):
//!
//! * [`adjacency::AdjacencyMatrix`] — the `n × n` matrix `A` of edge
//!   functions describing the network's links and import policies
//!   (`A[i][j]` is the policy node `i` applies to routes announced by its
//!   neighbour `j`; a missing entry is the constant-∞̄ function);
//! * [`state::RoutingState`] — the global routing state `X ∈ 𝕄ₙ(S)`, where
//!   row `i` is node `i`'s routing table and `X[i][j]` is node `i`'s current
//!   best route to destination `j`, together with the identity matrix `I`;
//! * [`sigma`](mod@crate::sigma) — one synchronous round
//!   `σ(X) = A(X) ⊕ I` (Equation 5) and
//!   per-entry recomputation reused by the asynchronous iterate `δ`;
//! * [`sync`] — repeated synchronous iteration to a fixed point, stability
//!   testing (Definition 4) and iteration counting (the quantity studied in
//!   Section 8.1);
//! * [`incremental`] — dirty-row iteration: only rows whose inputs changed
//!   are recomputed, reproducing the full σ trajectory while making
//!   reconvergence after a topology change proportional to the perturbed
//!   region rather than to the whole network;
//! * [`frontier`] — the epoch-stamped work queue behind the dirty-row
//!   loops: O(1) dedup-insert, O(|frontier|) drain, and clearing by
//!   generation bump instead of an O(n) scan per round;
//! * [`permute`] — cache-conscious node relabelings (degree-sorted,
//!   reverse-Cuthill-McKee): σ is permutation-equivariant, so engines may
//!   iterate in a bandwidth-friendly row order and un-permute the fixed
//!   point bit for bit;
//! * [`parallel`] — the same sweeps sharded across worker threads: the
//!   Jacobi round is row-parallel by construction, so degree-balanced
//!   contiguous row bands computed by a scoped worker pool produce results
//!   **bit-identical** to the sequential iteration at any thread count;
//! * [`pool`] — the persistent worker pool behind those sweeps: parked
//!   workers and epoch-stamped band work lists replace per-round thread
//!   spawning, worker panics surface as recoverable errors instead of
//!   taking the process down, and a supervisor replaces workers that die;
//! * [`faults`] — a seeded, deterministic fault plane: once-firing
//!   injectable faults (kill a worker, stall a band, fail an epoch, crash
//!   at an event offset, tamper with a WAL tail) consulted by the pool and
//!   by the scenario layer's chaos harness;
//! * [`oracle`] — an exhaustive all-simple-paths optimum used to cross-check
//!   fixed points: for distributive algebras the fixed point must equal the
//!   global path optimum (the classical theory), while policy-rich algebras
//!   are only locally optimal — both facts are exercised by the tests and
//!   the Table 2 experiment.
//!
//! The adjacency is stored row-compressed (`O(n + |E|)`), and one σ round
//! costs `O(n · |E|)` — sparse, not `O(n³)` — which is what lets the sweep
//! engine in `dbf-scenario` iterate 10⁴-node fabrics to their fixed point.
//!
//! Iterating a routing problem to its fixed point:
//!
//! ```
//! use dbf_algebra::prelude::*;
//! use dbf_matrix::prelude::*;
//! use dbf_topology::generators;
//!
//! // Shortest paths on a 6-node ring with unit edge weights.
//! let alg = ShortestPaths::new();
//! let topo = generators::ring(6).with_weights(|_, _| NatInf::fin(1));
//! let adj = AdjacencyMatrix::from_topology(&topo);
//!
//! let start = RoutingState::identity(&alg, 6);
//! let out = iterate_to_fixed_point(&alg, &adj, &start, 100);
//! assert!(out.converged);
//! assert!(is_stable(&alg, &adj, &out.state));
//! // Ring distance: the long way round is never chosen.
//! assert_eq!(out.state.get(0, 3), &NatInf::fin(3));
//! assert_eq!(out.state.get(0, 5), &NatInf::fin(1));
//! ```

// `deny` rather than `forbid`: the pool module contains one audited
// lifetime-erasure transmute (see `pool::PoolScope::execute`) behind a
// local `allow`; everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod blocked;
pub mod faults;
pub mod frontier;
pub mod incremental;
pub mod oracle;
pub mod parallel;
pub mod permute;
pub mod pool;
pub mod sigma;
pub mod state;
pub mod sync;

pub use adjacency::AdjacencyMatrix;
pub use blocked::{blocked_fixed_point, BlockedOutcome};
pub use faults::{Fault, FaultKind, FaultPlan};
pub use frontier::Frontier;
pub use incremental::{
    dirty_rows_after_change, iterate_dirty_to_fixed_point, iterate_dirty_traced,
    par_iterate_dirty_to_fixed_point, par_iterate_dirty_traced, par_iterate_dirty_traced_on,
    IncrementalOutcome,
};
pub use parallel::{
    par_iterate_to_fixed_point, par_iterate_traced, par_sigma_into, ParallelAlgebra,
};
pub use permute::{NodePermutation, RowOrder};
pub use pool::{PoolScope, PoolStats, WorkerPool};
pub use sigma::{sigma, sigma_entry, sigma_into, sigma_row_into, sigma_row_into_changed};
pub use state::RoutingState;
pub use sync::{is_stable, iterate_to_fixed_point, iterate_traced, iteration_budget, SyncOutcome};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::adjacency::{lift_topology, AdjacencyMatrix};
    pub use crate::blocked::{blocked_fixed_point, BlockedOutcome};
    pub use crate::faults::{Fault, FaultKind, FaultPlan};
    pub use crate::frontier::Frontier;
    pub use crate::incremental::{
        dirty_rows_after_change, iterate_dirty_to_fixed_point, iterate_dirty_traced,
        par_iterate_dirty_to_fixed_point, par_iterate_dirty_traced, par_iterate_dirty_traced_on,
        IncrementalOutcome,
    };
    pub use crate::oracle::exhaustive_path_optimum;
    pub use crate::parallel::{
        par_iterate_to_fixed_point, par_iterate_traced, par_sigma_into, ParallelAlgebra,
    };
    pub use crate::permute::{NodePermutation, RowOrder};
    pub use crate::pool::{PoolScope, PoolStats, WorkerPool};
    pub use crate::sigma::{
        sigma, sigma_entry, sigma_into, sigma_k, sigma_row_into, sigma_row_into_changed,
    };
    pub use crate::state::RoutingState;
    pub use crate::sync::{
        is_stable, iterate_to_fixed_point, iterate_traced, iteration_budget, SyncOutcome,
    };
}
