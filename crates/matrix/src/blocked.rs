//! Destination-blocked σ: fixed points at scales where the square routing
//! state no longer fits in memory.
//!
//! σ is column-separable — `σ(X)[i][j] = (⨁_k A_ik(X[k][j])) ⊕ I[i][j]`
//! touches only column `j` of `X` — so the fixed point over all `n`
//! destinations is the concatenation of independent fixed points over
//! destination *blocks*.  A block of `w` destinations iterates an `n × w`
//! slab (two buffers of `n·w` routes) instead of the square `n × n` state:
//! at `n = 10⁵`, where a single square buffer would be ~160 GB, a
//! 1024-wide slab is ~1.6 GB and the whole computation streams through
//! memory block by block.
//!
//! Each block runs the same frontier discipline as
//! [`crate::sync::iterate_traced`]: round 1 sweeps every row, later rounds
//! recompute only the dependants of rows that changed, the change test is
//! fused into the streaming write, and the needs/prev/flags triple keeps
//! the idle buffer refreshed without full-slab copies.  The per-block
//! trajectory is therefore exactly what the square iteration would produce
//! for those columns — blocking changes memory traffic, never results.
//!
//! Results are digested, not materialised: the [`BlockedOutcome`] carries
//! an FNV-1a digest of the per-destination column digests in destination
//! order, where column `j`'s digest is FNV-1a over `({i},{j})={route:?};`
//! for rows `i` in order.  Every column lives entirely inside one block,
//! so the combined digest is **invariant under the block width** — `--block`
//! is a pure memory-layout choice, like `--row-order` and `--threads`.

use crate::adjacency::AdjacencyMatrix;
use crate::sync::update_needs;
use dbf_algebra::RoutingAlgebra;

/// The outcome of a destination-blocked fixed-point computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedOutcome {
    /// FNV-1a digest of the per-column digests in destination order
    /// (see the module docs) — identical for every block width.
    pub digest: String,
    /// Destination blocks processed (`⌈n / block⌉`).
    pub blocks: usize,
    /// σ rounds summed across all blocks.
    pub rounds_total: u64,
    /// The worst single block's round count — the answer to "how many
    /// synchronous rounds does this fabric need?", since blocks of a
    /// converging algebra all see the same propagation depth.
    pub rounds_max: usize,
    /// Row recomputations summed across all blocks (each costs
    /// `O(deg(i) · w)` route operations).
    pub row_recomputations: u64,
    /// Whether **every** block reached its fixed point within the budget.
    pub converged: bool,
}

/// One row of the slab σ round, fused with the change test: recompute
/// `σ(cur)[i][j0..j0+w]` into `out` and report whether it differs from
/// `cur`'s row.  The diagonal override applies when `i` lies inside the
/// block's destination window.
fn slab_row_changed<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    cur: &[A::Route],
    w: usize,
    j0: usize,
    i: usize,
    out: &mut [A::Route],
) -> bool {
    let old = &cur[i * w..(i + 1) * w];
    let diag = (i >= j0 && i < j0 + w).then(|| i - j0);
    let mut changed = false;
    match adj.row(i).split_last() {
        None => {
            for (jl, (d, o)) in out.iter_mut().zip(old.iter()).enumerate() {
                let v = if diag == Some(jl) {
                    alg.trivial()
                } else {
                    alg.invalid()
                };
                changed |= v != *o;
                *d = v;
            }
        }
        Some(((last_k, last_f), rest)) => {
            for r in out.iter_mut() {
                *r = alg.invalid();
            }
            for (k, f) in rest {
                let src = &cur[k * w..(k + 1) * w];
                for (d, s) in out.iter_mut().zip(src.iter()) {
                    let candidate = alg.extend(f, s);
                    *d = alg.choice(d, &candidate);
                }
            }
            // The adjacency row never contains `i` itself, so reading
            // `cur[last_k]` while writing row `i` cannot alias.
            let src = &cur[last_k * w..(last_k + 1) * w];
            for (jl, ((d, s), o)) in out.iter_mut().zip(src.iter()).zip(old.iter()).enumerate() {
                let v = if diag == Some(jl) {
                    alg.trivial()
                } else {
                    alg.choice(d, &alg.extend(last_f, s))
                };
                changed |= v != *o;
                *d = v;
            }
        }
    }
    changed
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_update(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Iterate σ to the fixed point over destination blocks of width `block`,
/// digesting each block's converged slab instead of keeping it.
///
/// `max_rounds` is the per-block round budget; a block that exhausts it
/// clears `converged` but the remaining blocks still run (the digest then
/// covers whatever states the budget left, exactly like a non-converged
/// square iteration).  Progress can be observed via `on_block`, called
/// after each block with `(block_index, rounds, row_recomputations)`.
///
/// # Panics
///
/// Panics if `block` is zero or the adjacency is empty.
pub fn blocked_fixed_point<A: RoutingAlgebra>(
    alg: &A,
    adj: &AdjacencyMatrix<A>,
    block: usize,
    max_rounds: usize,
    mut on_block: impl FnMut(usize, usize, u64),
) -> BlockedOutcome {
    let n = adj.node_count();
    assert!(block > 0, "block width must be positive");
    assert!(n > 0, "blocked iteration needs at least one node");
    let dependants = adj.dependants();
    let mut digest = FNV_OFFSET;
    let mut blocks = 0usize;
    let mut rounds_total = 0u64;
    let mut rounds_max = 0usize;
    let mut work = 0u64;
    let mut converged = true;

    let mut cur: Vec<A::Route> = Vec::new();
    let mut next: Vec<A::Route> = Vec::new();
    let mut needs = vec![true; n];
    let mut prev = vec![true; n];
    let mut flags = vec![false; n];

    let mut j0 = 0usize;
    while j0 < n {
        let w = block.min(n - j0);
        // The identity slab: ∞̄ everywhere, 0̄ where the row owns one of the
        // block's destinations.  Buffers are reused across blocks; they
        // only reallocate when the final ragged block shrinks `w`.
        cur.clear();
        cur.resize(n * w, alg.invalid());
        for i in j0..j0 + w {
            cur[i * w + (i - j0)] = alg.trivial();
        }
        next.clear();
        next.resize(n * w, alg.invalid());
        needs.fill(true);
        prev.fill(true);

        let mut block_rounds = max_rounds;
        let mut block_converged = false;
        let mut block_work = 0u64;
        for round in 0..=max_rounds {
            let mut changed = 0u64;
            for ((i, slot), flag) in next.chunks_mut(w).enumerate().zip(flags.iter_mut()) {
                *flag = if needs[i] {
                    block_work += 1;
                    slab_row_changed(alg, adj, &cur, w, j0, i, slot)
                } else {
                    if prev[i] {
                        let src = &cur[i * w..(i + 1) * w];
                        slot.clone_from_slice(src);
                    }
                    false
                };
                if *flag {
                    changed += 1;
                }
            }
            if changed == 0 {
                block_rounds = round;
                block_converged = true;
                break;
            }
            update_needs(&dependants, &flags, &mut needs);
            std::mem::swap(&mut prev, &mut flags);
            std::mem::swap(&mut cur, &mut next);
        }

        // Digest column by column: each destination's column is complete
        // inside this block, so hashing columns independently and folding
        // them in destination order makes the digest block-width-invariant.
        let mut cols = vec![FNV_OFFSET; w];
        for (i, row) in cur.chunks(w).enumerate() {
            for (jl, r) in row.iter().enumerate() {
                let j = j0 + jl;
                fnv_update(&mut cols[jl], format!("({i},{j})={r:?};").as_bytes());
            }
        }
        for h in &cols {
            fnv_update(&mut digest, format!("{h:016x}").as_bytes());
        }
        blocks += 1;
        rounds_total += block_rounds as u64;
        rounds_max = rounds_max.max(block_rounds);
        work += block_work;
        converged &= block_converged;
        on_block(blocks - 1, block_rounds, block_work);
        j0 += w;
    }

    BlockedOutcome {
        digest: format!("{digest:016x}"),
        blocks,
        rounds_total,
        rounds_max,
        row_recomputations: work,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RoutingState;
    use crate::sync::iterate_to_fixed_point;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn ring_adj(n: usize) -> (BoundedHopCount, AdjacencyMatrix<BoundedHopCount>) {
        let topo = generators::ring(n).with_weights(|_, _| 1u64);
        (
            BoundedHopCount::new(16),
            AdjacencyMatrix::from_topology(&topo),
        )
    }

    /// The square-state digest in the blocked convention (folded
    /// per-column digests), for cross-checking.
    fn square_digest<A: RoutingAlgebra>(state: &RoutingState<A>) -> String {
        let n = state.node_count();
        let mut h = FNV_OFFSET;
        for j in 0..n {
            let mut col = FNV_OFFSET;
            for i in 0..n {
                let r = state.get(i, j);
                fnv_update(&mut col, format!("({i},{j})={r:?};").as_bytes());
            }
            fnv_update(&mut h, format!("{col:016x}").as_bytes());
        }
        format!("{h:016x}")
    }

    #[test]
    fn blocked_matches_the_square_fixed_point_at_every_block_width() {
        let n = 17;
        let (alg, adj) = ring_adj(n);
        let square = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
        assert!(square.converged);
        for block in [1usize, 4, 7, 16, 17, 64] {
            let out = blocked_fixed_point(&alg, &adj, block, 200, |_, _, _| {});
            assert!(out.converged, "block={block}");
            assert_eq!(out.blocks, n.div_ceil(block));
            assert_eq!(
                out.digest,
                square_digest(&square.state),
                "block={block}: blocked and square fixed points differ \
                 (the digest must also be block-width-invariant)"
            );
            // Every block sees the ring's full propagation depth, so the
            // worst block takes exactly as many rounds as the square run.
            assert_eq!(out.rounds_max, square.iterations, "block={block}");
        }
    }

    #[test]
    fn blocked_shortest_paths_agree_too() {
        let n = 12;
        let topo = generators::as_graph(n, 2, 3)
            .with_weights(|i, j| NatInf::fin(((i * 7 + j * 3) % 11 + 1) as u64));
        let alg = ShortestPaths::new();
        let adj = AdjacencyMatrix::from_topology(&topo);
        let square = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
        assert!(square.converged);
        let out = blocked_fixed_point(&alg, &adj, 5, 200, |_, _, _| {});
        assert!(out.converged);
        assert_eq!(out.digest, square_digest(&square.state));
    }

    #[test]
    fn a_block_that_exhausts_its_budget_reports_non_convergence() {
        let (alg, adj) = ring_adj(9);
        let out = blocked_fixed_point(&alg, &adj, 4, 1, |_, _, _| {});
        assert!(!out.converged);
        assert_eq!(out.blocks, 3);
    }
}
