//! A seeded, deterministic fault plane for chaos-testing the parallel
//! kernels and the route server built on them.
//!
//! The paper's asynchronous model (Section 3, axioms S1–S3) already prices
//! in an adversarial environment — messages may be lost, duplicated,
//! reordered, or stale — and the dynamic extension (arXiv 2012.01686) lets
//! participants fail and rejoin mid-iteration.  A [`FaultPlan`] is the
//! executable form of that adversary: a fixed schedule of injectable
//! faults that the worker pool ([`crate::pool`]) and the scenario layer's
//! route server consult at well-defined hook points.  Because the schedule
//! is data (not randomness sampled at injection time), a chaos run is
//! exactly reproducible: the same plan against the same trace produces the
//! same deaths, the same retries, and — the whole point — the same final
//! digests as an unfaulted run.
//!
//! Every fault is **once-firing**: its trigger latches atomically the
//! first time its site matches, so a recovered run sharing the plan does
//! not re-crash in a loop, and counters derived from the plan (deaths,
//! restarts, retries) are deterministic.
//!
//! The matrix crate owns only the in-memory representation and the pool
//! hook points; parsing plans from TOML and the serve-level hooks (crash
//! at event offset, WAL tampering, flush delays) live in `dbf-scenario`.

use std::sync::atomic::{AtomicBool, Ordering};

/// What a single scheduled fault does when it fires.  The `at` trigger on
/// the owning [`Fault`] is interpreted per kind: a pool **epoch index**
/// (relative to when the plan was armed) for the worker faults, an
/// **event offset** for `CrashAtEvent`, a **flush index** for
/// `DelayFlush`, and unused for the WAL-tampering kinds (they apply to
/// whatever WAL tail exists at crash time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill worker thread `worker` when it next handles a job of an epoch
    /// at or past the trigger.  The worker exits; the in-flight job is
    /// requeued so the epoch still drains, and the pool supervisor
    /// replaces the thread.
    KillWorker {
        /// Index of the worker thread to kill.
        worker: usize,
    },
    /// Sleep `millis` before running one band job of the triggering
    /// epoch, simulating a straggler band.
    StallBand {
        /// How long the band stalls, in milliseconds.
        millis: u64,
    },
    /// Panic one job of the triggering epoch instead of running it,
    /// forcing the epoch to drain with an error so retry paths are
    /// exercised.
    FailEpoch,
    /// Simulate a process crash immediately before applying the trace
    /// event at the trigger offset.  The serve layer drops all in-memory
    /// state and reports a structured crash.
    CrashAtEvent,
    /// After a crash, truncate `bytes` bytes off the WAL tail before
    /// recovery — simulating a torn final write.
    TruncateWal {
        /// Number of trailing bytes to remove.
        bytes: u64,
    },
    /// After a crash, flip one byte at `byte` (counted from just after
    /// the WAL header) before recovery — recovery must detect the bad
    /// checksum and fail cleanly.
    CorruptWal {
        /// Byte position, counted from just after the WAL header line.
        byte: u64,
    },
    /// Sleep `millis` at the start of the triggering flush, simulating a
    /// slow reconvergence that the deadline machinery must absorb.
    DelayFlush {
        /// How long the flush is delayed, in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// Short stable name, used by telemetry events and plan files.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KillWorker { .. } => "kill_worker",
            FaultKind::StallBand { .. } => "stall_band",
            FaultKind::FailEpoch => "fail_epoch",
            FaultKind::CrashAtEvent => "crash",
            FaultKind::TruncateWal { .. } => "truncate_wal",
            FaultKind::CorruptWal { .. } => "corrupt_wal",
            FaultKind::DelayFlush { .. } => "delay_flush",
        }
    }
}

/// One scheduled fault: a kind, a trigger point, and a once-firing latch.
#[derive(Debug)]
pub struct Fault {
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// The trigger point; see [`FaultKind`] for per-kind interpretation.
    pub at: u64,
    fired: AtomicBool,
}

impl Fault {
    fn new(kind: FaultKind, at: u64) -> Fault {
        Fault {
            kind,
            at,
            fired: AtomicBool::new(false),
        }
    }

    /// Latch the fault if `site` has reached its trigger and it has not
    /// fired yet.  Returns `true` exactly once per fault.
    fn fire_at(&self, site: u64) -> bool {
        site >= self.at && !self.fired.swap(true, Ordering::SeqCst)
    }

    /// Has this fault fired?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A deterministic schedule of faults, shared (`Arc`) between the layers
/// that consult it.  The `seed` is carried for provenance in reports; the
/// schedule itself is explicit, not sampled.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan with a provenance seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// The provenance seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Append a fault triggered at `at` (builder style).
    pub fn with(mut self, kind: FaultKind, at: u64) -> FaultPlan {
        self.push(kind, at);
        self
    }

    /// Append a fault triggered at `at`.
    pub fn push(&mut self, kind: FaultKind, at: u64) {
        self.faults.push(Fault::new(kind, at));
    }

    /// The scheduled faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// How many faults have fired so far.
    pub fn fired_count(&self) -> usize {
        self.faults.iter().filter(|f| f.fired()).count()
    }

    /// Pool hook: should worker `worker` die while handling epoch
    /// `epoch`?  Fires (once) the first matching kill fault.
    pub fn kill_worker(&self, epoch: u64, worker: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::KillWorker { worker: w } if w == worker) && f.fire_at(epoch)
        })
    }

    /// Pool hook: stall duration for one band job of `epoch`, if a stall
    /// fault fires here.
    pub fn stall_band(&self, epoch: u64) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::StallBand { millis } if f.fire_at(epoch) => Some(millis),
            _ => None,
        })
    }

    /// Pool hook: should one job of `epoch` panic instead of running?
    pub fn fail_epoch(&self, epoch: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.kind == FaultKind::FailEpoch && f.fire_at(epoch))
    }

    /// Serve hook: simulate a process crash before applying the event at
    /// `offset`?
    pub fn crash_at_event(&self, offset: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.kind == FaultKind::CrashAtEvent && f.fire_at(offset))
    }

    /// Serve hook: delay (ms) for flush number `flush`, if scheduled.
    pub fn flush_delay(&self, flush: u64) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::DelayFlush { millis } if f.fire_at(flush) => Some(millis),
            _ => None,
        })
    }

    /// Chaos-harness hook: the WAL tampering to apply after a crash, if
    /// any (`TruncateWal` / `CorruptWal`).  Not latched here — the
    /// harness applies it exactly once between crash and recovery.
    pub fn wal_tamper(&self) -> Option<FaultKind> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::TruncateWal { .. } | FaultKind::CorruptWal { .. } => Some(f.kind),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once_at_or_past_their_trigger() {
        let plan = FaultPlan::new(7).with(FaultKind::FailEpoch, 3);
        assert!(!plan.fail_epoch(0));
        assert!(!plan.fail_epoch(2));
        assert!(plan.fail_epoch(5), "fires on the first site >= trigger");
        assert!(!plan.fail_epoch(5), "latched after firing");
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn kill_worker_only_matches_its_victim() {
        let plan = FaultPlan::new(1).with(FaultKind::KillWorker { worker: 1 }, 0);
        assert!(!plan.kill_worker(0, 0), "worker 0 is not the victim");
        assert!(plan.kill_worker(0, 1));
        assert!(!plan.kill_worker(9, 1), "once only");
    }

    #[test]
    fn crash_and_tamper_hooks_are_independent() {
        let plan = FaultPlan::new(2)
            .with(FaultKind::CrashAtEvent, 10)
            .with(FaultKind::TruncateWal { bytes: 16 }, 0);
        assert!(!plan.crash_at_event(9));
        assert!(plan.crash_at_event(10));
        assert_eq!(
            plan.wal_tamper(),
            Some(FaultKind::TruncateWal { bytes: 16 }),
            "tamper is not latched by the crash"
        );
    }
}
