//! Cache-conscious row orderings: relabel nodes so that rows that feed
//! each other land adjacent in the row-major state buffer.
//!
//! σ is *equivariant* under node relabeling: for any permutation `P`,
//! `σ_{PAP⁻¹}(PXP⁻¹) = P σ_A(X) P⁻¹` — relabeling the adjacency and the
//! state, iterating, and relabeling back yields exactly the state the
//! un-relabeled iteration produces, entry for entry.  (The ⊕-fold over a
//! row's import neighbours is order-independent because ⊕ is associative,
//! commutative and selective — Definition 1 of the paper — and route
//! *values* are untouched: a path-vector route's node annotations still
//! name the original ids.)  The engines therefore apply a permutation at
//! setup, iterate in the permuted space, and invert it before digesting,
//! and the digests are bit-identical with the permutation on or off.
//!
//! Why bother: the band planner hands each worker a *contiguous* row
//! range, and a σ round streams each row's import neighbours' tables.  In
//! generator order, a leaf-spine or power-law fabric scatters the hub rows
//! across the buffer, so every band's working set includes the hubs plus
//! its own span.  [`NodePermutation::degree_sorted`] packs the hubs
//! together; [`NodePermutation::reverse_cuthill_mckee`] additionally packs
//! each row near its neighbours (the classic bandwidth-reduction
//! ordering), so a band's reads mostly fall inside (or near) the slice it
//! already owns.

use crate::adjacency::AdjacencyMatrix;
use dbf_algebra::RoutingAlgebra;

/// The row-ordering strategies the engines accept (`--row-order` on the
/// CLI).  [`RowOrder::None`] is the identity (generator order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowOrder {
    /// Keep the generator's node order (no permutation work at all).
    #[default]
    None,
    /// Descending import-degree order: hub rows first, packed together.
    Degree,
    /// Reverse Cuthill–McKee over the undirected link structure: neighbours
    /// land near each other (bandwidth reduction).
    Rcm,
}

impl RowOrder {
    /// All orderings, in CLI listing order.
    pub fn all() -> [RowOrder; 3] {
        [RowOrder::None, RowOrder::Degree, RowOrder::Rcm]
    }

    /// The CLI name (`none` / `degree` / `rcm`).
    pub fn name(self) -> &'static str {
        match self {
            RowOrder::None => "none",
            RowOrder::Degree => "degree",
            RowOrder::Rcm => "rcm",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<RowOrder> {
        match s {
            "none" => Some(RowOrder::None),
            "degree" => Some(RowOrder::Degree),
            "rcm" => Some(RowOrder::Rcm),
            _ => None,
        }
    }
}

impl std::fmt::Display for RowOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A node relabeling together with its inverse: `forward[old] = new`,
/// `inverse[new] = old`, `inverse ∘ forward = id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePermutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl NodePermutation {
    /// The identity permutation on `n` nodes.
    pub fn identity(n: usize) -> NodePermutation {
        let forward: Vec<usize> = (0..n).collect();
        NodePermutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Build from an explicit forward map (`forward[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a permutation of `0..forward.len()`.
    pub fn from_forward(forward: Vec<usize>) -> NodePermutation {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(new < n, "forward map value {new} out of range 0..{n}");
            assert_eq!(
                inverse[new],
                usize::MAX,
                "forward map is not injective at {new}"
            );
            inverse[new] = old;
        }
        NodePermutation { forward, inverse }
    }

    /// The permutation selected by `order` for this adjacency.
    pub fn for_order<A: RoutingAlgebra>(
        order: RowOrder,
        adj: &AdjacencyMatrix<A>,
    ) -> NodePermutation {
        match order {
            RowOrder::None => NodePermutation::identity(adj.node_count()),
            RowOrder::Degree => NodePermutation::degree_sorted(adj),
            RowOrder::Rcm => NodePermutation::reverse_cuthill_mckee(adj),
        }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Is this a permutation of the empty node set?
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The new label of old node `i`.
    pub fn forward(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// The old label of new node `i`.
    pub fn inverse(&self, i: usize) -> usize {
        self.inverse[i]
    }

    /// Is this the identity relabeling?  Engines skip the state copies
    /// entirely when it is.
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Relabel a per-node mask (e.g. a dirty mask computed in the original
    /// space): `out[forward[i]] = mask[i]`.
    pub fn permute_mask(&self, mask: &[bool]) -> Vec<bool> {
        assert_eq!(mask.len(), self.len(), "mask length must match");
        let mut out = vec![false; mask.len()];
        for (i, &m) in mask.iter().enumerate() {
            out[self.forward[i]] = m;
        }
        out
    }

    /// Descending import-degree order, ties broken by original id — hub
    /// rows (spines, transit ASes) land first and adjacent.
    pub fn degree_sorted<A: RoutingAlgebra>(adj: &AdjacencyMatrix<A>) -> NodePermutation {
        let n = adj.node_count();
        let mut by_degree: Vec<usize> = (0..n).collect();
        by_degree.sort_by_key(|&i| (std::cmp::Reverse(adj.row(i).len()), i));
        let mut forward = vec![0usize; n];
        for (new, &old) in by_degree.iter().enumerate() {
            forward[old] = new;
        }
        NodePermutation::from_forward(forward)
    }

    /// Reverse Cuthill–McKee over the undirected link structure (an edge in
    /// either direction connects two nodes).  Components are seeded at
    /// their minimum-degree node (ties by id), BFS visits neighbours in
    /// increasing-degree order, and the final order is reversed — all
    /// deterministic, so the permutation is a pure function of the
    /// adjacency.
    pub fn reverse_cuthill_mckee<A: RoutingAlgebra>(adj: &AdjacencyMatrix<A>) -> NodePermutation {
        let n = adj.node_count();
        // Undirected neighbour lists (deduplicated, sorted by id).
        let mut und: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, _) in adj.row(i) {
                und[i].push(*j);
                und[*j].push(i);
            }
        }
        for nbrs in &mut und {
            nbrs.sort_unstable();
            nbrs.dedup();
        }
        let degree: Vec<usize> = und.iter().map(Vec::len).collect();
        // Neighbour visit order: increasing degree, ties by id.
        for nbrs in &mut und {
            nbrs.sort_by_key(|&j| (degree[j], j));
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut seeds: Vec<usize> = (0..n).collect();
        seeds.sort_by_key(|&i| (degree[i], i));
        for &seed in &seeds {
            if visited[seed] {
                continue;
            }
            visited[seed] = true;
            let mut head = order.len();
            order.push(seed);
            while head < order.len() {
                let v = order[head];
                head += 1;
                for &w in &und[v] {
                    if !visited[w] {
                        visited[w] = true;
                        order.push(w);
                    }
                }
            }
        }
        order.reverse();
        let mut forward = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            forward[old] = new;
        }
        NodePermutation::from_forward(forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::RoutingState;
    use dbf_algebra::prelude::*;
    use dbf_topology::generators;

    fn fabric(spines: usize, leaves: usize) -> AdjacencyMatrix<WidestPaths> {
        let topo = generators::leaf_spine(spines, leaves)
            .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
        AdjacencyMatrix::from_topology(&topo)
    }

    #[test]
    fn forward_then_inverse_is_the_identity() {
        let adj = fabric(4, 20);
        for order in RowOrder::all() {
            let perm = NodePermutation::for_order(order, &adj);
            assert_eq!(perm.len(), adj.node_count());
            for i in 0..perm.len() {
                assert_eq!(perm.inverse(perm.forward(i)), i, "{order}: inv∘fwd at {i}");
                assert_eq!(perm.forward(perm.inverse(i)), i, "{order}: fwd∘inv at {i}");
            }
        }
    }

    #[test]
    fn degree_sort_packs_the_hubs_first() {
        let adj = fabric(4, 20);
        let perm = NodePermutation::degree_sorted(&adj);
        // The 4 spines import from every leaf; they must map to rows 0..4.
        let hub_positions: Vec<usize> = (0..4).map(|s| perm.forward(s)).collect();
        let mut sorted = hub_positions.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2, 3],
            "spines at the front: {hub_positions:?}"
        );
    }

    #[test]
    fn rcm_is_a_permutation_on_disconnected_graphs_too() {
        // Two disjoint rings: every node must appear exactly once.
        let mut topo = dbf_topology::Topology::<NatInf>::new(8);
        for k in 0..4usize {
            topo.set_edge(k, (k + 1) % 4, NatInf::fin(1));
            topo.set_edge((k + 1) % 4, k, NatInf::fin(1));
            topo.set_edge(4 + k, 4 + (k + 1) % 4, NatInf::fin(1));
            topo.set_edge(4 + (k + 1) % 4, 4 + k, NatInf::fin(1));
        }
        let adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::from_topology(&topo);
        let perm = NodePermutation::reverse_cuthill_mckee(&adj);
        let mut seen: Vec<usize> = (0..8).map(|i| perm.forward(i)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn permuted_state_round_trips_exactly() {
        let alg = WidestPaths::new();
        let adj = fabric(3, 9);
        let n = adj.node_count();
        let x = RoutingState::<WidestPaths>::from_fn(n, |i, j| NatInf::fin((i * 31 + j) as u64));
        for order in [RowOrder::Degree, RowOrder::Rcm] {
            let perm = NodePermutation::for_order(order, &adj);
            let permuted = x.permuted(&perm);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(permuted.get(perm.forward(i), perm.forward(j)), x.get(i, j));
                }
            }
            assert_eq!(permuted.unpermuted(&perm), x, "{order}: round trip");
        }
        let _ = alg;
    }

    #[test]
    fn sigma_is_equivariant_under_relabeling() {
        use crate::sigma::sigma;
        use crate::sync::iterate_to_fixed_point;
        let alg = WidestPaths::new();
        let adj = fabric(4, 17);
        let n = adj.node_count();
        let x = RoutingState::identity(&alg, n);
        for order in [RowOrder::Degree, RowOrder::Rcm] {
            let perm = NodePermutation::for_order(order, &adj);
            let padj = adj.permuted(&perm);
            assert_eq!(padj.node_count(), n);
            assert_eq!(padj.link_count(), adj.link_count());
            // One round commutes ...
            let one = sigma(&alg, &adj, &x);
            let pone = sigma(&alg, &padj, &x.permuted(&perm));
            assert_eq!(pone.unpermuted(&perm), one, "{order}: one σ round");
            // ... and so does the whole fixed-point iteration.
            let full = iterate_to_fixed_point(&alg, &adj, &x, 200);
            let pfull = iterate_to_fixed_point(&alg, &padj, &x.permuted(&perm), 200);
            assert!(full.converged && pfull.converged);
            assert_eq!(pfull.iterations, full.iterations, "{order}: same rounds");
            assert_eq!(pfull.state.unpermuted(&perm), full.state, "{order}");
        }
    }

    #[test]
    fn mask_permutation_relabels_positions() {
        let perm = NodePermutation::from_forward(vec![2, 0, 1]);
        let mask = perm.permute_mask(&[true, false, true]);
        assert_eq!(mask, vec![false, true, true]);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn non_permutations_are_rejected() {
        let _ = NodePermutation::from_forward(vec![0, 0, 1]);
    }
}
