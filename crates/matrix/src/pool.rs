//! A persistent worker pool for the parallel σ kernels: parked workers,
//! epoch-stamped band work lists.
//!
//! The first parallel σ implementation spawned a fresh set of scoped
//! threads *every round* (`crossbeam::thread::scope` inside `par_step`),
//! which costs two thread creations plus two joins per worker per round —
//! measurable once rounds are short, and fatal to the route-server goal of
//! sustaining 10⁵+ events against a warm routing table.  This module
//! replaces that with a pool that is created once and reused: workers park
//! on a condvar, the coordinator hands each σ round (or sweep batch, or
//! fuzz shard) to them as an **epoch** of jobs, and the scope call returns
//! when the epoch has drained.
//!
//! Determinism is unaffected by construction: the pool only decides *which
//! OS thread* runs a band, never *what* the band computes — band
//! partitioning stays a pure function of `(n, threads, degree profile)` in
//! [`crate::parallel`], and each job writes to a disjoint borrow.  The
//! existing determinism suites (parallel σ, sweep, fuzz) therefore prove
//! the pool bit-identical to the per-round-spawn implementation.
//!
//! ## Epochs
//!
//! Every [`WorkerPool::scoped`] call opens a new epoch.  Jobs are stamped
//! with their epoch before they enter the shared queue, and completion is
//! tracked per epoch, so concurrent scopes (two tests, or a sweep executor
//! fanning out whole runs while one run shards its own rows) never observe
//! each other's work.  While a scope waits for its epoch to drain, the
//! coordinating thread *steals back* queued jobs of its own epoch and runs
//! them inline — so a pool with fewer workers than requested bands (or
//! even zero workers) still completes every epoch, just with less overlap.
//!
//! ## Panics
//!
//! A panicking job does **not** take down the pool or the process: the
//! worker catches the payload, records it against the job's epoch, keeps
//! serving later epochs, and [`WorkerPool::scoped`] returns the payload as
//! `Err` — mirroring `crossbeam::thread::scope`'s contract.  The engine
//! layer above turns that into a reported engine error with a reproduction
//! command instead of an abort.
//!
//! ## Supervision and faults
//!
//! Workers can also *die* (today only by injection: a
//! [`FaultPlan`] armed via
//! [`WorkerPool::arm_faults`] can kill a worker mid-epoch).  A dying
//! worker first requeues its in-flight task so the epoch still drains —
//! the coordinator's steal-back loop guarantees progress even with every
//! worker dead — and records its index for the supervisor.
//! [`WorkerPool::supervise`] (called automatically at every epoch open)
//! joins dead workers and respawns replacements under the same index, so
//! the pool returns to full strength without caller involvement.  Deaths,
//! restarts, and epoch retries are counted in [`PoolStats`] and flow into
//! the route server's pool-health telemetry.  [`WorkerPool::scoped_retry`]
//! wraps `scoped` with bounded exponential backoff for transient (e.g.
//! injected) epoch failures.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::faults::FaultPlan;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One queued unit of work: the job itself plus the epoch it belongs to
/// and the completion state it reports into.
struct Task {
    epoch: u64,
    job: Job,
    scope: Arc<EpochState>,
}

#[derive(Default)]
struct EpochSync {
    pending: usize,
    panic: Option<PanicPayload>,
}

/// Per-epoch completion tracking: outstanding job count, the first panic
/// payload (if any), and the condvar the coordinator parks on.
struct EpochState {
    sync: Mutex<EpochSync>,
    done: Condvar,
}

struct PoolState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    worker_jobs: Vec<AtomicU64>,
    inline_jobs: AtomicU64,
    /// Fast-path guard so the per-task fault lookup costs one relaxed
    /// load when no plan is armed (the common case).
    faults_armed: AtomicBool,
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Epoch counter value when the current plan was armed; fault
    /// triggers are matched against epochs *relative* to this baseline,
    /// so plans are independent of how much the pool ran beforehand.
    fault_base: AtomicU64,
    /// Indices of workers that have exited and await respawn.
    dead: Mutex<Vec<usize>>,
    deaths: AtomicU64,
    restarts: AtomicU64,
    retries: AtomicU64,
}

impl Inner {
    /// The armed plan and the epoch's trigger site relative to the
    /// arming baseline, or `None` when no plan is armed.
    fn fault_site(&self, epoch: u64) -> Option<(Arc<FaultPlan>, u64)> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        let plan = self
            .faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()?;
        let base = self.fault_base.load(Ordering::Relaxed);
        Some((plan, epoch.saturating_sub(base)))
    }
}

/// A snapshot of the pool's lifetime counters, used by the route server's
/// pool-utilization telemetry and by the reuse tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of persistent worker threads (excluding coordinators).
    pub workers: usize,
    /// Number of epochs ([`WorkerPool::scoped`] calls) opened so far.
    pub epochs: u64,
    /// Total jobs submitted across all epochs.
    pub jobs: u64,
    /// Jobs executed by each worker thread, by worker index.
    pub worker_jobs: Vec<u64>,
    /// Jobs stolen back and executed inline by waiting coordinators.
    pub inline_jobs: u64,
    /// Worker threads that died (fault-injected kills).
    pub deaths: u64,
    /// Dead workers replaced by the supervisor.
    pub restarts: u64,
    /// Epoch retries after transient failures ([`WorkerPool::scoped_retry`]
    /// attempts plus retries reported via [`WorkerPool::note_retry`]).
    pub retries: u64,
}

impl PoolStats {
    /// Fraction of jobs executed by parked workers rather than inline by
    /// the coordinator — `1.0` means every band ran on a pool thread.
    pub fn worker_share(&self) -> f64 {
        if self.jobs == 0 {
            return 1.0;
        }
        let on_workers: u64 = self.worker_jobs.iter().sum();
        on_workers as f64 / self.jobs as f64
    }
}

/// A persistent pool of parked worker threads executing epoch-stamped job
/// lists; see the module docs for the design.
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    epochs: AtomicU64,
    jobs: AtomicU64,
}

fn spawn_worker(index: usize, inner: Arc<Inner>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dbf-pool-{index}"))
        .spawn(move || worker_loop(index, inner))
        .expect("spawning a pool worker thread")
}

fn worker_loop(index: usize, inner: Arc<Inner>) {
    loop {
        let task = {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(task) = st.queue.pop_front() {
                    break task;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work_ready.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        // Injected kill: hand the task back so the epoch still drains
        // (another worker or the stealing coordinator runs it), record
        // the death for the supervisor, and exit this thread.
        if let Some((plan, site)) = inner.fault_site(task.epoch) {
            if plan.kill_worker(site, index) {
                {
                    let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                    st.queue.push_front(task);
                }
                inner.work_ready.notify_one();
                inner
                    .dead
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(index);
                inner.deaths.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
        inner.worker_jobs[index].fetch_add(1, Ordering::Relaxed);
        run_task(task, &inner);
    }
}

/// Run one job, catching its panic and folding the outcome into its
/// epoch's completion state.  Used identically by workers and by
/// coordinators stealing their own epoch's jobs back.  Stall and
/// fail-epoch faults are injected here, so they hit whichever executor
/// picked the job up.
fn run_task(task: Task, inner: &Inner) {
    let mut inject_panic = false;
    if let Some((plan, site)) = inner.fault_site(task.epoch) {
        if let Some(millis) = plan.stall_band(site) {
            std::thread::sleep(Duration::from_millis(millis));
        }
        if plan.fail_epoch(site) {
            inject_panic = true;
        }
    }
    let outcome = if inject_panic {
        catch_unwind(|| panic!("injected fault: epoch failure"))
    } else {
        catch_unwind(AssertUnwindSafe(task.job))
    };
    let mut sync = task.scope.sync.lock().unwrap_or_else(|p| p.into_inner());
    if let Err(payload) = outcome {
        sync.panic.get_or_insert(payload);
    }
    sync.pending -= 1;
    if sync.pending == 0 {
        task.scope.done.notify_all();
    }
}

impl WorkerPool {
    /// Create a pool with `workers` persistent threads.  `workers = 0` is
    /// legal: every job is then executed inline by the waiting
    /// coordinator, which keeps single-threaded environments working.
    pub fn new(workers: usize) -> WorkerPool {
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            worker_jobs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            inline_jobs: AtomicU64::new(0),
            faults_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
            fault_base: AtomicU64::new(0),
            dead: Mutex::new(Vec::new()),
            deaths: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|index| Some(spawn_worker(index, Arc::clone(&inner))))
            .collect();
        WorkerPool {
            inner,
            handles: Mutex::new(handles),
            epochs: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    /// The process-wide shared pool, created on first use with one worker
    /// per available hardware thread beyond the coordinator (and at least
    /// one, so the cross-thread paths are exercised even on a single
    /// core).  All the `par_*` kernels and the scenario sweep/fuzz
    /// executors share this instance; requesting more bands than there
    /// are workers is fine — the surplus jobs queue and the coordinator
    /// helps drain them.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1)
                .max(1);
            WorkerPool::new(workers)
        })
    }

    /// Open an epoch: run `f` with a scope whose jobs may borrow from the
    /// enclosing stack, and return once every job submitted in the scope
    /// has completed.
    ///
    /// Mirrors the `crossbeam::thread::scope` contract: a panic in `f`
    /// itself resumes on the caller (after the epoch drains), while the
    /// first *job* panic is returned as `Err(payload)` — the pool and its
    /// workers survive either way.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> std::thread::Result<R>
    where
        'pool: 'scope,
        F: FnOnce(&PoolScope<'pool, 'scope>) -> R,
    {
        self.supervise();
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let scope = PoolScope {
            pool: self,
            epoch,
            state: Arc::new(EpochState {
                sync: Mutex::new(EpochSync::default()),
                done: Condvar::new(),
            }),
            _not_sync: PhantomData,
            _scope: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The epoch must drain before this frame returns — the jobs
        // borrow from it.  This holds on the panic path too.
        scope.wait_all();
        let job_panic = {
            let mut sync = scope.state.sync.lock().unwrap_or_else(|p| p.into_inner());
            sync.panic.take()
        };
        match result {
            // As in crossbeam, the scope closure's own panic takes
            // precedence over job panics.
            Err(payload) => resume_unwind(payload),
            Ok(value) => match job_panic {
                None => Ok(value),
                Some(payload) => Err(payload),
            },
        }
    }

    /// Retry `f` under [`WorkerPool::scoped`] up to `attempts` times with
    /// exponential backoff starting at `backoff_ms`, for transient epoch
    /// failures (a fault-injected panic, a killed worker's retried
    /// epoch).  Returns the first success or the last failure's payload.
    pub fn scoped_retry<'pool, 'scope, F, R>(
        &'pool self,
        attempts: u32,
        backoff_ms: u64,
        mut f: F,
    ) -> ScopedResult<R>
    where
        'pool: 'scope,
        F: FnMut(&PoolScope<'pool, 'scope>) -> R,
    {
        let attempts = attempts.max(1);
        let mut delay = backoff_ms;
        let mut attempt = 0;
        loop {
            match self.scoped(&mut f) {
                Ok(value) => return Ok(value),
                Err(payload) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(payload);
                    }
                    self.note_retry();
                    if delay > 0 {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    delay = (delay.max(1) * 2).min(100);
                }
            }
        }
    }

    /// Arm a fault plan: subsequent epochs are matched against the plan's
    /// triggers, with epoch indices counted from this call (so the same
    /// plan means the same thing regardless of pool history).
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *self.inner.faults.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
        self.inner
            .fault_base
            .store(self.epochs.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner.faults_armed.store(true, Ordering::SeqCst);
    }

    /// Disarm any armed fault plan.
    pub fn disarm_faults(&self) {
        self.inner.faults_armed.store(false, Ordering::SeqCst);
        *self.inner.faults.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Replace workers that died, keeping their indices (so per-worker
    /// job counters stay meaningful).  Called automatically at every
    /// epoch open; the fast path is one atomic comparison.  Returns how
    /// many workers were respawned by this call.
    pub fn supervise(&self) -> u64 {
        if self.inner.deaths.load(Ordering::SeqCst) == self.inner.restarts.load(Ordering::SeqCst) {
            return 0;
        }
        let dead: Vec<usize> = {
            let mut dead = self.inner.dead.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *dead)
        };
        let mut respawned = 0;
        let mut handles = self.handles.lock().unwrap_or_else(|p| p.into_inner());
        for index in dead {
            // The dead worker registered itself just before returning, so
            // this join is at most a brief wait for its final unwind.
            if let Some(handle) = handles[index].take() {
                let _ = handle.join();
            }
            handles[index] = Some(spawn_worker(index, Arc::clone(&self.inner)));
            self.inner.restarts.fetch_add(1, Ordering::SeqCst);
            respawned += 1;
        }
        respawned
    }

    /// Record an epoch retry performed by a caller that drives its own
    /// retry loop (the route server's flush retry) so pool-health
    /// telemetry sees it alongside [`WorkerPool::scoped_retry`]'s.
    pub fn note_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::SeqCst);
    }

    /// Lifetime counters (workers, epochs, job placement); cheap to call.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.inner.worker_jobs.len(),
            epochs: self.epochs.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            worker_jobs: self
                .inner
                .worker_jobs
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            inline_jobs: self.inner.inline_jobs.load(Ordering::Relaxed),
            deaths: self.inner.deaths.load(Ordering::SeqCst),
            restarts: self.inner.restarts.load(Ordering::SeqCst),
            retries: self.inner.retries.load(Ordering::SeqCst),
        }
    }
}

/// The result of a scoped epoch: `Err` carries the first job panic's
/// payload, as in `std::thread::Result`.
pub type ScopedResult<R> = std::thread::Result<R>;

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        let mut handles = self.handles.lock().unwrap_or_else(|p| p.into_inner());
        for handle in handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

/// The job-submission surface handed to the [`WorkerPool::scoped`]
/// closure.  Deliberately `!Send`/`!Sync`: jobs cannot capture the scope
/// and submit further jobs from worker threads, which is what makes the
/// coordinator's drain-then-park wait loop free of lost wakeups.
pub struct PoolScope<'pool, 'scope> {
    pool: &'pool WorkerPool,
    epoch: u64,
    state: Arc<EpochState>,
    _not_sync: PhantomData<*mut ()>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> PoolScope<'_, 'scope> {
    /// Submit one job to the epoch.  The job may borrow anything that
    /// outlives `'scope`; it runs on a parked worker, or inline on the
    /// coordinator while it waits for the epoch to drain.
    #[allow(unsafe_code)]
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the job's borrows live for 'scope, which outlives the
        // enclosing `scoped` call; `scoped` does not return (even when
        // the scope closure panics) until `wait_all` has observed
        // `pending == 0`, and `pending` is incremented below *before*
        // the job becomes visible to any worker.  The erased-lifetime box
        // therefore never outlives the data it borrows.
        let job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut sync = self.state.sync.lock().unwrap_or_else(|p| p.into_inner());
            sync.pending += 1;
        }
        self.pool.jobs.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self
                .pool
                .inner
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            st.queue.push_back(Task {
                epoch: self.epoch,
                job,
                scope: Arc::clone(&self.state),
            });
        }
        self.pool.inner.work_ready.notify_one();
    }

    /// Remove one of *this* epoch's still-queued jobs, if any.
    fn steal_own(&self) -> Option<Task> {
        let mut st = self
            .pool
            .inner
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let pos = st.queue.iter().position(|t| t.epoch == self.epoch)?;
        st.queue.remove(pos)
    }

    /// Block until the epoch has drained, stealing back own-epoch jobs
    /// and running them inline rather than idling.
    fn wait_all(&self) {
        while let Some(task) = self.steal_own() {
            self.pool.inner.inline_jobs.fetch_add(1, Ordering::Relaxed);
            run_task(task, &self.pool.inner);
        }
        // Everything still pending is running on a worker right now: the
        // queue holds none of our jobs (just drained), and no new ones
        // can appear because `execute` is only reachable from the scope
        // closure, which has returned, and jobs cannot capture the scope
        // (`PoolScope` is `!Sync`).  So a plain condvar wait suffices.
        let mut sync = self.state.sync.lock().unwrap_or_else(|p| p.into_inner());
        while sync.pending > 0 {
            sync = self
                .state
                .done
                .wait(sync)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn jobs_borrow_the_stack_and_all_complete() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let mut partials = [0u64; 4];
        pool.scoped(|scope| {
            for (k, slot) in partials.iter_mut().enumerate() {
                let chunk = &data[k * 25..(k + 1) * 25];
                scope.execute(move || *slot = chunk.iter().sum());
            }
        })
        .expect("no job panicked");
        assert_eq!(partials.iter().sum::<u64>(), (0..100).sum::<u64>());
    }

    #[test]
    fn the_pool_is_reused_across_epochs_without_respawning() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .expect("no job panicked");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2, "the worker set never changes");
        assert_eq!(stats.epochs, 50);
        assert_eq!(stats.jobs, 200);
        let placed: u64 = stats.worker_jobs.iter().sum::<u64>() + stats.inline_jobs;
        assert_eq!(placed, 200, "every job ran exactly once somewhere");
    }

    #[test]
    fn a_zero_worker_pool_completes_epochs_inline() {
        let pool = WorkerPool::new(0);
        let mut results = vec![0usize; 8];
        pool.scoped(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.execute(move || *slot = i * i);
            }
        })
        .expect("no job panicked");
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        let stats = pool.stats();
        assert_eq!(stats.inline_jobs, 8, "all jobs ran on the coordinator");
    }

    #[test]
    fn a_job_panic_surfaces_as_err_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let survivors = AtomicUsize::new(0);
        let outcome = pool.scoped(|scope| {
            for i in 0..6 {
                scope.execute(move || {
                    if i == 3 {
                        panic!("band 3 exploded");
                    }
                });
                scope.execute(|| {
                    survivors.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let payload = outcome.expect_err("the job panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-string payload");
        assert!(msg.contains("band 3 exploded"), "payload: {msg}");
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            6,
            "the remaining jobs of the epoch still ran"
        );
        // The next epoch works: no worker died with the panic.
        let mut x = 0u32;
        pool.scoped(|scope| scope.execute(|| x = 41))
            .expect("the pool survived the panic");
        assert_eq!(x + 1, 42);
        assert_eq!(pool.stats().workers, 2);
    }

    #[test]
    #[should_panic(expected = "the scope closure itself")]
    fn a_panic_in_the_scope_closure_resumes_after_the_epoch_drains() {
        let pool = WorkerPool::new(1);
        let _ = pool.scoped(|scope| {
            scope.execute(|| {});
            panic!("the scope closure itself");
        });
    }

    #[test]
    fn concurrent_scopes_do_not_observe_each_other() {
        let pool = Arc::new(WorkerPool::new(2));
        let totals: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|k| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut parts = [0u64; 3];
                        pool.scoped(|scope| {
                            for (b, slot) in parts.iter_mut().enumerate() {
                                scope.execute(move || *slot = k * 100 + b as u64);
                            }
                        })
                        .expect("no job panicked");
                        parts.iter().sum::<u64>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scope thread ok"))
                .collect()
        });
        assert_eq!(totals, vec![3, 303, 603, 903]);
    }

    #[test]
    fn worker_share_is_well_defined_without_jobs() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.stats().worker_share(), 1.0);
    }

    #[test]
    fn repeated_panics_drain_every_epoch_and_leave_the_pool_usable() {
        // The panic firewall must hold across many consecutive failing
        // epochs, not just one: each epoch drains fully (all non-panicking
        // jobs run), surfaces exactly one Err, and the next epoch starts
        // from a healthy pool.
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        for round in 0..20 {
            let outcome = pool.scoped(|scope| {
                for i in 0..5 {
                    scope.execute(move || {
                        if i == 2 {
                            panic!("round {round} band {i}");
                        }
                    });
                    scope.execute(|| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert!(outcome.is_err(), "round {round} must surface its panic");
        }
        assert_eq!(
            ran.load(Ordering::SeqCst),
            20 * 5,
            "every non-panicking job of every epoch still ran"
        );
        let mut x = 0u32;
        pool.scoped(|scope| scope.execute(|| x = 7))
            .expect("the pool is healthy after 20 panicking epochs");
        assert_eq!(x, 7);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.deaths, 0, "panics do not kill workers");
        assert_eq!(stats.restarts, 0);
    }

    #[test]
    fn concurrent_panicking_scopes_stay_isolated_and_the_shared_pool_survives() {
        // Several coordinators drive panicking epochs on one pool at once:
        // each scope sees only its own epoch's panic, every epoch drains,
        // and the pool serves a clean epoch afterwards.
        let pool = Arc::new(WorkerPool::new(3));
        let clean_jobs = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for k in 0..6usize {
                let pool = Arc::clone(&pool);
                let clean_jobs = Arc::clone(&clean_jobs);
                s.spawn(move || {
                    let outcome = pool.scoped(|scope| {
                        for b in 0..4usize {
                            scope.execute(move || {
                                if b == k % 4 {
                                    panic!("scope {k} band {b}");
                                }
                            });
                            scope.execute(|| {
                                clean_jobs.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                    let payload = outcome.expect_err("each scope sees its own panic");
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    assert!(
                        msg.contains(&format!("scope {k} ")),
                        "scope {k} got a foreign panic: {msg}"
                    );
                });
            }
        });
        assert_eq!(clean_jobs.load(Ordering::SeqCst), 6 * 4);
        let mut x = 0u32;
        pool.scoped(|scope| scope.execute(|| x = 1))
            .expect("the pool survived six concurrent panicking scopes");
        assert_eq!(x, 1);
        assert_eq!(pool.stats().deaths, 0);
    }

    #[test]
    fn a_killed_worker_is_replaced_and_counted_deterministically() {
        use crate::faults::{FaultKind, FaultPlan};
        let pool = WorkerPool::new(2);
        pool.arm_faults(Arc::new(
            FaultPlan::new(1).with(FaultKind::KillWorker { worker: 0 }, 0),
        ));
        // Run epochs until the kill lands (worker 0 must pick up a job);
        // plenty of jobs per epoch make that prompt.
        let counter = AtomicUsize::new(0);
        let mut submitted = 0usize;
        for _ in 0..200 {
            pool.scoped(|scope| {
                for _ in 0..8 {
                    scope.execute(|| {
                        // Brief work so both workers participate in the
                        // epoch and the victim reliably picks up a job.
                        std::thread::sleep(Duration::from_millis(1));
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .expect("a kill is not a job panic");
            submitted += 8;
            if pool.stats().deaths == 1 {
                break;
            }
        }
        assert_eq!(
            counter.load(Ordering::SeqCst),
            submitted,
            "the requeued in-flight job still ran exactly once"
        );
        assert_eq!(pool.stats().deaths, 1, "exactly one kill fault fired");
        // The supervisor (invoked at the next epoch open) replaces it.
        pool.scoped(|scope| {
            scope.execute(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        })
        .expect("the pool works while/after supervision");
        pool.supervise();
        let stats = pool.stats();
        assert_eq!(stats.restarts, 1, "the dead worker was respawned once");
        assert_eq!(stats.workers, 2, "the worker set is back to full strength");
        pool.disarm_faults();
    }

    #[test]
    fn scoped_retry_recovers_from_an_injected_epoch_failure() {
        use crate::faults::{FaultKind, FaultPlan};
        let pool = WorkerPool::new(1);
        let plan = Arc::new(FaultPlan::new(3).with(FaultKind::FailEpoch, 0));
        pool.arm_faults(Arc::clone(&plan));
        let done = AtomicUsize::new(0);
        let value = pool
            .scoped_retry(3, 0, |scope| {
                scope.execute(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
                42u32
            })
            .expect("the second attempt runs fault-free");
        assert_eq!(value, 42);
        assert_eq!(plan.fired_count(), 1, "the fault fired exactly once");
        assert_eq!(pool.stats().retries, 1, "one retry was recorded");
        assert!(done.load(Ordering::SeqCst) >= 1);
        pool.disarm_faults();
    }

    #[test]
    fn scoped_retry_gives_up_after_its_attempt_budget() {
        let pool = WorkerPool::new(1);
        let outcome = pool.scoped_retry(2, 0, |scope| {
            scope.execute(|| panic!("permanent failure"));
        });
        assert!(outcome.is_err(), "a persistent panic still surfaces");
        assert_eq!(pool.stats().retries, 1, "attempts - 1 retries");
    }
}
