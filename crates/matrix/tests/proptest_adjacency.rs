//! Property tests for the row-compressed sparse [`AdjacencyMatrix`]
//! against a naive dense model.
//!
//! The fuzzing subsystem's topology-change scripts hammer exactly this
//! surface — repeated add/remove of the same edge, clearing absent
//! entries, overwriting in place — so the sparse representation is checked
//! op-for-op against a `Vec<Vec<Option<_>>>` oracle.

use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use proptest::prelude::*;

const N: usize = 6;

/// One mutation: set `i → j` to `Some(w)` or clear it.
#[derive(Debug, Clone, Copy)]
struct Op {
    i: usize,
    j: usize,
    set: Option<u64>,
}

fn op() -> impl Strategy<Value = Op> {
    (0..N, 0..N, 0u64..12).prop_filter_map("diagonal", |(i, j, w)| {
        if i == j {
            return None;
        }
        Some(Op {
            i,
            j,
            // 0 encodes "clear"; anything else sets that weight.
            set: if w == 0 { None } else { Some(w) },
        })
    })
}

/// Apply an op sequence to both representations and compare every
/// observable: per-entry lookups, link count, row sortedness and the
/// imported-neighbour sets.
fn check_against_dense(ops: &[Op]) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut sparse: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(N);
    let mut dense: Vec<Vec<Option<NatInf>>> = vec![vec![None; N]; N];
    for op in ops {
        let value = op.set.map(NatInf::fin);
        sparse.set(op.i, op.j, value);
        dense[op.i][op.j] = value;

        for (i, dense_row) in dense.iter().enumerate() {
            for (j, expected) in dense_row.iter().enumerate() {
                prop_assert_eq!(
                    sparse.get(i, j).copied(),
                    *expected,
                    "entry ({}, {}) diverged after {:?}",
                    i,
                    j,
                    op
                );
            }
            let row = sparse.row(i);
            prop_assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "row {} must stay strictly sorted: {:?}",
                i,
                row.iter().map(|&(j, _)| j).collect::<Vec<_>>()
            );
            let dense_neighbors: Vec<usize> = dense_row
                .iter()
                .enumerate()
                .filter_map(|(j, e)| e.is_some().then_some(j))
                .collect();
            prop_assert_eq!(sparse.import_neighbors(i), dense_neighbors);
        }
        let dense_links = dense.iter().flatten().filter(|e| e.is_some()).count();
        prop_assert_eq!(sparse.link_count(), dense_links);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_adjacency_matches_the_dense_model(ops in proptest::collection::vec(op(), 0..60)) {
        check_against_dense(&ops)?;
    }

    #[test]
    fn repeated_add_remove_of_one_edge_round_trips(
        w1 in 1u64..9, w2 in 1u64..9, rounds in 1usize..8
    ) {
        // The fuzzer's flapping-link scripts: set, overwrite, clear, clear
        // again, restore — the entry and the row structure must round-trip
        // exactly.
        let mut adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(N);
        for _ in 0..rounds {
            adj.set(1, 3, Some(NatInf::fin(w1)));
            prop_assert_eq!(adj.get(1, 3), Some(&NatInf::fin(w1)));
            adj.set(1, 3, Some(NatInf::fin(w2))); // overwrite in place
            prop_assert_eq!(adj.get(1, 3), Some(&NatInf::fin(w2)));
            prop_assert_eq!(adj.link_count(), 1);
            adj.set(1, 3, None);
            adj.set(1, 3, None); // clearing an absent entry is a no-op
            prop_assert_eq!(adj.get(1, 3), None);
            prop_assert_eq!(adj.link_count(), 0);
        }
        prop_assert!(adj.row(1).is_empty());
    }

    #[test]
    fn sigma_is_insensitive_to_edge_insertion_order(keys in proptest::collection::vec(0u64..1000, 10)) {
        // Build the same ring adjacency twice, inserting edges in different
        // orders; σ must reach the same fixed point (the rows are sorted
        // canonically regardless of insertion order).
        let alg = ShortestPaths::new();
        let edges: Vec<(usize, usize, u64)> = (0..N)
            .flat_map(|i| [(i, (i + 1) % N, 1 + (i as u64 % 3)), ((i + 1) % N, i, 2)])
            .collect();
        let mut shuffled = edges.clone();
        // Deterministic shuffle driven by the generated keys.
        for (k, key) in keys.iter().enumerate() {
            let a = k % shuffled.len();
            let b = (*key as usize) % shuffled.len();
            shuffled.swap(a, b);
        }
        let build = |list: &[(usize, usize, u64)]| {
            let mut adj: AdjacencyMatrix<ShortestPaths> = AdjacencyMatrix::empty(N);
            for &(i, j, w) in list {
                adj.set(i, j, Some(NatInf::fin(w)));
            }
            adj
        };
        let a = build(&edges);
        let b = build(&shuffled);
        let fixed_a = iterate_to_fixed_point(&alg, &a, &RoutingState::identity(&alg, N), 100);
        let fixed_b = iterate_to_fixed_point(&alg, &b, &RoutingState::identity(&alg, N), 100);
        prop_assert!(fixed_a.converged && fixed_b.converged);
        prop_assert_eq!(fixed_a.state, fixed_b.state);
    }
}
