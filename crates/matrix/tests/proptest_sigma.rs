//! Property-based tests for the synchronous operator `σ` (Section 2.2–2.3).

use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use proptest::prelude::*;

const N: usize = 5;

fn nat_inf() -> impl Strategy<Value = NatInf> {
    prop_oneof![
        8 => (0u64..500).prop_map(NatInf::fin),
        1 => Just(NatInf::ZERO),
        1 => Just(NatInf::Inf),
    ]
}

/// An arbitrary routing state over ℕ∞ on N nodes.
fn state() -> impl Strategy<Value = Vec<NatInf>> {
    proptest::collection::vec(nat_inf(), N * N)
}

/// An arbitrary unit-or-more weighted adjacency on N nodes (dense bitmask
/// selects which directed links exist).
fn adjacency() -> impl Strategy<Value = (u32, Vec<u64>)> {
    (any::<u32>(), proptest::collection::vec(1u64..9, N * N))
}

fn build_adj(mask: u32, weights: &[u64]) -> AdjacencyMatrix<ShortestPaths> {
    AdjacencyMatrix::from_fn(N, |i, j| {
        let k = i * N + j;
        if i != j && (mask >> (k % 32)) & 1 == 1 {
            Some(NatInf::fin(weights[k]))
        } else {
            None
        }
    })
}

fn build_state(entries: &[NatInf]) -> RoutingState<ShortestPaths> {
    RoutingState::from_fn(N, |i, j| entries[i * N + j])
}

proptest! {
    /// Lemma 1: after one application of σ every diagonal entry is the
    /// trivial route, whatever the starting state and topology.
    #[test]
    fn lemma1_diagonal_is_trivial((mask, w) in adjacency(), entries in state()) {
        let alg = ShortestPaths::new();
        let adj = build_adj(mask, &w);
        let next = sigma(&alg, &adj, &build_state(&entries));
        for i in 0..N {
            prop_assert_eq!(next.get(i, i), &alg.trivial());
        }
    }

    /// σ's output never invents routes better than any neighbour can offer:
    /// every off-diagonal entry is either ∞̄ or the extension of some
    /// neighbour's entry.
    #[test]
    fn sigma_entries_are_justified((mask, w) in adjacency(), entries in state()) {
        let alg = ShortestPaths::new();
        let adj = build_adj(mask, &w);
        let x = build_state(&entries);
        let next = sigma(&alg, &adj, &x);
        for i in 0..N {
            for j in 0..N {
                if i == j {
                    continue;
                }
                let r = next.get(i, j);
                if alg.is_invalid(r) {
                    continue;
                }
                let justified = (0..N).any(|k| {
                    k != i && adj.get(i, k).is_some() && &adj.apply(&alg, i, k, x.get(k, j)) == r
                });
                prop_assert!(justified, "entry ({i},{j}) = {r:?} is not offered by any neighbour");
            }
        }
    }

    /// The fixed point reached from the clean state is genuinely stable and
    /// agrees with the δ run of the synchronous schedule.
    #[test]
    fn fixed_points_are_stable((mask, w) in adjacency()) {
        let alg = ShortestPaths::new();
        let adj = build_adj(mask, &w);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, N), 200);
        prop_assert!(out.converged);
        prop_assert!(is_stable(&alg, &adj, &out.state));
        prop_assert_eq!(sigma(&alg, &adj, &out.state), out.state);
    }

    /// σ_k composes: σ^{a+b}(X) = σ^a(σ^b(X)).
    #[test]
    fn sigma_k_composes((mask, w) in adjacency(), entries in state(), a in 0usize..4, b in 0usize..4) {
        let alg = ShortestPaths::new();
        let adj = build_adj(mask, &w);
        let x = build_state(&entries);
        let lhs = sigma_k(&alg, &adj, &x, a + b);
        let rhs = sigma_k(&alg, &adj, &sigma_k(&alg, &adj, &x, b), a);
        prop_assert_eq!(lhs, rhs);
    }

    /// For the strictly increasing bounded hop-count algebra the fixed point
    /// from *any* starting state equals the fixed point from the clean state
    /// (the synchronous shadow of Theorem 7's absolute convergence).
    #[test]
    fn hopcount_fixed_point_is_unique(entries in proptest::collection::vec(0u64..12, N * N), seed in 0u64..50) {
        let alg = BoundedHopCount::new(9);
        let shape = generators::connected_random(N, 0.45, seed);
        let adj = AdjacencyMatrix::<BoundedHopCount>::from_fn(N, |i, j| {
            if shape.has_edge(i, j) { Some(1u64) } else { None }
        });
        let clean = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, N), 300);
        prop_assert!(clean.converged);
        let garbage = RoutingState::<BoundedHopCount>::from_fn(N, |i, j| {
            if i == j {
                NatInf::fin(0)
            } else {
                let v = entries[i * N + j];
                if v >= 10 { NatInf::Inf } else { NatInf::fin(v) }
            }
        });
        let from_garbage = iterate_to_fixed_point(&alg, &adj, &garbage, 300);
        prop_assert!(from_garbage.converged);
        prop_assert_eq!(from_garbage.state, clean.state);
    }

    /// The frontier-driven fixed-point loop walks the **exact** naive σ
    /// trajectory: from any start state on any topology, its result equals
    /// `σ^k(x0)` at the iteration count it reports, every counted round
    /// really changed the state (no phantom or skipped rounds), and the
    /// sharded parallel loop agrees bit-for-bit.
    #[test]
    fn frontier_loop_matches_the_naive_sigma_trajectory((mask, w) in adjacency(), entries in state()) {
        let alg = ShortestPaths::new();
        let adj = build_adj(mask, &w);
        let x0 = build_state(&entries);
        let budget = 64;
        let out = iterate_to_fixed_point(&alg, &adj, &x0, budget);
        // Endpoint: the frontier loop lands exactly on σ^iterations(x0).
        prop_assert_eq!(&out.state, &sigma_k(&alg, &adj, &x0, out.iterations));
        if out.converged {
            prop_assert!(is_stable(&alg, &adj, &out.state));
            // Round count is tight: one σ fewer does not reach the fixed
            // point (unless x0 was already stable).
            if out.iterations > 0 {
                let prefix = sigma_k(&alg, &adj, &x0, out.iterations - 1);
                prop_assert!(
                    prefix != out.state || out.iterations == 1,
                    "a counted round changed nothing"
                );
            }
        }
        let par = par_iterate_to_fixed_point(&alg, &adj, &x0, budget, 3);
        prop_assert_eq!(par.state, out.state);
        prop_assert_eq!(par.iterations, out.iterations);
        prop_assert_eq!(par.converged, out.converged);
    }

    /// The exhaustive oracle is never worse than the σ fixed point (local
    /// optimality), and for the distributive shortest-paths algebra it is
    /// equal.
    #[test]
    fn oracle_bounds_the_fixed_point(seed in 0u64..40) {
        let alg = ShortestPaths::new();
        let topo = generators::connected_random(N, 0.5, seed)
            .with_weights(|i, j| NatInf::fin(((i * 3 + j + seed as usize) % 7 + 1) as u64));
        let adj = AdjacencyMatrix::from_topology(&topo);
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, N), 200);
        prop_assert!(out.converged);
        let oracle = exhaustive_path_optimum(&alg, &adj);
        prop_assert_eq!(&out.state, &oracle);
        for (i, j, r) in out.state.entries() {
            prop_assert!(alg.route_le(oracle.get(i, j), r));
        }
    }
}
