//! Property-based tests for the Section 7 policy language and the
//! Gao-Rexford algebra: whatever policy the generator produces, the safety
//! invariants hold — that is the "safe by design" claim stated as a
//! property.

use dbf_algebra::prelude::*;
use dbf_bgp::policy::{Condition, Policy};
use dbf_bgp::prelude::*;
use dbf_paths::path_algebra::PathAlgebra;
use dbf_paths::SimplePath;
use proptest::prelude::*;

const NODES: usize = 6;

fn community() -> impl Strategy<Value = u32> {
    0u32..6
}

fn condition() -> impl Strategy<Value = Condition> {
    let leaf = prop_oneof![
        community().prop_map(Condition::InComm),
        (0..NODES).prop_map(Condition::InPath),
        (0u32..40).prop_map(Condition::LprefEq),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Condition::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Condition::or(a, b)),
            inner.prop_map(Condition::not),
        ]
    })
}

fn policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        Just(Policy::Reject),
        (0u32..20).prop_map(Policy::IncrPrefBy),
        community().prop_map(Policy::AddComm),
        community().prop_map(Policy::DelComm),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.then(q)),
            (condition(), inner).prop_map(|(c, p)| Policy::when(c, p)),
        ]
    })
}

fn simple_path() -> impl Strategy<Value = SimplePath> {
    (
        proptest::collection::vec(0usize..1_000_000, NODES),
        0usize..=NODES,
    )
        .prop_map(|(keys, mut len)| {
            if len == 1 {
                len = 2;
            }
            let mut ids: Vec<usize> = (0..NODES).collect();
            ids.sort_by_key(|i| keys[*i]);
            ids.truncate(len);
            SimplePath::from_nodes(ids).expect("distinct prefix of a permutation")
        })
}

fn bgp_route() -> impl Strategy<Value = BgpRoute> {
    prop_oneof![
        1 => Just(BgpRoute::Invalid),
        8 => (0u32..40, proptest::collection::btree_set(community(), 0..4), simple_path())
            .prop_map(|(level, comms, path)| BgpRoute::valid(
                level,
                CommunitySet::from_iter(comms),
                path
            )),
    ]
}

proptest! {
    /// No expressible policy can make a route more preferred: levels never
    /// decrease, the invalid route is fixed, and rejection is the only other
    /// outcome.
    #[test]
    fn policies_never_improve_a_route(p in policy(), r in bgp_route()) {
        let out = p.apply(&r);
        match (&r, &out) {
            (BgpRoute::Invalid, out) => prop_assert_eq!(out, &BgpRoute::Invalid),
            (BgpRoute::Valid { level, path, .. }, BgpRoute::Valid { level: ol, path: op, .. }) => {
                prop_assert!(ol >= level, "policy {p:?} lowered the level");
                prop_assert_eq!(op, path, "policies must not edit the path");
            }
            (BgpRoute::Valid { .. }, BgpRoute::Invalid) => {} // filtered
        }
    }

    /// The full edge function is strictly increasing on every valid route,
    /// whatever the policy — Theorem 11's precondition as a property test.
    #[test]
    fn edges_are_strictly_increasing(
        p in policy(),
        r in bgp_route(),
        i in 0..NODES,
        j in 0..NODES,
    ) {
        prop_assume!(i != j);
        let alg = BgpAlgebra::new(NODES);
        let edge = alg.edge(i, j, p);
        let fr = alg.extend(&edge, &r);
        if !alg.is_invalid(&r) {
            prop_assert!(alg.route_lt(&r, &fr));
        } else {
            prop_assert!(alg.is_invalid(&fr));
        }
        // P1: validity and path validity coincide.
        prop_assert_eq!(alg.is_invalid(&fr), alg.path_of(&fr).is_invalid());
    }

    /// The decision procedure is a total selective order.
    #[test]
    fn decision_procedure_is_selective_and_commutative(a in bgp_route(), b in bgp_route(), c in bgp_route()) {
        let alg = BgpAlgebra::new(NODES);
        let ab = alg.choice(&a, &b);
        prop_assert!(ab == a || ab == b);
        prop_assert_eq!(alg.choice(&a, &b), alg.choice(&b, &a));
        prop_assert_eq!(
            alg.choice(&a, &alg.choice(&b, &c)),
            alg.choice(&alg.choice(&a, &b), &c)
        );
        prop_assert_eq!(alg.choice(&a, &alg.invalid()), a);
    }

    /// Conditions are pure: evaluating twice gives the same answer, and
    /// negation is an involution.
    #[test]
    fn conditions_are_pure(c in condition(), r in bgp_route()) {
        prop_assert_eq!(c.evaluate_route(&r), c.evaluate_route(&r));
        let not_not = Condition::not(Condition::not(c.clone()));
        prop_assert_eq!(not_not.evaluate_route(&r), c.evaluate_route(&r));
    }

    /// Gao-Rexford valley-freedom: whatever sequence of edges a route
    /// traverses, once it has gone through a peer or provider edge it can
    /// never be imported over a customer or peer edge again — and the class
    /// of a route never improves along the way.
    #[test]
    fn gao_rexford_routes_are_valley_free(
        hops in proptest::collection::vec((0..NODES, 0u8..3), 1..5)
    ) {
        let alg = GaoRexford::new(NODES);
        let mut r = alg.trivial();
        let mut seen_non_customer_import = false;
        for (importer, rel) in hops {
            let relationship = match rel {
                0 => Relationship::Customer,
                1 => Relationship::Peer,
                _ => Relationship::Provider,
            };
            let announcer = match &r {
                GrRoute::Invalid => break,
                GrRoute::Valid { path, .. } => path.source().unwrap_or(importer.wrapping_add(1) % NODES),
            };
            if importer == announcer {
                continue;
            }
            let prev_class = r.class();
            let next = alg.extend(&alg.edge(importer, announcer, relationship), &r);
            if let (Some(pc), Some(nc)) = (prev_class, next.class()) {
                prop_assert!(nc >= pc, "the class never improves");
            }
            if let GrRoute::Valid { class, .. } = &next {
                if seen_non_customer_import {
                    // once the route has crossed a peer/provider edge, it can
                    // only have been imported over provider edges since, so
                    // its class must be Provider
                    prop_assert_eq!(*class, RouteClass::Provider);
                }
                if *class != RouteClass::Customer {
                    seen_non_customer_import = true;
                }
            }
            r = next;
        }
    }
}
