//! Asynchronous convergence (and divergence) of the BGP-flavoured algebras.
//!
//! These tests tie the crate's algebras to the asynchronous machinery of
//! `dbf-async`:
//!
//! * the Section 7 safe-by-design algebra converges absolutely, whatever the
//!   policies, the starting state and the schedule (Theorem 11 in action);
//! * the Gao-Rexford algebra converges on provider/customer hierarchies;
//! * the DISAGREE gadget reaches *different* stable states under different
//!   schedules — the BGP wedgie the paper's absolute convergence rules out;
//! * the BAD GADGET never stabilises at all.

use dbf_algebra::algebra::SplitMix64;
use dbf_algebra::prelude::*;
use dbf_async::convergence::{
    check_absolute_convergence, schedule_ensemble, state_ensemble, ConvergenceFailure,
};
use dbf_async::prelude::*;
use dbf_bgp::algebra::random_policy;
use dbf_bgp::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;

/// A randomly policed network for the Section 7 algebra: every link of a
/// connected random graph gets a random (but by construction safe) policy.
fn random_policy_network(n: usize, seed: u64) -> (BgpAlgebra, AdjacencyMatrix<BgpAlgebra>) {
    let alg = BgpAlgebra::new(n);
    let shape = generators::connected_random(n, 0.4, seed);
    let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
    let topo = shape.with_weights(|_, _| random_policy(&mut rng, 2));
    let adj = alg.adjacency_from_topology(&topo);
    (alg, adj)
}

#[test]
fn section7_algebra_converges_absolutely_under_arbitrary_policies() {
    let (alg, adj) = random_policy_network(5, 11);
    let pool = alg.sample_routes(3, 32);
    let states = state_ensemble(&alg, 5, &pool, 3, 17);
    let schedules = schedule_ensemble(5, 260, 4, 23);
    let result = check_absolute_convergence(&alg, &adj, &states, &schedules)
        .expect("the safe-by-design algebra must converge absolutely");
    // ... and the unique fixed point is the synchronous one.
    let sync = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 5), 200);
    assert!(sync.converged);
    assert_eq!(result.fixed_point, sync.state);
}

#[test]
fn section7_algebra_survives_the_message_level_simulator() {
    let (alg, adj) = random_policy_network(6, 29);
    let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 6), 300);
    assert!(reference.converged);
    for seed in 0..4 {
        let out = EventSim::new(&alg, &adj, SimConfig::adversarial(seed)).run();
        assert!(!out.truncated, "seed {seed} exhausted its event budget");
        assert!(out.sigma_stable, "seed {seed} failed to stabilise");
        assert_eq!(out.final_state, reference.state, "seed {seed} diverged");
    }
}

#[test]
fn gao_rexford_hierarchies_converge() {
    let (topo, _tiers) = generators::tiered_hierarchy(&[2, 3, 6], 0.4, 0.25, 7);
    let n = topo.node_count();
    let alg = GaoRexford::new(n);
    let adj = alg.adjacency_from_hierarchy(&topo);
    let pool = alg.sample_routes(5, 32);
    let states = state_ensemble(&alg, n, &pool, 2, 3);
    let schedules = schedule_ensemble(n, 300, 2, 5);
    let result = check_absolute_convergence(&alg, &adj, &states, &schedules)
        .expect("Gao-Rexford policies are increasing, so they converge absolutely");
    // Every node that has any route to a destination holds a valley-free one:
    // once the route has left a customer edge (class Peer/Provider at some
    // holder) it can only keep going down — here we simply check the final
    // state is the synchronous fixed point and stable.
    let sync = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 300);
    assert_eq!(result.fixed_point, sync.state);
}

#[test]
fn disagree_is_a_wedgie_under_different_schedules() {
    let alg = SppAlgebra::disagree();
    let adj = alg.adjacency();
    let x0 = RoutingState::identity(&alg, 3);

    // Schedule A: node 2 sleeps for the first 10 steps, so node 1 commits to
    // its direct route first and node 2 then happily routes through it.
    let mut sched_a = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        sched_a.set_activation(t, 2, false);
    }
    // Schedule B: the mirror image.
    let mut sched_b = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        sched_b.set_activation(t, 1, false);
    }

    let out_a = run_delta(&alg, &adj, &x0, &sched_a);
    let out_b = run_delta(&alg, &adj, &x0, &sched_b);
    assert!(out_a.sigma_stable, "schedule A must stabilise");
    assert!(out_b.sigma_stable, "schedule B must stabilise");
    assert_ne!(
        out_a.final_state, out_b.final_state,
        "DISAGREE reaches different stable states depending on timing (a wedgie)"
    );
    // node 1 got its preferred route under A, node 2 under B
    assert_eq!(
        out_a.final_state.get(2, 0).simple_path().unwrap().nodes(),
        &[2, 1, 0]
    );
    assert_eq!(
        out_b.final_state.get(1, 0).simple_path().unwrap().nodes(),
        &[1, 2, 0]
    );

    // The ensemble checker reports exactly this as a failure of absolute
    // convergence.
    let err = check_absolute_convergence(&alg, &adj, &[x0], &[sched_a, sched_b]);
    match err {
        Err(ConvergenceFailure::MultipleFixedPoints { .. }) => {}
        other => panic!("expected a wedgie (multiple fixed points), got {other:?}"),
    }
}

#[test]
fn bad_gadget_never_stabilises() {
    let alg = SppAlgebra::bad_gadget();
    let adj = alg.adjacency();
    let x0 = RoutingState::identity(&alg, 4);
    for (label, sched) in [
        ("synchronous", Schedule::synchronous(4, 300)),
        ("round-robin", Schedule::round_robin(4, 300)),
        (
            "random",
            Schedule::random(4, 300, ScheduleParams::default(), 1),
        ),
    ] {
        let out = run_delta(&alg, &adj, &x0, &sched);
        assert!(
            !out.sigma_stable,
            "{label}: BAD GADGET must not reach a stable state"
        );
    }
}

#[test]
fn making_disagree_increasing_removes_the_wedgie() {
    // The constructive message of the paper: the wedgie disappears as soon
    // as the preferences respect the increasing condition.  Re-rank the
    // DISAGREE preferences so that each node prefers its direct route and
    // re-run exactly the same two schedules: both now reach the same state.
    use std::collections::BTreeMap;
    let mut prefs = BTreeMap::new();
    prefs.insert((1usize, vec![1usize, 0usize]), 0u32);
    prefs.insert((1, vec![1, 2, 0]), 1);
    prefs.insert((2, vec![2, 0]), 0);
    prefs.insert((2, vec![2, 1, 0]), 1);
    let alg = SppAlgebra::new(3, 0, prefs);
    let adj = alg.adjacency();
    let x0 = RoutingState::identity(&alg, 3);

    let mut sched_a = Schedule::synchronous(3, 60);
    let mut sched_b = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        sched_a.set_activation(t, 2, false);
        sched_b.set_activation(t, 1, false);
    }
    let result = check_absolute_convergence(&alg, &adj, &[x0], &[sched_a, sched_b])
        .expect("direct-route preferences are increasing, so the wedgie disappears");
    assert_eq!(
        result.fixed_point.get(1, 0).simple_path().unwrap().nodes(),
        &[1, 0]
    );
}
