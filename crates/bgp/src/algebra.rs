//! The Section 7 routing algebra: BGP-like routes, the decision procedure
//! and the edge functions `f_{i,j,pol}`.
//!
//! The decision procedure for `x ⊕ y` is the one given in the paper:
//!
//! 1. if either route is invalid, return the other;
//! 2. else if one level is strictly smaller, return that route;
//! 3. else if one path is strictly shorter, return that route;
//! 4. else break ties by a lexicographic comparison of paths.
//!
//! (We add a final tie-break on the community sets so that `⊕` is a total
//! selective operator even on routes that differ *only* in their communities
//! — communities never make one route preferable to another, but the
//! algebraic laws need a deterministic winner.)
//!
//! The edge function `f_{i,j,pol}` first checks that the announced route's
//! path can be extended by the edge `(i, j)` without looping, then applies
//! the configured [`Policy`].  Because the path always grows and no policy
//! can lower the level, the algebra is increasing — and therefore, by
//! Theorem 11, every configuration expressible in it converges absolutely:
//! it is impossible to write a policy that interferes with convergence.

use crate::policy::Policy;
use crate::route::{BgpRoute, CommunitySet};
use dbf_algebra::algebra::SplitMix64;
use dbf_algebra::{Increasing, RoutingAlgebra, SampleableAlgebra, StrictlyIncreasing};
use dbf_matrix::AdjacencyMatrix;
use dbf_paths::path_algebra::PathAlgebra;
use dbf_paths::{NodeId, Path, SimplePath};
use dbf_topology::Topology;
use std::cmp::Ordering;
use std::fmt;

/// An edge of the BGP-like algebra: the paper's `f_{i,j,pol}`.
#[derive(Clone, PartialEq, Eq)]
pub struct BgpEdge {
    /// The importing node `i`.
    pub importer: NodeId,
    /// The announcing neighbour `j`.
    pub announcer: NodeId,
    /// The import policy applied after the path extension.
    pub policy: Policy,
}

impl fmt::Debug for BgpEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f[{},{}]({:?})",
            self.importer, self.announcer, self.policy
        )
    }
}

/// The Section 7 safe-by-design routing algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpAlgebra {
    nodes: usize,
}

impl BgpAlgebra {
    /// Create the algebra for a network of `nodes` nodes (the count is used
    /// only for sampling).
    pub fn new(nodes: usize) -> Self {
        Self { nodes }
    }

    /// The configured node count.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Build an edge `f_{i,j,pol}`.
    pub fn edge(&self, importer: NodeId, announcer: NodeId, policy: Policy) -> BgpEdge {
        BgpEdge {
            importer,
            announcer,
            policy,
        }
    }

    /// Build the adjacency matrix of a network whose topology edges carry
    /// import policies: the topology edge `i → j` with policy `pol` becomes
    /// `A_ij = f_{i,j,pol}`.
    pub fn adjacency_from_topology(&self, topo: &Topology<Policy>) -> AdjacencyMatrix<BgpAlgebra> {
        AdjacencyMatrix::from_fn(topo.node_count(), |i, j| {
            topo.edge(i, j).map(|pol| self.edge(i, j, pol.clone()))
        })
    }

    fn cmp_valid(
        &self,
        al: u32,
        ap: &SimplePath,
        ac: &CommunitySet,
        bl: u32,
        bp: &SimplePath,
        bc: &CommunitySet,
    ) -> Ordering {
        al.cmp(&bl)
            .then_with(|| ap.len().cmp(&bp.len()))
            .then_with(|| ap.cmp(bp))
            .then_with(|| ac.cmp(bc))
    }
}

impl RoutingAlgebra for BgpAlgebra {
    type Route = BgpRoute;
    type Edge = BgpEdge;

    fn choice(&self, a: &BgpRoute, b: &BgpRoute) -> BgpRoute {
        match (a, b) {
            (BgpRoute::Invalid, _) => b.clone(),
            (_, BgpRoute::Invalid) => a.clone(),
            (
                BgpRoute::Valid {
                    level: al,
                    communities: ac,
                    path: ap,
                },
                BgpRoute::Valid {
                    level: bl,
                    communities: bc,
                    path: bp,
                },
            ) => {
                if self.cmp_valid(*al, ap, ac, *bl, bp, bc) == Ordering::Greater {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        }
    }

    fn extend(&self, f: &BgpEdge, r: &BgpRoute) -> BgpRoute {
        let (level, communities, path) = match r {
            BgpRoute::Invalid => return BgpRoute::Invalid,
            BgpRoute::Valid {
                level,
                communities,
                path,
            } => (*level, communities.clone(), path),
        };
        // Adjacency and loop filtering: (i, j) must be a valid extension of
        // the announced path.
        let extended = match path.try_extend(f.importer, f.announcer) {
            Ok(p) => p,
            Err(_) => return BgpRoute::Invalid,
        };
        // Policy application on the extended route (so conditions can see
        // the new path).
        f.policy.apply(&BgpRoute::Valid {
            level,
            communities,
            path: extended,
        })
    }

    fn trivial(&self) -> BgpRoute {
        BgpRoute::trivial()
    }

    fn invalid(&self) -> BgpRoute {
        BgpRoute::Invalid
    }
}

impl PathAlgebra for BgpAlgebra {
    fn path_of(&self, r: &BgpRoute) -> Path {
        match r {
            BgpRoute::Invalid => Path::Invalid,
            BgpRoute::Valid { path, .. } => Path::Simple(path.clone()),
        }
    }

    fn edge_endpoints(&self, f: &BgpEdge) -> (NodeId, NodeId) {
        (f.importer, f.announcer)
    }
}

// Paths always grow and levels never decrease, so the algebra is increasing;
// with the path-length tie-break the extension is in fact strictly worse,
// so it is strictly increasing too.
impl Increasing for BgpAlgebra {}
impl StrictlyIncreasing for BgpAlgebra {}

impl SampleableAlgebra for BgpAlgebra {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<BgpRoute> {
        let mut rng = SplitMix64::new(seed);
        let n = self.nodes.max(2);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            // random simple path
            let mut available: Vec<NodeId> = (0..n).collect();
            let len = (rng.next_below(n as u64) as usize).min(n - 1);
            let mut nodes = Vec::new();
            if len > 0 {
                for _ in 0..=len {
                    let idx = rng.next_below(available.len() as u64) as usize;
                    nodes.push(available.swap_remove(idx));
                }
            }
            let path = SimplePath::from_nodes(nodes).expect("distinct nodes");
            let mut communities = CommunitySet::empty();
            for c in 0..4u32 {
                if rng.next_bool(0.3) {
                    communities.insert(c);
                }
            }
            out.push(BgpRoute::Valid {
                level: rng.next_below(50) as u32,
                communities,
                path,
            });
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<BgpEdge> {
        let mut rng = SplitMix64::new(seed ^ 0xB69);
        let n = self.nodes.max(2) as u64;
        (0..count.max(1))
            .map(|_| {
                let importer = rng.next_below(n) as NodeId;
                let mut announcer = rng.next_below(n) as NodeId;
                if announcer == importer {
                    announcer = (announcer + 1) % n as NodeId;
                }
                self.edge(importer, announcer, random_policy(&mut rng, 2))
            })
            .collect()
    }
}

/// A random policy of bounded depth (used for sampling and for the
/// experiments' randomly configured networks).
pub fn random_policy(rng: &mut SplitMix64, depth: usize) -> Policy {
    use crate::policy::Condition;
    if depth == 0 {
        return match rng.next_below(4) {
            0 => Policy::IncrPrefBy(rng.next_below(10) as u32),
            1 => Policy::AddComm(rng.next_below(4) as u32),
            2 => Policy::DelComm(rng.next_below(4) as u32),
            _ => Policy::Reject,
        };
    }
    match rng.next_below(6) {
        0 => Policy::IncrPrefBy(rng.next_below(10) as u32),
        1 => Policy::AddComm(rng.next_below(4) as u32),
        2 => Policy::DelComm(rng.next_below(4) as u32),
        3 => Policy::Reject,
        4 => random_policy(rng, depth - 1).then(random_policy(rng, depth - 1)),
        _ => {
            let cond = match rng.next_below(3) {
                0 => Condition::InComm(rng.next_below(4) as u32),
                1 => Condition::InPath(rng.next_below(6) as usize),
                _ => Condition::not(Condition::InComm(rng.next_below(4) as u32)),
            };
            Policy::when(cond, random_policy(rng, depth - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Condition;
    use dbf_algebra::properties;
    use dbf_paths::path_algebra::{check_p1, check_p2, check_p3};

    fn alg() -> BgpAlgebra {
        BgpAlgebra::new(5)
    }

    #[test]
    fn decision_procedure_prefers_lower_level_then_shorter_path() {
        let a = alg();
        let low_level = BgpRoute::valid(
            1,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 2, 3, 4]).unwrap(),
        );
        let high_level = BgpRoute::valid(
            5,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 2]).unwrap(),
        );
        assert_eq!(a.choice(&low_level, &high_level), low_level);

        let short = BgpRoute::valid(
            3,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 4]).unwrap(),
        );
        let long = BgpRoute::valid(
            3,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 2, 4]).unwrap(),
        );
        assert_eq!(a.choice(&short, &long), short);

        let lex_a = BgpRoute::valid(
            3,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 2]).unwrap(),
        );
        let lex_b = BgpRoute::valid(
            3,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 4]).unwrap(),
        );
        assert_eq!(a.choice(&lex_a, &lex_b), lex_a);
        assert_eq!(a.choice(&lex_b, &lex_a), lex_a);

        assert_eq!(a.choice(&BgpRoute::Invalid, &short), short);
        assert_eq!(a.choice(&short, &BgpRoute::Invalid), short);
    }

    #[test]
    fn extension_extends_the_path_then_applies_policy() {
        let a = alg();
        let r1 = a.extend(&a.edge(1, 2, Policy::IncrPrefBy(7)), &a.trivial());
        match &r1 {
            BgpRoute::Valid { level, path, .. } => {
                assert_eq!(*level, 7);
                assert_eq!(path.nodes(), &[1, 2]);
            }
            BgpRoute::Invalid => panic!("extension of the trivial route must be valid"),
        }
        // conditions see the extended path
        let tag_if_via_2 = Policy::when(Condition::InPath(2), Policy::AddComm(99));
        let r0 = a.extend(&a.edge(0, 1, tag_if_via_2), &r1);
        assert!(r0.communities().unwrap().contains(99));
    }

    #[test]
    fn looping_and_discontiguous_extensions_are_filtered() {
        let a = alg();
        let r = BgpRoute::valid(
            0,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 2, 3]).unwrap(),
        );
        assert!(a.extend(&a.edge(2, 1, Policy::identity()), &r).is_invalid());
        assert!(a.extend(&a.edge(0, 3, Policy::identity()), &r).is_invalid());
        assert!(!a.extend(&a.edge(0, 1, Policy::identity()), &r).is_invalid());
        assert!(a.extend(&a.edge(0, 1, Policy::Reject), &r).is_invalid());
        assert!(a
            .extend(&a.edge(0, 1, Policy::identity()), &BgpRoute::Invalid)
            .is_invalid());
    }

    #[test]
    fn required_laws_hold_on_samples() {
        let a = alg();
        let routes = a.sample_routes(3, 48);
        let edges = a.sample_edges(3, 16);
        properties::check_required_laws(&a, &routes, &edges).unwrap();
    }

    #[test]
    fn the_algebra_is_strictly_increasing_and_not_distributive() {
        let a = alg();
        let routes = a.sample_routes(7, 48);
        let edges = a.sample_edges(7, 16);
        properties::check_increasing(&a, &edges, &routes).unwrap();
        properties::check_strictly_increasing(&a, &edges, &routes).unwrap();

        // A conditional community-based policy violates distributivity
        // (the Section 1 example expressed in this algebra).
        let f = a.edge(
            0,
            1,
            Policy::when(Condition::InComm(17), Policy::IncrPrefBy(100)),
        );
        let tagged = BgpRoute::valid(
            0,
            CommunitySet::from_iter([17]),
            SimplePath::from_nodes(vec![1, 2]).unwrap(),
        );
        let untagged = BgpRoute::valid(
            1,
            CommunitySet::empty(),
            SimplePath::from_nodes(vec![1, 3]).unwrap(),
        );
        let lhs = a.extend(&f, &a.choice(&tagged, &untagged));
        let rhs = a.choice(&a.extend(&f, &tagged), &a.extend(&f, &untagged));
        assert_ne!(lhs, rhs, "conditional policies are not distributive");
    }

    #[test]
    fn path_algebra_laws_hold() {
        let a = alg();
        let routes = a.sample_routes(11, 48);
        let edges = a.sample_edges(11, 16);
        check_p1(&a, &routes).unwrap();
        check_p2(&a, &routes).unwrap();
        check_p3(&a, &edges, &routes).unwrap();
    }

    #[test]
    fn adjacency_construction_from_a_policy_topology() {
        let a = BgpAlgebra::new(3);
        let mut topo: Topology<Policy> = Topology::new(3);
        topo.set_edge(0, 1, Policy::IncrPrefBy(1));
        topo.set_edge(1, 0, Policy::Reject);
        let adj = a.adjacency_from_topology(&topo);
        assert_eq!(adj.link_count(), 2);
        let e = adj.get(0, 1).unwrap();
        assert_eq!((e.importer, e.announcer), (0, 1));
        assert_eq!(e.policy, Policy::IncrPrefBy(1));
        assert!(adj.get(2, 0).is_none());
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = alg();
        assert_eq!(a.sample_routes(5, 20), a.sample_routes(5, 20));
        assert_eq!(a.sample_edges(5, 10), a.sample_edges(5, 10));
        assert_eq!(a.node_count(), 5);
    }
}
