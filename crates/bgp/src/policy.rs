//! The Section 7 policy language: conditions and policies.
//!
//! The language is deliberately small but expressive enough to write the
//! policies operators actually use — filtering, community tagging and
//! preference manipulation, guarded by conditions over the route's path,
//! communities and level.  Its key design property is that **no policy can
//! decrease a route's level**, so every expressible policy is increasing
//! and, by Theorem 11, every configuration written in it converges — the
//! language is *safe by design*.

use crate::route::{BgpRoute, Community, CommunitySet, Level};
use dbf_paths::NodeId;
use std::fmt;

/// A predicate over routes (the `Condition` data type of Section 7).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Both sub-conditions hold.
    And(Box<Condition>, Box<Condition>),
    /// At least one sub-condition holds.
    Or(Box<Condition>, Box<Condition>),
    /// The sub-condition does not hold.
    Not(Box<Condition>),
    /// The route's path visits the given node.
    InPath(NodeId),
    /// The route carries the given community.
    InComm(Community),
    /// The route's level equals the given value.
    LprefEq(Level),
}

impl Condition {
    /// `a ∧ b`.
    pub fn and(a: Condition, b: Condition) -> Condition {
        Condition::And(Box::new(a), Box::new(b))
    }

    /// `a ∨ b`.
    pub fn or(a: Condition, b: Condition) -> Condition {
        Condition::Or(Box::new(a), Box::new(b))
    }

    /// `¬a`.
    // An associated constructor of the condition DSL, deliberately named
    // after the connective; it takes the operand by value, unlike
    // `std::ops::Not::not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Condition) -> Condition {
        Condition::Not(Box::new(a))
    }

    /// Evaluate the condition on a valid route's attributes.
    pub fn evaluate(
        &self,
        level: Level,
        communities: &CommunitySet,
        path: &dbf_paths::SimplePath,
    ) -> bool {
        match self {
            Condition::And(a, b) => {
                a.evaluate(level, communities, path) && b.evaluate(level, communities, path)
            }
            Condition::Or(a, b) => {
                a.evaluate(level, communities, path) || b.evaluate(level, communities, path)
            }
            Condition::Not(a) => !a.evaluate(level, communities, path),
            Condition::InPath(node) => path.contains(*node),
            Condition::InComm(c) => communities.contains(*c),
            Condition::LprefEq(l) => level == *l,
        }
    }

    /// Evaluate on a route (`false` on the invalid route, which no policy is
    /// ever applied to anyway).
    pub fn evaluate_route(&self, r: &BgpRoute) -> bool {
        match r {
            BgpRoute::Invalid => false,
            BgpRoute::Valid {
                level,
                communities,
                path,
            } => self.evaluate(*level, communities, path),
        }
    }
}

impl fmt::Debug for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            Condition::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            Condition::Not(a) => write!(f, "¬{a:?}"),
            Condition::InPath(n) => write!(f, "inPath({n})"),
            Condition::InComm(c) => write!(f, "inComm({c})"),
            Condition::LprefEq(l) => write!(f, "lpref={l}"),
        }
    }
}

/// A route-map policy (the `Policy` data type of Section 7).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Filter the route.
    Reject,
    /// Increase the level (worsen the route) by the given amount.
    IncrPrefBy(Level),
    /// Add a community tag.
    AddComm(Community),
    /// Remove a community tag.
    DelComm(Community),
    /// Apply the first policy, then the second.
    Compose(Box<Policy>, Box<Policy>),
    /// Apply the policy only if the condition holds, otherwise leave the
    /// route unchanged (Equation 2 of the paper with `h = id`).
    Condition(Box<Condition>, Box<Policy>),
}

impl Policy {
    /// The identity policy (useful as a neutral element when composing).
    pub fn identity() -> Policy {
        Policy::IncrPrefBy(0)
    }

    /// `p ; q` — apply `p` then `q`.
    pub fn then(self, q: Policy) -> Policy {
        Policy::Compose(Box::new(self), Box::new(q))
    }

    /// `if c then p`.
    pub fn when(c: Condition, p: Policy) -> Policy {
        Policy::Condition(Box::new(c), Box::new(p))
    }

    /// Apply the policy to a route (the `apply` function of Section 7).
    pub fn apply(&self, r: &BgpRoute) -> BgpRoute {
        let (level, communities, path) = match r {
            BgpRoute::Invalid => return BgpRoute::Invalid,
            BgpRoute::Valid {
                level,
                communities,
                path,
            } => (*level, communities.clone(), path.clone()),
        };
        match self {
            Policy::Reject => BgpRoute::Invalid,
            Policy::IncrPrefBy(x) => BgpRoute::Valid {
                level: level.saturating_add(*x),
                communities,
                path,
            },
            Policy::AddComm(c) => BgpRoute::Valid {
                level,
                communities: communities.with(*c),
                path,
            },
            Policy::DelComm(c) => BgpRoute::Valid {
                level,
                communities: communities.without(*c),
                path,
            },
            Policy::Compose(p, q) => q.apply(&p.apply(r)),
            Policy::Condition(c, p) => {
                if c.evaluate(level, &communities, &path) {
                    p.apply(r)
                } else {
                    r.clone()
                }
            }
        }
    }

    /// The nesting depth of the policy (a crude complexity measure used by
    /// the benchmarks).
    pub fn depth(&self) -> usize {
        match self {
            Policy::Reject | Policy::IncrPrefBy(_) | Policy::AddComm(_) | Policy::DelComm(_) => 1,
            Policy::Compose(p, q) => 1 + p.depth().max(q.depth()),
            Policy::Condition(_, p) => 1 + p.depth(),
        }
    }
}

impl fmt::Debug for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Reject => write!(f, "reject"),
            Policy::IncrPrefBy(x) => write!(f, "incrPrefBy({x})"),
            Policy::AddComm(c) => write!(f, "addComm({c})"),
            Policy::DelComm(c) => write!(f, "delComm({c})"),
            Policy::Compose(p, q) => write!(f, "({p:?}; {q:?})"),
            Policy::Condition(c, p) => write!(f, "if {c:?} then {p:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_paths::SimplePath;

    fn sample_route() -> BgpRoute {
        BgpRoute::valid(
            10,
            CommunitySet::from_iter([17]),
            SimplePath::from_nodes(vec![3, 4]).unwrap(),
        )
    }

    #[test]
    fn conditions_evaluate_route_attributes() {
        let r = sample_route();
        assert!(Condition::InComm(17).evaluate_route(&r));
        assert!(!Condition::InComm(18).evaluate_route(&r));
        assert!(Condition::InPath(4).evaluate_route(&r));
        assert!(!Condition::InPath(9).evaluate_route(&r));
        assert!(Condition::LprefEq(10).evaluate_route(&r));
        assert!(Condition::and(Condition::InComm(17), Condition::InPath(3)).evaluate_route(&r));
        assert!(Condition::or(Condition::InComm(99), Condition::InPath(3)).evaluate_route(&r));
        assert!(Condition::not(Condition::InComm(99)).evaluate_route(&r));
        assert!(!Condition::InComm(17).evaluate_route(&BgpRoute::Invalid));
    }

    #[test]
    fn policies_apply_per_the_paper_semantics() {
        let r = sample_route();
        assert_eq!(Policy::Reject.apply(&r), BgpRoute::Invalid);
        assert_eq!(Policy::IncrPrefBy(5).apply(&r).level(), Some(15));
        assert!(Policy::AddComm(99)
            .apply(&r)
            .communities()
            .unwrap()
            .contains(99));
        assert!(!Policy::DelComm(17)
            .apply(&r)
            .communities()
            .unwrap()
            .contains(17));
        // every policy fixes the invalid route
        for p in [
            Policy::Reject,
            Policy::IncrPrefBy(3),
            Policy::AddComm(1),
            Policy::DelComm(1),
            Policy::identity(),
        ] {
            assert_eq!(p.apply(&BgpRoute::Invalid), BgpRoute::Invalid);
        }
    }

    #[test]
    fn composition_applies_left_to_right() {
        let r = sample_route();
        let p = Policy::IncrPrefBy(5).then(Policy::AddComm(50));
        let out = p.apply(&r);
        assert_eq!(out.level(), Some(15));
        assert!(out.communities().unwrap().contains(50));
        // reject anywhere in the composition kills the route
        let q = Policy::AddComm(1)
            .then(Policy::Reject)
            .then(Policy::AddComm(2));
        assert_eq!(q.apply(&r), BgpRoute::Invalid);
    }

    #[test]
    fn conditional_policies_dispatch_on_the_condition() {
        let r = sample_route();
        // "if the route carries community 17, raise its level by 100"
        let p = Policy::when(Condition::InComm(17), Policy::IncrPrefBy(100));
        assert_eq!(p.apply(&r).level(), Some(110));
        let untagged = Policy::DelComm(17).apply(&r);
        assert_eq!(
            p.apply(&untagged).level(),
            Some(10),
            "condition fails ⇒ unchanged"
        );
    }

    #[test]
    fn no_policy_can_lower_the_level() {
        // The "safe by design" property at the policy level: whatever the
        // policy, the level never decreases (and the paper's f_{i,j,pol}
        // additionally always lengthens the path).
        let r = sample_route();
        let policies = [
            Policy::Reject,
            Policy::IncrPrefBy(0),
            Policy::IncrPrefBy(7),
            Policy::AddComm(3),
            Policy::DelComm(17),
            Policy::when(Condition::LprefEq(10), Policy::IncrPrefBy(1)),
            Policy::when(Condition::InComm(99), Policy::IncrPrefBy(1)),
            Policy::IncrPrefBy(2).then(Policy::AddComm(8)),
        ];
        for p in policies {
            let out = p.apply(&r);
            if let Some(l) = out.level() {
                assert!(l >= r.level().unwrap(), "policy {p:?} lowered the level");
            }
        }
    }

    #[test]
    fn level_saturates_instead_of_overflowing() {
        let r = BgpRoute::valid(Level::MAX - 1, CommunitySet::empty(), SimplePath::empty());
        let out = Policy::IncrPrefBy(10).apply(&r);
        assert_eq!(out.level(), Some(Level::MAX));
    }

    #[test]
    fn depth_and_debug() {
        let p = Policy::when(
            Condition::and(Condition::InComm(1), Condition::not(Condition::InPath(2))),
            Policy::IncrPrefBy(5).then(Policy::AddComm(9)),
        );
        assert_eq!(p.depth(), 3);
        let s = format!("{p:?}");
        assert!(s.contains("inComm(1)"));
        assert!(s.contains("incrPrefBy(5)"));
        assert!(s.contains("∧"));
    }
}
