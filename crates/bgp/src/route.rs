//! BGP-like routes: level (local preference), communities and the AS path.
//!
//! Following the Section 7 algebra, a route is either invalid or carries a
//! *level* (the analogue of local preference, with **lower preferred** so
//! that policies which may only *increase* it can never make a route more
//! attractive), a set of community values (RFC 1997-style opaque tags that
//! policies can test and modify but which never influence the decision
//! procedure directly) and the path along which the route was learned.

use dbf_paths::SimplePath;
use std::collections::BTreeSet;
use std::fmt;

/// A community value (an opaque tag, as in RFC 1997).
pub type Community = u32;

/// The level / local-preference of a route.  Lower is preferred; policies
/// can only increase it, which is what makes the algebra increasing.
pub type Level = u32;

/// A set of community values.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct CommunitySet(BTreeSet<Community>);

impl CommunitySet {
    /// The empty community set.
    pub fn empty() -> Self {
        Self(BTreeSet::new())
    }

    /// A set from a list of communities.
    // Kept as an inherent constructor (callable without importing
    // `FromIterator`); the trait impl below delegates here.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }

    /// Does the set contain `c`?
    pub fn contains(&self, c: Community) -> bool {
        self.0.contains(&c)
    }

    /// Add a community (idempotent).
    pub fn insert(&mut self, c: Community) {
        self.0.insert(c);
    }

    /// Remove a community (idempotent).
    pub fn remove(&mut self, c: Community) {
        self.0.remove(&c);
    }

    /// A copy with `c` added.
    pub fn with(&self, c: Community) -> Self {
        let mut out = self.clone();
        out.insert(c);
        out
    }

    /// A copy with `c` removed.
    pub fn without(&self, c: Community) -> Self {
        let mut out = self.clone();
        out.remove(c);
        out
    }

    /// The number of communities in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the communities in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied()
    }
}

impl FromIterator<Community> for CommunitySet {
    fn from_iter<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        CommunitySet::from_iter(iter)
    }
}

impl fmt::Debug for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, c) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// A BGP-like route (the `Route` data type of Section 7).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BgpRoute {
    /// The invalid route.
    Invalid,
    /// A valid route.
    Valid {
        /// The level (local preference; lower is preferred).
        level: Level,
        /// The route's community tags.
        communities: CommunitySet,
        /// The path along which the route was learned.
        path: SimplePath,
    },
}

impl BgpRoute {
    /// The trivial route `valid 0 ∅ []`: a node's route to itself.
    pub fn trivial() -> Self {
        BgpRoute::Valid {
            level: 0,
            communities: CommunitySet::empty(),
            path: SimplePath::empty(),
        }
    }

    /// A valid route with the given attributes.
    pub fn valid(level: Level, communities: CommunitySet, path: SimplePath) -> Self {
        BgpRoute::Valid {
            level,
            communities,
            path,
        }
    }

    /// Is this the invalid route?
    pub fn is_invalid(&self) -> bool {
        matches!(self, BgpRoute::Invalid)
    }

    /// The level, if valid.
    pub fn level(&self) -> Option<Level> {
        match self {
            BgpRoute::Invalid => None,
            BgpRoute::Valid { level, .. } => Some(*level),
        }
    }

    /// The communities, if valid.
    pub fn communities(&self) -> Option<&CommunitySet> {
        match self {
            BgpRoute::Invalid => None,
            BgpRoute::Valid { communities, .. } => Some(communities),
        }
    }

    /// The path, if valid.
    pub fn simple_path(&self) -> Option<&SimplePath> {
        match self {
            BgpRoute::Invalid => None,
            BgpRoute::Valid { path, .. } => Some(path),
        }
    }
}

impl fmt::Debug for BgpRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpRoute::Invalid => write!(f, "invalid"),
            BgpRoute::Valid {
                level,
                communities,
                path,
            } => write!(f, "⟨lp={level} comm={communities:?} {path:?}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_set_operations() {
        let mut cs = CommunitySet::empty();
        assert!(cs.is_empty());
        cs.insert(17);
        cs.insert(42);
        cs.insert(17);
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(17));
        assert!(!cs.contains(99));
        cs.remove(17);
        assert!(!cs.contains(17));
        let with = cs.with(5);
        assert!(with.contains(5) && !cs.contains(5), "with() is persistent");
        let without = with.without(5);
        assert!(!without.contains(5));
        assert_eq!(
            CommunitySet::from_iter([3, 1, 2])
                .iter()
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(format!("{:?}", CommunitySet::from_iter([2, 1])), "{1,2}");
    }

    #[test]
    fn trivial_route_shape() {
        let t = BgpRoute::trivial();
        assert!(!t.is_invalid());
        assert_eq!(t.level(), Some(0));
        assert_eq!(t.communities().unwrap().len(), 0);
        assert!(t.simple_path().unwrap().is_empty());
    }

    #[test]
    fn invalid_route_has_no_attributes() {
        let r = BgpRoute::Invalid;
        assert!(r.is_invalid());
        assert_eq!(r.level(), None);
        assert!(r.communities().is_none());
        assert!(r.simple_path().is_none());
        assert_eq!(format!("{r:?}"), "invalid");
    }

    #[test]
    fn debug_format_mentions_attributes() {
        let r = BgpRoute::valid(
            100,
            CommunitySet::from_iter([7]),
            SimplePath::from_nodes(vec![1, 2]).unwrap(),
        );
        let s = format!("{r:?}");
        assert!(s.contains("lp=100"));
        assert!(s.contains('7'));
        assert!(s.contains("1→2"));
    }
}
