//! Stable-Paths-Problem gadgets: what unconstrained BGP policy permits.
//!
//! Today's BGP lets operators rank routes arbitrarily, and the classic
//! Griffin–Shepherd–Wilfong gadgets show what can go wrong:
//!
//! * **DISAGREE** — two stable states.  Which one the network reaches
//!   depends on message timing; once it is in the "wrong" one, leaving it
//!   requires coordinated manual intervention.  This is the *BGP wedgie* of
//!   RFC 4264 that the paper's absolute-convergence theorem rules out.
//! * **BAD GADGET** — no stable state at all: the protocol oscillates
//!   forever.
//! * **GOOD GADGET** — a configuration that happens to converge, showing
//!   that the gadget algebra itself is not hopeless, merely unconstrained.
//!
//! The gadgets are expressed as a small "ranked permitted paths" algebra
//! ([`SppAlgebra`]): a route is a permitted path together with the rank the
//! *current holder* assigns it, and the edge function `f_{i,j}` re-ranks the
//! extended path according to node `i`'s preference table (or filters it if
//! `i` does not permit it).  Because a node may rank a longer path *better*
//! than a shorter one, the algebra is **not increasing** — which is exactly
//! why none of the paper's guarantees apply to it, and why the experiments
//! can exhibit wedgies and oscillation with it.

use dbf_algebra::RoutingAlgebra;
use dbf_matrix::AdjacencyMatrix;
use dbf_paths::path_algebra::PathAlgebra;
use dbf_paths::{NodeId, Path, SimplePath};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A route of the gadget algebra: a permitted path plus the rank assigned by
/// the node currently holding it (lower rank = more preferred).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum SppRoute {
    /// The invalid route (the path is not permitted or does not exist).
    Invalid,
    /// A permitted path with its rank at the current holder.
    Valid {
        /// The rank (lower is preferred).
        rank: u32,
        /// The path.
        path: SimplePath,
    },
}

impl SppRoute {
    /// The rank, if valid.
    pub fn rank(&self) -> Option<u32> {
        match self {
            SppRoute::Invalid => None,
            SppRoute::Valid { rank, .. } => Some(*rank),
        }
    }

    /// The path, if valid.
    pub fn simple_path(&self) -> Option<&SimplePath> {
        match self {
            SppRoute::Invalid => None,
            SppRoute::Valid { path, .. } => Some(path),
        }
    }

    /// Is this the invalid route?
    pub fn is_invalid(&self) -> bool {
        matches!(self, SppRoute::Invalid)
    }
}

impl fmt::Debug for SppRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SppRoute::Invalid => write!(f, "invalid"),
            SppRoute::Valid { rank, path } => write!(f, "⟨#{rank} {path:?}⟩"),
        }
    }
}

/// An edge of the gadget algebra (no policy payload: the behaviour is
/// entirely determined by the importing node's preference table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SppEdge {
    /// The importing node `i`.
    pub importer: NodeId,
    /// The announcing neighbour `j`.
    pub announcer: NodeId,
}

/// A "ranked permitted paths" algebra over a fixed destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SppAlgebra {
    nodes: usize,
    destination: NodeId,
    /// `(node, path node sequence) → rank`.  Paths not in the map are not
    /// permitted at that node.
    preferences: BTreeMap<(NodeId, Vec<NodeId>), u32>,
}

impl SppAlgebra {
    /// Create an algebra with an explicit preference table.
    pub fn new(
        nodes: usize,
        destination: NodeId,
        preferences: BTreeMap<(NodeId, Vec<NodeId>), u32>,
    ) -> Self {
        Self {
            nodes,
            destination,
            preferences,
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The destination every preference refers to.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The rank node `node` assigns to `path`, if it permits it.
    pub fn rank_of(&self, node: NodeId, path: &SimplePath) -> Option<u32> {
        self.preferences
            .get(&(node, path.nodes().to_vec()))
            .copied()
    }

    /// Build an edge.
    pub fn edge(&self, importer: NodeId, announcer: NodeId) -> SppEdge {
        SppEdge {
            importer,
            announcer,
        }
    }

    /// The adjacency induced by the preference table: the link `i → j`
    /// exists iff some path permitted at `i` starts with the edge `(i, j)`,
    /// plus every one-hop link `(i, destination)` that is itself permitted.
    pub fn adjacency(&self) -> AdjacencyMatrix<SppAlgebra> {
        AdjacencyMatrix::from_fn(self.nodes, |i, j| {
            let used = self.preferences.keys().any(|(node, nodes)| {
                *node == i && nodes.len() >= 2 && nodes[0] == i && nodes[1] == j
            });
            if used {
                Some(self.edge(i, j))
            } else {
                None
            }
        })
    }

    /// The DISAGREE gadget (two stable states — a BGP wedgie).
    ///
    /// Nodes 1 and 2 both reach destination 0 directly, but each *prefers*
    /// the route through the other.
    pub fn disagree() -> SppAlgebra {
        let mut prefs = BTreeMap::new();
        prefs.insert((1, vec![1, 2, 0]), 0);
        prefs.insert((1, vec![1, 0]), 1);
        prefs.insert((2, vec![2, 1, 0]), 0);
        prefs.insert((2, vec![2, 0]), 1);
        SppAlgebra::new(3, 0, prefs)
    }

    /// The BAD GADGET (no stable state — permanent oscillation).
    ///
    /// Nodes 1, 2, 3 each reach destination 0 directly but prefer the route
    /// through their clockwise neighbour.
    pub fn bad_gadget() -> SppAlgebra {
        let mut prefs = BTreeMap::new();
        for (me, next) in [(1, 2), (2, 3), (3, 1)] {
            prefs.insert((me, vec![me, next, 0]), 0);
            prefs.insert((me, vec![me, 0]), 1);
        }
        SppAlgebra::new(4, 0, prefs)
    }

    /// A GOOD GADGET: the same topology as [`Self::bad_gadget`] but with
    /// preferences that make the direct route best, so the configuration
    /// converges (to everyone using their direct route).
    pub fn good_gadget() -> SppAlgebra {
        let mut prefs = BTreeMap::new();
        for (me, next) in [(1, 2), (2, 3), (3, 1)] {
            prefs.insert((me, vec![me, 0]), 0);
            prefs.insert((me, vec![me, next, 0]), 1);
        }
        SppAlgebra::new(4, 0, prefs)
    }
}

impl RoutingAlgebra for SppAlgebra {
    type Route = SppRoute;
    type Edge = SppEdge;

    fn choice(&self, a: &SppRoute, b: &SppRoute) -> SppRoute {
        match (a, b) {
            (SppRoute::Invalid, _) => b.clone(),
            (_, SppRoute::Invalid) => a.clone(),
            (SppRoute::Valid { rank: ar, path: ap }, SppRoute::Valid { rank: br, path: bp }) => {
                let ord = ar.cmp(br).then_with(|| ap.cmp(bp));
                if ord == Ordering::Greater {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        }
    }

    fn extend(&self, f: &SppEdge, r: &SppRoute) -> SppRoute {
        let path = match r {
            SppRoute::Invalid => return SppRoute::Invalid,
            SppRoute::Valid { path, .. } => path,
        };
        let extended = match path.try_extend(f.importer, f.announcer) {
            Ok(p) => p,
            Err(_) => return SppRoute::Invalid,
        };
        match self.rank_of(f.importer, &extended) {
            Some(rank) => SppRoute::Valid {
                rank,
                path: extended,
            },
            None => SppRoute::Invalid,
        }
    }

    fn trivial(&self) -> SppRoute {
        SppRoute::Valid {
            rank: 0,
            path: SimplePath::empty(),
        }
    }

    fn invalid(&self) -> SppRoute {
        SppRoute::Invalid
    }
}

impl PathAlgebra for SppAlgebra {
    fn path_of(&self, r: &SppRoute) -> Path {
        match r {
            SppRoute::Invalid => Path::Invalid,
            SppRoute::Valid { path, .. } => Path::Simple(path.clone()),
        }
    }

    fn edge_endpoints(&self, f: &SppEdge) -> (NodeId, NodeId) {
        (f.importer, f.announcer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::properties;
    use dbf_matrix::prelude::*;

    #[test]
    fn ranking_and_filtering_follow_the_preference_table() {
        let alg = SppAlgebra::disagree();
        assert_eq!(alg.node_count(), 3);
        assert_eq!(alg.destination(), 0);
        // node 1 extends 0's trivial route over (1, 0): permitted, rank 1
        let direct = alg.extend(&alg.edge(1, 0), &alg.trivial());
        assert_eq!(direct.rank(), Some(1));
        assert_eq!(direct.simple_path().unwrap().nodes(), &[1, 0]);
        // node 2 extends that into [2,1,0]: permitted, rank 0
        let via1 = alg.extend(&alg.edge(2, 1), &direct);
        assert_eq!(via1.rank(), Some(0));
        // node 0 extending anything towards itself is not permitted (no
        // entry in the table)
        assert!(alg.extend(&alg.edge(0, 1), &direct).is_invalid());
        // looping extension is invalid
        assert!(alg.extend(&alg.edge(1, 2), &via1).is_invalid());
    }

    /// All permitted paths of an SPP instance with their proper ranks, plus
    /// the distinguished routes, and every potential edge.
    fn sample(alg: &SppAlgebra) -> (Vec<SppRoute>, Vec<SppEdge>) {
        let mut routes = vec![alg.trivial(), alg.invalid()];
        for ((_node, nodes), rank) in alg.preferences.clone() {
            routes.push(SppRoute::Valid {
                rank,
                path: SimplePath::from_nodes(nodes).unwrap(),
            });
        }
        let mut edges = Vec::new();
        for i in 0..alg.node_count() {
            for j in 0..alg.node_count() {
                if i != j {
                    edges.push(alg.edge(i, j));
                }
            }
        }
        (routes, edges)
    }

    #[test]
    fn gadget_algebras_satisfy_definition_1() {
        for alg in [
            SppAlgebra::disagree(),
            SppAlgebra::bad_gadget(),
            SppAlgebra::good_gadget(),
        ] {
            let (routes, edges) = sample(&alg);
            properties::check_required_laws(&alg, &routes, &edges).unwrap();
        }
    }

    #[test]
    fn wedgie_and_oscillation_gadgets_are_not_increasing() {
        // DISAGREE and BAD GADGET rank a longer path better than the direct
        // one, so re-ranking on import can make a route *more* preferred —
        // the increasing condition fails, and with it every guarantee of the
        // paper.  (The GOOD GADGET's preferences happen to respect the
        // increasing condition on its permitted routes, which is exactly why
        // it converges.)
        for alg in [SppAlgebra::disagree(), SppAlgebra::bad_gadget()] {
            let (routes, edges) = sample(&alg);
            assert!(
                properties::check_increasing(&alg, &edges, &routes).is_err(),
                "gadget preference tables rank longer paths better, so the algebra must not be \
                 increasing"
            );
        }
        let good = SppAlgebra::good_gadget();
        let (routes, edges) = sample(&good);
        properties::check_increasing(&good, &edges, &routes).unwrap();
    }

    #[test]
    fn bad_gadget_has_no_stable_state() {
        let alg = SppAlgebra::bad_gadget();
        let adj = alg.adjacency();
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 4), 500);
        assert!(!out.converged, "BAD GADGET must oscillate forever");
    }

    #[test]
    fn good_gadget_converges_to_direct_routes() {
        let alg = SppAlgebra::good_gadget();
        let adj = alg.adjacency();
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 4), 500);
        assert!(out.converged);
        for node in 1..4usize {
            let r = out.state.get(node, 0);
            assert_eq!(
                r.simple_path().unwrap().nodes(),
                &[node, 0],
                "node {node} should settle on its direct route"
            );
        }
    }

    #[test]
    fn disagree_has_two_stable_states() {
        let alg = SppAlgebra::disagree();
        let adj = alg.adjacency();
        // State A: 1 uses its direct route, 2 routes through 1.
        let state_a = RoutingState::from_fn(3, |i, j| match (i, j) {
            (0, 0) | (1, 1) | (2, 2) => alg.trivial(),
            (1, 0) => SppRoute::Valid {
                rank: 1,
                path: SimplePath::from_nodes(vec![1, 0]).unwrap(),
            },
            (2, 0) => SppRoute::Valid {
                rank: 0,
                path: SimplePath::from_nodes(vec![2, 1, 0]).unwrap(),
            },
            _ => alg.invalid(),
        });
        // State B is the mirror image.
        let state_b = RoutingState::from_fn(3, |i, j| match (i, j) {
            (0, 0) | (1, 1) | (2, 2) => alg.trivial(),
            (2, 0) => SppRoute::Valid {
                rank: 1,
                path: SimplePath::from_nodes(vec![2, 0]).unwrap(),
            },
            (1, 0) => SppRoute::Valid {
                rank: 0,
                path: SimplePath::from_nodes(vec![1, 2, 0]).unwrap(),
            },
            _ => alg.invalid(),
        });
        assert!(is_stable(&alg, &adj, &state_a));
        assert!(is_stable(&alg, &adj, &state_b));
        assert_ne!(state_a, state_b);
    }
}
