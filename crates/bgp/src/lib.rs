//! # dbf-bgp — a policy-rich, safe-by-design BGP-like path-vector algebra
//!
//! This crate implements Section 7 of *"Asynchronous Convergence of
//! Policy-Rich Distributed Bellman-Ford Routing Protocols"* (Daggitt,
//! Gurney & Griffin, SIGCOMM 2018), plus the related-work configurations the
//! paper compares against:
//!
//! * [`route`] — BGP-like routes: a local-preference *level* (lower is
//!   better; policies may only increase it), a set of community values and
//!   the AS path;
//! * [`policy`] — the Section 7 policy language: `reject`, `incrPrefBy`,
//!   `addComm`, `delComm`, `compose` and `condition`, where conditions are
//!   built from `and` / `or` / `not` / `inPath` / `inComm` / `lprefEq`.
//!   Because no policy can *decrease* the level, every expressible policy is
//!   safe — the algebra is increasing by construction ("safe by design");
//! * [`algebra`] — the routing/path algebra assembled from routes and
//!   policies: the decision procedure (level, then path length, then a
//!   lexicographic tie-break), the edge functions `f_{i,j,pol}` with
//!   adjacency and loop filtering, and helpers for building adjacencies from
//!   topologies and policy maps;
//! * [`gao_rexford`] — the Gao-Rexford customer/peer/provider conditions
//!   expressed *inside* the increasing framework (valley-free export
//!   filtering plus customer ≺ peer ≺ provider preference), demonstrating
//!   the paper's point that strict increase is strictly more general;
//! * [`spp`] — Stable-Paths-Problem gadgets (DISAGREE, BAD GADGET, GOOD
//!   GADGET) modelling what today's unconstrained BGP permits: wedgies
//!   (multiple stable states) and permanent oscillation.  These algebras are
//!   deliberately **not** increasing and are used as the negative
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod gao_rexford;
pub mod policy;
pub mod route;
pub mod spp;

pub use algebra::{BgpAlgebra, BgpEdge};
pub use policy::{Condition, Policy};
pub use route::{BgpRoute, Community, CommunitySet, Level};

/// Commonly used items, suitable for a glob import.
pub mod prelude {
    pub use crate::algebra::{BgpAlgebra, BgpEdge};
    pub use crate::gao_rexford::{GaoRexford, GrEdge, GrRoute, Relationship, RouteClass};
    pub use crate::policy::{Condition, Policy};
    pub use crate::route::{BgpRoute, Community, CommunitySet, Level};
    pub use crate::spp::{SppAlgebra, SppEdge, SppRoute};
}
