//! The Gao-Rexford conditions expressed inside the increasing framework.
//!
//! Gao & Rexford showed that if every AS follows the commercial rules
//!
//! * **preference** — prefer routes learned from customers over routes
//!   learned from peers over routes learned from providers, and
//! * **export** — routes learned from a peer or a provider are only
//!   exported to customers (equivalently: only customer-learned or own
//!   routes are exported to peers and providers),
//!
//! then BGP converges.  Sobrinho (and the paper, Section 1) observe that
//! these conditions can be *implemented inside* a strictly increasing
//! algebra, which shows the increasing condition is strictly more general:
//! it needs no assumptions about the global customer/provider topology, and
//! it re-verifies nothing when the topology changes.
//!
//! This module is that implementation.  A route records the relationship
//! class through which it was learned (customer ≺ peer ≺ provider, with a
//! node's own routes counting as customer-class so they may be exported
//! anywhere); an edge records the business relationship of the announcing
//! neighbour and performs valley-free export filtering.  The resulting
//! algebra is increasing (verified by the tests), so Theorem 11 applies —
//! and unlike the original Gao-Rexford argument it keeps working even if
//! the provider/customer relation has cycles.

use dbf_algebra::algebra::SplitMix64;
use dbf_algebra::{Increasing, RoutingAlgebra, SampleableAlgebra, StrictlyIncreasing};
use dbf_matrix::AdjacencyMatrix;
use dbf_paths::path_algebra::PathAlgebra;
use dbf_paths::{NodeId, Path, SimplePath};
use dbf_topology::generators::TierRelation;
use dbf_topology::Topology;
use std::cmp::Ordering;
use std::fmt;

/// The business relationship of the announcing neighbour `j` as seen by the
/// importing node `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `j` is `i`'s customer (the route travels "up").
    Customer,
    /// `j` is `i`'s peer.
    Peer,
    /// `j` is `i`'s provider (the route travels "down").
    Provider,
}

/// How the current holder of a route learned it.  The ordering is the
/// Gao-Rexford preference: customer-learned ≺ peer-learned ≺
/// provider-learned (a node's own routes count as customer-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RouteClass {
    /// Learned from a customer (or originated locally).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A route of the Gao-Rexford algebra.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum GrRoute {
    /// The invalid route.
    Invalid,
    /// A valid route.
    Valid {
        /// How the route was learned.
        class: RouteClass,
        /// The AS path.
        path: SimplePath,
    },
}

impl GrRoute {
    /// The class, if valid.
    pub fn class(&self) -> Option<RouteClass> {
        match self {
            GrRoute::Invalid => None,
            GrRoute::Valid { class, .. } => Some(*class),
        }
    }

    /// Is this the invalid route?
    pub fn is_invalid(&self) -> bool {
        matches!(self, GrRoute::Invalid)
    }

    /// The path, if valid.
    pub fn simple_path(&self) -> Option<&SimplePath> {
        match self {
            GrRoute::Invalid => None,
            GrRoute::Valid { path, .. } => Some(path),
        }
    }
}

impl fmt::Debug for GrRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrRoute::Invalid => write!(f, "invalid"),
            GrRoute::Valid { class, path } => write!(f, "⟨{class:?} {path:?}⟩"),
        }
    }
}

/// An edge of the Gao-Rexford algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrEdge {
    /// The importing node `i`.
    pub importer: NodeId,
    /// The announcing neighbour `j`.
    pub announcer: NodeId,
    /// What `j` is to `i`.
    pub relationship: Relationship,
}

/// The Gao-Rexford routing algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaoRexford {
    nodes: usize,
}

impl GaoRexford {
    /// Create the algebra for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { nodes }
    }

    /// Build an edge.
    pub fn edge(&self, importer: NodeId, announcer: NodeId, relationship: Relationship) -> GrEdge {
        GrEdge {
            importer,
            announcer,
            relationship,
        }
    }

    /// Build the adjacency matrix from a tiered-hierarchy topology whose
    /// edge labels say what the *target* of the edge is to the *source*
    /// (the convention of [`dbf_topology::generators::tiered_hierarchy`]).
    pub fn adjacency_from_hierarchy(
        &self,
        topo: &Topology<TierRelation>,
    ) -> AdjacencyMatrix<GaoRexford> {
        AdjacencyMatrix::from_fn(topo.node_count(), |i, j| {
            topo.edge(i, j).map(|rel| {
                let relationship = match rel {
                    TierRelation::CustomerOf => Relationship::Customer,
                    TierRelation::ProviderOf => Relationship::Provider,
                    TierRelation::PeerOf => Relationship::Peer,
                };
                self.edge(i, j, relationship)
            })
        })
    }

    fn cmp_valid(
        &self,
        ac: RouteClass,
        ap: &SimplePath,
        bc: RouteClass,
        bp: &SimplePath,
    ) -> Ordering {
        ac.cmp(&bc)
            .then_with(|| ap.len().cmp(&bp.len()))
            .then_with(|| ap.cmp(bp))
    }
}

impl RoutingAlgebra for GaoRexford {
    type Route = GrRoute;
    type Edge = GrEdge;

    fn choice(&self, a: &GrRoute, b: &GrRoute) -> GrRoute {
        match (a, b) {
            (GrRoute::Invalid, _) => b.clone(),
            (_, GrRoute::Invalid) => a.clone(),
            (
                GrRoute::Valid {
                    class: ac,
                    path: ap,
                },
                GrRoute::Valid {
                    class: bc,
                    path: bp,
                },
            ) => {
                if self.cmp_valid(*ac, ap, *bc, bp) == Ordering::Greater {
                    b.clone()
                } else {
                    a.clone()
                }
            }
        }
    }

    fn extend(&self, f: &GrEdge, r: &GrRoute) -> GrRoute {
        let (class, path) = match r {
            GrRoute::Invalid => return GrRoute::Invalid,
            GrRoute::Valid { class, path } => (*class, path),
        };
        // Valley-free export filtering: the announcer only exports
        // customer-learned (or own) routes to its providers and peers.
        let exportable = match f.relationship {
            Relationship::Customer | Relationship::Peer => class == RouteClass::Customer,
            Relationship::Provider => true,
        };
        if !exportable {
            return GrRoute::Invalid;
        }
        let extended = match path.try_extend(f.importer, f.announcer) {
            Ok(p) => p,
            Err(_) => return GrRoute::Invalid,
        };
        let new_class = match f.relationship {
            Relationship::Customer => RouteClass::Customer,
            Relationship::Peer => RouteClass::Peer,
            Relationship::Provider => RouteClass::Provider,
        };
        GrRoute::Valid {
            class: new_class,
            path: extended,
        }
    }

    fn trivial(&self) -> GrRoute {
        GrRoute::Valid {
            class: RouteClass::Customer,
            path: SimplePath::empty(),
        }
    }

    fn invalid(&self) -> GrRoute {
        GrRoute::Invalid
    }
}

impl PathAlgebra for GaoRexford {
    fn path_of(&self, r: &GrRoute) -> Path {
        match r {
            GrRoute::Invalid => Path::Invalid,
            GrRoute::Valid { path, .. } => Path::Simple(path.clone()),
        }
    }

    fn edge_endpoints(&self, f: &GrEdge) -> (NodeId, NodeId) {
        (f.importer, f.announcer)
    }
}

// Valley-free filtering guarantees the class never improves across an edge,
// and the path always grows, so the algebra is (strictly) increasing.
impl Increasing for GaoRexford {}
impl StrictlyIncreasing for GaoRexford {}

impl SampleableAlgebra for GaoRexford {
    fn sample_routes(&self, seed: u64, count: usize) -> Vec<GrRoute> {
        let mut rng = SplitMix64::new(seed);
        let n = self.nodes.max(2);
        let mut out = vec![self.trivial(), self.invalid()];
        while out.len() < count.max(2) {
            let mut available: Vec<NodeId> = (0..n).collect();
            let len = (rng.next_below(n as u64) as usize).min(n - 1);
            let mut nodes = Vec::new();
            if len > 0 {
                for _ in 0..=len {
                    let idx = rng.next_below(available.len() as u64) as usize;
                    nodes.push(available.swap_remove(idx));
                }
            }
            let class = match rng.next_below(3) {
                0 => RouteClass::Customer,
                1 => RouteClass::Peer,
                _ => RouteClass::Provider,
            };
            out.push(GrRoute::Valid {
                class,
                path: SimplePath::from_nodes(nodes).expect("distinct nodes"),
            });
        }
        out
    }

    fn sample_edges(&self, seed: u64, count: usize) -> Vec<GrEdge> {
        let mut rng = SplitMix64::new(seed ^ 0x6E0);
        let n = self.nodes.max(2) as u64;
        (0..count.max(1))
            .map(|_| {
                let importer = rng.next_below(n) as NodeId;
                let mut announcer = rng.next_below(n) as NodeId;
                if announcer == importer {
                    announcer = (announcer + 1) % n as NodeId;
                }
                let relationship = match rng.next_below(3) {
                    0 => Relationship::Customer,
                    1 => Relationship::Peer,
                    _ => Relationship::Provider,
                };
                self.edge(importer, announcer, relationship)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_algebra::properties;
    use dbf_paths::path_algebra::{check_p1, check_p2, check_p3};
    use dbf_topology::generators;

    fn alg() -> GaoRexford {
        GaoRexford::new(6)
    }

    #[test]
    fn preference_is_customer_then_peer_then_provider() {
        let a = alg();
        let customer = GrRoute::Valid {
            class: RouteClass::Customer,
            path: SimplePath::from_nodes(vec![0, 1, 2, 3]).unwrap(),
        };
        let peer = GrRoute::Valid {
            class: RouteClass::Peer,
            path: SimplePath::from_nodes(vec![0, 4]).unwrap(),
        };
        let provider = GrRoute::Valid {
            class: RouteClass::Provider,
            path: SimplePath::from_nodes(vec![0, 5]).unwrap(),
        };
        // a long customer route still beats a short peer or provider route
        assert_eq!(a.choice(&customer, &peer), customer);
        assert_eq!(a.choice(&peer, &provider), peer);
        assert_eq!(a.choice(&customer, &provider), customer);
        // within a class, shorter paths win
        let short_peer = GrRoute::Valid {
            class: RouteClass::Peer,
            path: SimplePath::from_nodes(vec![0, 3]).unwrap(),
        };
        assert_eq!(a.choice(&peer, &short_peer), short_peer);
    }

    #[test]
    fn export_filtering_is_valley_free() {
        let a = alg();
        let via_provider = GrRoute::Valid {
            class: RouteClass::Provider,
            path: SimplePath::from_nodes(vec![1, 2]).unwrap(),
        };
        let via_customer = GrRoute::Valid {
            class: RouteClass::Customer,
            path: SimplePath::from_nodes(vec![1, 3]).unwrap(),
        };
        // A provider-learned route is not exported to a peer or to a
        // provider (i.e. not importable over a customer or peer edge)…
        assert!(a
            .extend(&a.edge(0, 1, Relationship::Customer), &via_provider)
            .is_invalid());
        assert!(a
            .extend(&a.edge(0, 1, Relationship::Peer), &via_provider)
            .is_invalid());
        // …but it is exported to customers (importable over a provider edge).
        assert!(!a
            .extend(&a.edge(0, 1, Relationship::Provider), &via_provider)
            .is_invalid());
        // Customer-learned routes go everywhere.
        for rel in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert!(!a.extend(&a.edge(0, 1, rel), &via_customer).is_invalid());
        }
        // The imported class records the relationship it arrived over.
        assert_eq!(
            a.extend(&a.edge(0, 1, Relationship::Peer), &via_customer)
                .class(),
            Some(RouteClass::Peer)
        );
    }

    #[test]
    fn required_laws_and_path_laws_hold() {
        let a = alg();
        let routes = a.sample_routes(3, 48);
        let edges = a.sample_edges(3, 16);
        properties::check_required_laws(&a, &routes, &edges).unwrap();
        check_p1(&a, &routes).unwrap();
        check_p2(&a, &routes).unwrap();
        check_p3(&a, &edges, &routes).unwrap();
    }

    #[test]
    fn gao_rexford_policies_are_strictly_increasing() {
        // The paper's point: the Gao-Rexford conditions live strictly inside
        // the increasing framework.
        let a = alg();
        let routes = a.sample_routes(9, 64);
        let edges = a.sample_edges(9, 24);
        properties::check_increasing(&a, &edges, &routes).unwrap();
        properties::check_strictly_increasing(&a, &edges, &routes).unwrap();
    }

    #[test]
    fn adjacency_from_a_tiered_hierarchy() {
        let a = GaoRexford::new(14);
        let (topo, tier_of) = generators::tiered_hierarchy(&[2, 4, 8], 0.4, 0.2, 5);
        let adj = a.adjacency_from_hierarchy(&topo);
        assert_eq!(adj.node_count(), 14);
        assert_eq!(adj.link_count(), topo.edge_count());
        // spot-check a provider/customer pair's labels
        let mut checked = false;
        for (i, j, rel) in topo.edges() {
            if *rel == TierRelation::CustomerOf {
                let e = adj.get(i, j).unwrap();
                assert_eq!(e.relationship, Relationship::Customer);
                assert!(tier_of[j] == tier_of[i] + 1);
                let back = adj.get(j, i).unwrap();
                assert_eq!(back.relationship, Relationship::Provider);
                checked = true;
                break;
            }
        }
        assert!(
            checked,
            "hierarchy should contain at least one customer edge"
        );
    }

    #[test]
    fn trivial_route_is_exportable_everywhere() {
        let a = alg();
        for rel in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            let r = a.extend(&a.edge(2, 3, rel), &a.trivial());
            assert!(
                !r.is_invalid(),
                "own routes must be exportable over {rel:?} edges"
            );
            assert_eq!(r.simple_path().unwrap().nodes(), &[2, 3]);
        }
    }
}
