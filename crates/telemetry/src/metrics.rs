//! The counter/histogram aggregator: folds a telemetry event stream into a
//! [`MetricsReport`] with a deterministic side (round counts, row counts,
//! settle histograms, message counters) and a timing side (wall times and
//! band geometry, which may vary with thread count and scheduling).

use crate::sink::{MessageCounters, TelemetrySink};

/// Summary of a per-node settle-round histogram (nearest-rank percentiles,
/// matching the sweep aggregator's convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettleSummary {
    /// Number of nodes observed.
    pub count: u64,
    /// Median settle round.
    pub p50: u64,
    /// 95th-percentile settle round.
    pub p95: u64,
    /// 99th-percentile settle round.
    pub p99: u64,
    /// Worst-case settle round (the convergence frontier's far edge).
    pub max: u64,
}

impl SettleSummary {
    /// Nearest-rank percentile summary of `samples`; `None` when empty.
    pub fn from_samples(samples: &[u64]) -> Option<SettleSummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: u64| {
            let k = (p * sorted.len() as u64).div_ceil(100);
            sorted[(k.max(1) as usize) - 1]
        };
        Some(SettleSummary {
            count: sorted.len() as u64,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Aggregated per-band sweep statistics for one phase (timing side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandStats {
    /// Band index (band 0 runs on the coordinating thread).
    pub band: u64,
    /// Number of sweeps this band performed (one per round).
    pub sweeps: u64,
    /// Total rows swept across all rounds.
    pub rows: u64,
    /// Total degree weight swept across all rounds.
    pub weight: u64,
    /// Total wall time the band's worker spent sweeping, in nanoseconds.
    pub wall_ns: u64,
}

/// Deterministic counters for one (run, phase) pair.  Every field is a
/// pure function of (problem, seed) — byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Engine-run label (e.g. `sync`, `delta[7]`).
    pub run: String,
    /// Phase label.
    pub phase: String,
    /// Number of σ rounds / δ time steps executed (including the sweep
    /// that detects the fixed point).
    pub rounds: u64,
    /// Total rows recomputed across all rounds.
    pub rows_recomputed: u64,
    /// Total rows whose recomputation produced a different row.
    pub rows_changed: u64,
    /// Largest dirty-set size seen at any round start.
    pub max_scheduled: u64,
    /// Largest active-frontier size seen at any round start (rows whose
    /// inputs changed last round; `≤ max_scheduled`).
    pub peak_frontier: u64,
    /// Per-node settle-round histogram summary, for engines that emit
    /// `node_settled`.
    pub settle: Option<SettleSummary>,
    /// Message-plane counters, for message-driven engines.
    pub messages: Option<MessageCounters>,
}

/// Non-deterministic timing data for one (run, phase) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Engine-run label.
    pub run: String,
    /// Phase label.
    pub phase: String,
    /// Total wall time across all rounds, in nanoseconds.
    pub round_wall_ns: u64,
    /// Per-band sweep statistics (empty unless the phase ran the parallel
    /// σ kernel with more than one band).
    pub bands: Vec<BandStats>,
}

/// The aggregator's output: phase-by-phase deterministic metrics plus the
/// matching timing entries, in event-arrival (run, phase) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Deterministic per-phase counters.
    pub phases: Vec<PhaseMetrics>,
    /// Per-phase timing (same order as `phases`).
    pub timing: Vec<PhaseTiming>,
}

#[derive(Debug, Default)]
struct PhaseAgg {
    run: String,
    phase: String,
    rounds: u64,
    rows_recomputed: u64,
    rows_changed: u64,
    max_scheduled: u64,
    peak_frontier: u64,
    settle: Vec<u64>,
    messages: Option<MessageCounters>,
    round_wall_ns: u64,
    bands: Vec<BandStats>,
}

/// Folds the event stream into a [`MetricsReport`].
///
/// One entry is opened per `phase_start`; events arriving before any
/// `phase_start` (e.g. when a kernel is driven directly, outside an
/// engine) open an anonymous entry.  Entries appear in arrival order,
/// which the sequential engine loop makes deterministic.
#[derive(Debug, Default)]
pub struct AggregatingSink {
    entries: Vec<PhaseAgg>,
    current_run: String,
    current_engine: String,
}

impl AggregatingSink {
    /// A fresh, empty aggregator.
    pub fn new() -> AggregatingSink {
        AggregatingSink::default()
    }

    fn entry(&mut self) -> &mut PhaseAgg {
        if self.entries.is_empty() {
            self.entries.push(PhaseAgg {
                run: self.current_run.clone(),
                ..PhaseAgg::default()
            });
        }
        self.entries.last_mut().expect("just ensured non-empty")
    }

    /// Consume the sink and produce the final report.
    pub fn finish(self) -> MetricsReport {
        let mut report = MetricsReport::default();
        for e in self.entries {
            report.phases.push(PhaseMetrics {
                run: e.run.clone(),
                phase: e.phase.clone(),
                rounds: e.rounds,
                rows_recomputed: e.rows_recomputed,
                rows_changed: e.rows_changed,
                max_scheduled: e.max_scheduled,
                peak_frontier: e.peak_frontier,
                settle: SettleSummary::from_samples(&e.settle),
                messages: e.messages,
            });
            report.timing.push(PhaseTiming {
                run: e.run,
                phase: e.phase,
                round_wall_ns: e.round_wall_ns,
                bands: e.bands,
            });
        }
        report
    }
}

impl TelemetrySink for AggregatingSink {
    fn run_start(&mut self, run: &str, engine: &str) {
        self.current_run = run.to_string();
        self.current_engine = engine.to_string();
    }

    fn phase_start(&mut self, label: &str, _nodes: usize) {
        self.entries.push(PhaseAgg {
            run: self.current_run.clone(),
            phase: label.to_string(),
            ..PhaseAgg::default()
        });
    }

    fn round_start(&mut self, _round: u64, scheduled: u64, frontier: u64) {
        let e = self.entry();
        e.max_scheduled = e.max_scheduled.max(scheduled);
        e.peak_frontier = e.peak_frontier.max(frontier);
    }

    fn round_end(&mut self, _round: u64, recomputed: u64, changed: u64, wall_ns: u64) {
        let e = self.entry();
        e.rounds += 1;
        e.rows_recomputed += recomputed;
        e.rows_changed += changed;
        e.round_wall_ns += wall_ns;
    }

    fn band_sweep(&mut self, _round: u64, band: u64, rows: u64, weight: u64, wall_ns: u64) {
        let e = self.entry();
        let idx = band as usize;
        if e.bands.len() <= idx {
            e.bands.resize_with(idx + 1, BandStats::default);
        }
        let b = &mut e.bands[idx];
        b.band = band;
        b.sweeps += 1;
        b.rows += rows;
        b.weight += weight;
        b.wall_ns += wall_ns;
    }

    fn node_settled(&mut self, _node: usize, round: u64) {
        self.entry().settle.push(round);
    }

    fn messages(&mut self, counters: &MessageCounters) {
        let e = self.entry();
        match &mut e.messages {
            Some(m) => m.merge(counters),
            slot @ None => *slot = Some(*counters),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_summary_uses_nearest_rank_percentiles() {
        let s = SettleSummary::from_samples(&[4, 1, 2, 3, 5]).unwrap();
        assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (5, 3, 5, 5, 5));
        assert_eq!(SettleSummary::from_samples(&[]), None);
        let one = SettleSummary::from_samples(&[7]).unwrap();
        assert_eq!((one.p50, one.p99, one.max), (7, 7, 7));
    }

    #[test]
    fn aggregator_folds_rounds_bands_and_settles_per_phase() {
        let mut sink = AggregatingSink::new();
        sink.run_start("sync", "sync");
        sink.phase_start("baseline", 4);
        sink.round_start(1, 4, 4);
        sink.band_sweep(1, 0, 2, 10, 100);
        sink.band_sweep(1, 1, 2, 8, 90);
        sink.round_end(1, 4, 3, 200);
        sink.round_start(2, 4, 3);
        sink.round_end(2, 4, 0, 150);
        for (node, round) in [(0, 1), (1, 1), (2, 0), (3, 1)] {
            sink.node_settled(node, round);
        }
        sink.phase_end("baseline");
        sink.phase_start("change", 4);
        sink.round_start(1, 2, 1);
        sink.round_end(1, 2, 1, 50);
        sink.phase_end("change");

        let report = sink.finish();
        assert_eq!(report.phases.len(), 2);
        let base = &report.phases[0];
        assert_eq!(
            (base.rounds, base.rows_recomputed, base.rows_changed),
            (2, 8, 3)
        );
        assert_eq!(base.max_scheduled, 4);
        assert_eq!(base.peak_frontier, 4);
        let settle = base.settle.unwrap();
        assert_eq!((settle.count, settle.p50, settle.max), (4, 1, 1));
        assert_eq!(report.phases[1].max_scheduled, 2);
        assert_eq!(report.phases[1].peak_frontier, 1);
        let t = &report.timing[0];
        assert_eq!(t.round_wall_ns, 350);
        assert_eq!(t.bands.len(), 2);
        assert_eq!(
            (t.bands[1].rows, t.bands[1].weight, t.bands[1].wall_ns),
            (2, 8, 90)
        );
    }

    #[test]
    fn events_without_a_phase_open_an_anonymous_entry() {
        let mut sink = AggregatingSink::new();
        sink.round_start(1, 3, 3);
        sink.round_end(1, 3, 3, 10);
        let report = sink.finish();
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "");
        assert_eq!(report.phases[0].rounds, 1);
    }
}
