//! # dbf-telemetry — zero-cost-when-off instrumentation for the DBF engines
//!
//! Every engine in the workspace computes rich per-round state — rows swept,
//! dirty frontiers, per-node settle times, messages and bytes on the wire,
//! parallel band assignments — and, before this crate existed, threw all of
//! it away, leaving only a final digest and a wall-clock number.  This crate
//! is the instrumentation substrate that keeps it:
//!
//! * [`TelemetrySink`] — an object-safe trait of *events*.  Every method has
//!   an empty default body, and [`TelemetrySink::enabled`] defaults to
//!   `true`; the shipped [`NoopSink`] overrides it to `false`.  Kernels that
//!   accept a sink are generic over `S: TelemetrySink + ?Sized`, so the
//!   `NoopSink` path monomorphizes to straight-line code with every event
//!   call (and every `Instant::now()` guarded behind `enabled()`) compiled
//!   out, while engines can hold a `&mut dyn TelemetrySink` and branch once
//!   per phase.
//! * [`AggregatingSink`] — folds the event stream into a [`MetricsReport`]:
//!   per-(run, phase) round counts, rows recomputed/changed, a per-node
//!   settle-round histogram summarized as p50/p95/p99, and uniform message
//!   counters — **all thread-invariant**, plus a separate timing side
//!   (round wall times and per-band sweep stats) that is allowed to vary
//!   with the thread count and OS scheduling.
//! * [`TraceSink`] — a schema-versioned JSONL trace writer
//!   ([`TRACE_SCHEMA_VERSION`]): one flat, single-line JSON object per
//!   event, in the deterministic order the coordinating thread emits them,
//!   for offline replay and analysis.
//! * [`Tee`] — fan a single event stream into two sinks (e.g. aggregate
//!   *and* trace in one run).
//!
//! Beyond the per-round engine events, the sink carries the route server's
//! lifecycle: `serve_batch` (one coalesced reconvergence), `serve_degraded`
//! / `serve_restored` (a flush overran its bound-derived deadline and
//! queries were answered stale until it completed), `serve_recovery`
//! (snapshot offset and WAL events replayed after a crash),
//! `fault_injected` (the deterministic fault plane firing), and
//! `pool_health` (worker deaths, restarts and retries absorbed by the
//! supervised pool).
//!
//! The determinism contract is the load-bearing design point: events that
//! feed the `metrics` side of a report carry only quantities that are pure
//! functions of (problem, seed) — round indices, row counts, settle rounds,
//! message counters — while wall-clock durations and band geometry flow to
//! the `timing` side only.  See the repository's ARCHITECTURE.md
//! "Observability" section for the full argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod sink;
mod trace;

pub use metrics::{
    AggregatingSink, BandStats, MetricsReport, PhaseMetrics, PhaseTiming, SettleSummary,
};
pub use sink::{EventClass, MessageCounters, NoopSink, Tee, TelemetrySink};
pub use trace::{TraceSink, TRACE_SCHEMA_VERSION};
