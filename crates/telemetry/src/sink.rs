//! The [`TelemetrySink`] event trait, the disabled [`NoopSink`], the
//! fan-out [`Tee`], uniform [`MessageCounters`], and the [`EventClass`]
//! taxonomy engines use to advertise what they emit.

/// Uniform message-plane counters for one engine phase.
///
/// Every message-driven engine reports the same four counts; `bytes` is
/// `Some` only for engines with a wire encoding (rip/bgp), `None` for
/// engines whose messages are in-memory events (the simulator, the
/// threaded runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounters {
    /// Messages sent (updates plus withdrawals where the protocol has them).
    pub sent: u64,
    /// Messages delivered and processed by a receiver.
    pub delivered: u64,
    /// Messages dropped in flight (loss faults).
    pub dropped: u64,
    /// Duplicate deliveries injected by the fault model.
    pub duplicated: u64,
    /// Wire bytes sent, when the engine has a wire encoding.
    pub bytes: Option<u64>,
}

impl MessageCounters {
    /// Accumulate another phase's counters into this one.  `bytes` stays
    /// `None` only if both sides lack a wire encoding.
    pub fn merge(&mut self, other: &MessageCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.bytes = match (self.bytes, other.bytes) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
        };
    }
}

/// The classes of telemetry events an engine can emit, used by the engine
/// registry to advertise per-engine observability coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Per-round events: `round_start` / `round_end`.
    Rounds,
    /// Per-node convergence events: `node_settled`.
    Settle,
    /// Message-plane counters: `messages`.
    Messages,
    /// Parallel band profiling: `band_sweep`.
    Bands,
    /// Fault-plane injections: `fault_injected`.
    Faults,
    /// Robustness health events: `pool_health`, `serve_degraded`,
    /// `serve_restored`, `serve_recovery`.
    Health,
}

impl EventClass {
    /// Short lowercase name, as printed by `scenarios list-engines`.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Rounds => "rounds",
            EventClass::Settle => "settle",
            EventClass::Messages => "messages",
            EventClass::Bands => "bands",
            EventClass::Faults => "faults",
            EventClass::Health => "health",
        }
    }
}

/// An observer of engine execution events.
///
/// Every event method has an empty default body, so a sink implements only
/// what it cares about.  [`TelemetrySink::enabled`] defaults to `true`;
/// [`NoopSink`] overrides it to `false`, and instrumented kernels guard
/// any work done *only* to feed telemetry (wall-clock reads, per-row
/// bookkeeping) behind `enabled()` so the no-op path monomorphizes away.
///
/// The trait is object-safe: engines hold `&mut dyn TelemetrySink`, while
/// kernels are generic over `S: TelemetrySink + ?Sized` and work with both
/// a concrete `&mut NoopSink` and a `&mut dyn TelemetrySink`.
///
/// Determinism contract: every argument except the `wall_ns` durations is
/// a pure function of (problem, seed) for deterministic-counter engines —
/// sinks that feed the deterministic `metrics` report section must ignore
/// `wall_ns` (the shipped [`AggregatingSink`](crate::AggregatingSink)
/// routes it to the separate timing side).
pub trait TelemetrySink {
    /// Is this sink collecting anything?  Kernels use this to skip
    /// telemetry-only work; `NoopSink` returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// An engine run begins.  `run` is the report label (e.g. `delta[7]`),
    /// `engine` the registry name (e.g. `delta`).
    fn run_start(&mut self, _run: &str, _engine: &str) {}

    /// A phase of the current run begins on a network of `nodes` nodes.
    fn phase_start(&mut self, _label: &str, _nodes: usize) {}

    /// The current phase ended.
    fn phase_end(&mut self, _label: &str) {}

    /// A σ round (or δ time step) begins; `scheduled` rows are due for
    /// recomputation (the dirty-set size — `n` for full sweeps), of which
    /// `frontier` are on the active frontier (rows whose inputs changed
    /// last round and will actually be σ-recomputed; equal to `scheduled`
    /// for the dirty-row engines, `≤ scheduled` for full sweeps that
    /// short-circuit settled rows).
    fn round_start(&mut self, _round: u64, _scheduled: u64, _frontier: u64) {}

    /// A round ended: `recomputed` rows were swept, `changed` of them
    /// produced a different row.  `wall_ns` is non-deterministic.
    fn round_end(&mut self, _round: u64, _recomputed: u64, _changed: u64, _wall_ns: u64) {}

    /// One parallel worker band finished its sweep of `rows` rows with
    /// total degree `weight` in `wall_ns`.  Emitted by the coordinating
    /// thread in band-index order, so trace ordering stays deterministic.
    fn band_sweep(&mut self, _round: u64, _band: u64, _rows: u64, _weight: u64, _wall_ns: u64) {}

    /// Node `node`'s routing row changed for the last time in `round`
    /// (0 if it never changed).  Emitted once per node, in node order,
    /// after the phase's fixed point is reached.
    fn node_settled(&mut self, _node: usize, _round: u64) {}

    /// Message-plane counters for the current phase.
    fn messages(&mut self, _counters: &MessageCounters) {}

    /// A route-server batch reconverged: `events` churn events were
    /// coalesced into one incremental reconvergence that marked
    /// `batch_dirty` rows dirty (versus the `naive_dirty` row
    /// recomputations one-at-a-time processing would have scheduled) and
    /// settled in `rounds` dirty-σ rounds.
    fn serve_batch(
        &mut self,
        _batch: u64,
        _events: u64,
        _naive_dirty: u64,
        _batch_dirty: u64,
        _rounds: u64,
    ) {
    }

    /// A snapshot of the persistent worker pool's lifetime counters:
    /// `jobs` band jobs across `epochs` scoped hand-outs on `workers`
    /// parked threads, with `worker_share` of jobs executed on workers
    /// (the rest ran inline on the coordinator).  `worker_share` is
    /// scheduling-dependent and therefore non-deterministic.
    fn pool_utilization(&mut self, _workers: u64, _epochs: u64, _jobs: u64, _worker_share: f64) {}

    /// A scheduled fault fired: `kind` is the stable fault name (e.g.
    /// `kill_worker`, `crash`), `at` its trigger site.  Only emitted by
    /// chaos/fault-injected runs.
    fn fault_injected(&mut self, _kind: &str, _at: u64) {}

    /// Worker-pool health counters after a serve flush or chaos phase:
    /// worker `deaths`, supervisor `restarts`, and epoch `retries`.
    fn pool_health(&mut self, _workers: u64, _deaths: u64, _restarts: u64, _retries: u64) {}

    /// A flush overran its reconvergence deadline: the server enters
    /// degraded mode and answers queries from the last stable table
    /// (flagged stale) while reconvergence continues.  `flush` is the
    /// batch index, `rounds_done` how many rounds fit in the deadline.
    fn serve_degraded(&mut self, _flush: u64, _rounds_done: u64) {}

    /// A degraded flush completed its reconvergence: `rounds_total` rounds
    /// overall, after `stale_answers` queries were served stale.
    fn serve_restored(&mut self, _flush: u64, _rounds_total: u64, _stale_answers: u64) {}

    /// The server recovered from a checkpoint directory: the snapshot put
    /// it at event `offset` and `wal_events` WAL-tail events were
    /// replayed on top before the trace resumed.
    fn serve_recovery(&mut self, _offset: u64, _wal_events: u64) {}
}

/// The disabled sink: `enabled()` is `false` and every event is a no-op.
/// Kernels monomorphized against `NoopSink` compile the instrumentation
/// out entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
}

/// Fans one event stream into two sinks (e.g. aggregate and trace at the
/// same time).  Enabled if either side is.
pub struct Tee<'a> {
    /// First receiver.
    pub a: &'a mut dyn TelemetrySink,
    /// Second receiver.
    pub b: &'a mut dyn TelemetrySink,
}

impl TelemetrySink for Tee<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }
    fn run_start(&mut self, run: &str, engine: &str) {
        self.a.run_start(run, engine);
        self.b.run_start(run, engine);
    }
    fn phase_start(&mut self, label: &str, nodes: usize) {
        self.a.phase_start(label, nodes);
        self.b.phase_start(label, nodes);
    }
    fn phase_end(&mut self, label: &str) {
        self.a.phase_end(label);
        self.b.phase_end(label);
    }
    fn round_start(&mut self, round: u64, scheduled: u64, frontier: u64) {
        self.a.round_start(round, scheduled, frontier);
        self.b.round_start(round, scheduled, frontier);
    }
    fn round_end(&mut self, round: u64, recomputed: u64, changed: u64, wall_ns: u64) {
        self.a.round_end(round, recomputed, changed, wall_ns);
        self.b.round_end(round, recomputed, changed, wall_ns);
    }
    fn band_sweep(&mut self, round: u64, band: u64, rows: u64, weight: u64, wall_ns: u64) {
        self.a.band_sweep(round, band, rows, weight, wall_ns);
        self.b.band_sweep(round, band, rows, weight, wall_ns);
    }
    fn node_settled(&mut self, node: usize, round: u64) {
        self.a.node_settled(node, round);
        self.b.node_settled(node, round);
    }
    fn messages(&mut self, counters: &MessageCounters) {
        self.a.messages(counters);
        self.b.messages(counters);
    }
    fn serve_batch(
        &mut self,
        batch: u64,
        events: u64,
        naive_dirty: u64,
        batch_dirty: u64,
        rounds: u64,
    ) {
        self.a
            .serve_batch(batch, events, naive_dirty, batch_dirty, rounds);
        self.b
            .serve_batch(batch, events, naive_dirty, batch_dirty, rounds);
    }
    fn pool_utilization(&mut self, workers: u64, epochs: u64, jobs: u64, worker_share: f64) {
        self.a.pool_utilization(workers, epochs, jobs, worker_share);
        self.b.pool_utilization(workers, epochs, jobs, worker_share);
    }
    fn fault_injected(&mut self, kind: &str, at: u64) {
        self.a.fault_injected(kind, at);
        self.b.fault_injected(kind, at);
    }
    fn pool_health(&mut self, workers: u64, deaths: u64, restarts: u64, retries: u64) {
        self.a.pool_health(workers, deaths, restarts, retries);
        self.b.pool_health(workers, deaths, restarts, retries);
    }
    fn serve_degraded(&mut self, flush: u64, rounds_done: u64) {
        self.a.serve_degraded(flush, rounds_done);
        self.b.serve_degraded(flush, rounds_done);
    }
    fn serve_restored(&mut self, flush: u64, rounds_total: u64, stale_answers: u64) {
        self.a.serve_restored(flush, rounds_total, stale_answers);
        self.b.serve_restored(flush, rounds_total, stale_answers);
    }
    fn serve_recovery(&mut self, offset: u64, wal_events: u64) {
        self.a.serve_recovery(offset, wal_events);
        self.b.serve_recovery(offset, wal_events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.round_start(1, 5, 5);
        s.round_end(1, 5, 3, 42);
        s.node_settled(0, 2);
    }

    #[test]
    fn counters_merge_keeps_bytes_absent_only_when_both_sides_lack_them() {
        let mut a = MessageCounters {
            sent: 1,
            delivered: 1,
            dropped: 0,
            duplicated: 0,
            bytes: None,
        };
        a.merge(&MessageCounters::default());
        assert_eq!(a.bytes, None);
        a.merge(&MessageCounters {
            sent: 2,
            bytes: Some(64),
            ..MessageCounters::default()
        });
        assert_eq!(a.sent, 3);
        assert_eq!(a.bytes, Some(64));
    }
}
