//! The JSONL trace writer: one flat, single-line JSON object per event,
//! schema-versioned, emitted in the deterministic order the coordinating
//! thread produces events.

use std::io::{self, Write};

use crate::sink::{MessageCounters, TelemetrySink};

/// Version stamped into every trace line as `"v"`.  Bump on any change to
/// line shapes or field meanings.  v2: `round_start` carries the active
/// frontier size alongside the scheduled-row count.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Writes the event stream as JSON Lines to any [`Write`] target.
///
/// Every line is a *flat* object (scalar fields only, no nesting) starting
/// with `"v"` (schema version) and `"ev"` (event name), so consumers can
/// validate and filter with nothing more than a line-oriented JSON parser.
/// Write errors are sticky: the first one is remembered, subsequent events
/// become no-ops, and [`TraceSink::finish`] surfaces it.
pub struct TraceSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl TraceSink<io::BufWriter<std::fs::File>> {
    /// Create (truncating) a trace file at `path`.
    pub fn to_file(path: &str) -> io::Result<Self> {
        Ok(TraceSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> TraceSink<W> {
    /// Wrap an arbitrary writer.
    pub fn new(out: W) -> Self {
        TraceSink { out, error: None }
    }

    /// Flush and return the first write error, if any.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    fn line(&mut self, ev: &str, fields: &[(&str, Field<'_>)]) {
        if self.error.is_some() {
            return;
        }
        let mut buf = format!("{{\"v\":{TRACE_SCHEMA_VERSION},\"ev\":\"{ev}\"");
        for (key, value) in fields {
            buf.push_str(",\"");
            buf.push_str(key);
            buf.push_str("\":");
            match value {
                Field::U64(x) => buf.push_str(&x.to_string()),
                Field::Str(s) => {
                    buf.push('"');
                    escape_into(&mut buf, s);
                    buf.push('"');
                }
                Field::Null => buf.push_str("null"),
            }
        }
        buf.push_str("}\n");
        if let Err(e) = self.out.write_all(buf.as_bytes()) {
            self.error = Some(e);
        }
    }
}

enum Field<'a> {
    U64(u64),
    Str(&'a str),
    Null,
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

impl<W: Write> TelemetrySink for TraceSink<W> {
    fn run_start(&mut self, run: &str, engine: &str) {
        self.line(
            "run_start",
            &[("run", Field::Str(run)), ("engine", Field::Str(engine))],
        );
    }
    fn phase_start(&mut self, label: &str, nodes: usize) {
        self.line(
            "phase_start",
            &[
                ("label", Field::Str(label)),
                ("nodes", Field::U64(nodes as u64)),
            ],
        );
    }
    fn phase_end(&mut self, label: &str) {
        self.line("phase_end", &[("label", Field::Str(label))]);
    }
    fn round_start(&mut self, round: u64, scheduled: u64, frontier: u64) {
        self.line(
            "round_start",
            &[
                ("round", Field::U64(round)),
                ("scheduled", Field::U64(scheduled)),
                ("frontier", Field::U64(frontier)),
            ],
        );
    }
    fn round_end(&mut self, round: u64, recomputed: u64, changed: u64, wall_ns: u64) {
        self.line(
            "round_end",
            &[
                ("round", Field::U64(round)),
                ("recomputed", Field::U64(recomputed)),
                ("changed", Field::U64(changed)),
                ("wall_ns", Field::U64(wall_ns)),
            ],
        );
    }
    fn band_sweep(&mut self, round: u64, band: u64, rows: u64, weight: u64, wall_ns: u64) {
        self.line(
            "band_sweep",
            &[
                ("round", Field::U64(round)),
                ("band", Field::U64(band)),
                ("rows", Field::U64(rows)),
                ("weight", Field::U64(weight)),
                ("wall_ns", Field::U64(wall_ns)),
            ],
        );
    }
    fn node_settled(&mut self, node: usize, round: u64) {
        self.line(
            "node_settled",
            &[
                ("node", Field::U64(node as u64)),
                ("round", Field::U64(round)),
            ],
        );
    }
    fn serve_batch(
        &mut self,
        batch: u64,
        events: u64,
        naive_dirty: u64,
        batch_dirty: u64,
        rounds: u64,
    ) {
        self.line(
            "serve_batch",
            &[
                ("batch", Field::U64(batch)),
                ("events", Field::U64(events)),
                ("naive_dirty", Field::U64(naive_dirty)),
                ("batch_dirty", Field::U64(batch_dirty)),
                ("rounds", Field::U64(rounds)),
            ],
        );
    }
    fn pool_utilization(&mut self, workers: u64, epochs: u64, jobs: u64, worker_share: f64) {
        // The share is scheduling-dependent; quantize to per-mille so the
        // line stays integer-valued like every other trace field.
        self.line(
            "pool_utilization",
            &[
                ("workers", Field::U64(workers)),
                ("epochs", Field::U64(epochs)),
                ("jobs", Field::U64(jobs)),
                (
                    "worker_share_permille",
                    Field::U64((worker_share * 1000.0) as u64),
                ),
            ],
        );
    }
    fn fault_injected(&mut self, kind: &str, at: u64) {
        self.line(
            "fault_injected",
            &[("kind", Field::Str(kind)), ("at", Field::U64(at))],
        );
    }
    fn pool_health(&mut self, workers: u64, deaths: u64, restarts: u64, retries: u64) {
        self.line(
            "pool_health",
            &[
                ("workers", Field::U64(workers)),
                ("deaths", Field::U64(deaths)),
                ("restarts", Field::U64(restarts)),
                ("retries", Field::U64(retries)),
            ],
        );
    }
    fn serve_degraded(&mut self, flush: u64, rounds_done: u64) {
        self.line(
            "serve_degraded",
            &[
                ("flush", Field::U64(flush)),
                ("rounds_done", Field::U64(rounds_done)),
            ],
        );
    }
    fn serve_restored(&mut self, flush: u64, rounds_total: u64, stale_answers: u64) {
        self.line(
            "serve_restored",
            &[
                ("flush", Field::U64(flush)),
                ("rounds_total", Field::U64(rounds_total)),
                ("stale_answers", Field::U64(stale_answers)),
            ],
        );
    }
    fn serve_recovery(&mut self, offset: u64, wal_events: u64) {
        self.line(
            "serve_recovery",
            &[
                ("offset", Field::U64(offset)),
                ("wal_events", Field::U64(wal_events)),
            ],
        );
    }
    fn messages(&mut self, c: &MessageCounters) {
        let bytes = match c.bytes {
            Some(b) => Field::U64(b),
            None => Field::Null,
        };
        self.line(
            "messages",
            &[
                ("sent", Field::U64(c.sent)),
                ("delivered", Field::U64(c.delivered)),
                ("dropped", Field::U64(c.dropped)),
                ("duplicated", Field::U64(c.duplicated)),
                ("bytes", bytes),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(f: impl FnOnce(&mut TraceSink<&mut Vec<u8>>)) -> String {
        let mut buf = Vec::new();
        let mut sink = TraceSink::new(&mut buf);
        f(&mut sink);
        sink.finish().unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn every_line_is_flat_versioned_json() {
        let text = capture(|sink| {
            sink.run_start("delta[7]", "delta");
            sink.phase_start("baseline", 5);
            sink.round_start(1, 5, 2);
            sink.round_end(1, 5, 4, 123);
            sink.band_sweep(1, 0, 3, 9, 50);
            sink.node_settled(2, 1);
            sink.messages(&MessageCounters {
                sent: 10,
                delivered: 9,
                dropped: 1,
                duplicated: 0,
                bytes: None,
            });
            sink.phase_end("baseline");
        });
        for line in text.lines() {
            assert!(line.starts_with("{\"v\":2,\"ev\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            // Flat: no nested objects after the opening brace.
            assert!(!line[1..].contains('{'), "{line}");
        }
        assert!(text.contains("\"ev\":\"messages\",\"sent\":10"));
        assert!(text.contains("\"bytes\":null"));
        assert!(text.contains("\"scheduled\":5,\"frontier\":2"));
    }

    #[test]
    fn labels_are_escaped() {
        let text = capture(|sink| sink.phase_start("a\"b\\c\nd", 1));
        assert!(text.contains("\"label\":\"a\\\"b\\\\c\\nd\""), "{text}");
    }
}
