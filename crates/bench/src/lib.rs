//! Shared workload builders for the benchmarks and the `experiments`
//! binary.
//!
//! Every function here is deterministic in its seed so that benchmark runs
//! and experiment tables are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dbf_algebra::algebra::SplitMix64;
use dbf_algebra::prelude::*;
use dbf_bgp::algebra::random_policy;
use dbf_bgp::prelude::*;
use dbf_matrix::prelude::*;
use dbf_paths::prelude::*;
use dbf_topology::generators::{self, TierRelation};
use dbf_topology::Topology;

/// A shortest-paths problem on a connected random graph with pseudo-random
/// latencies.
pub fn shortest_paths_network(
    n: usize,
    seed: u64,
) -> (ShortestPaths, AdjacencyMatrix<ShortestPaths>) {
    let alg = ShortestPaths::new();
    let topo = generators::connected_random(n, 0.35, seed)
        .with_weights(|i, j| NatInf::fin(((i * 7 + j * 13) % 9 + 1) as u64));
    let adj = AdjacencyMatrix::from_topology(&topo);
    (alg, adj)
}

/// A widest-paths problem on a connected random graph with pseudo-random
/// capacities.
pub fn widest_paths_network(n: usize, seed: u64) -> (WidestPaths, AdjacencyMatrix<WidestPaths>) {
    let alg = WidestPaths::new();
    let topo = generators::connected_random(n, 0.35, seed)
        .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
    let adj = AdjacencyMatrix::from_topology(&topo);
    (alg, adj)
}

/// A most-reliable-paths problem on a connected random graph.
pub fn reliability_network(
    n: usize,
    seed: u64,
) -> (MostReliablePaths, AdjacencyMatrix<MostReliablePaths>) {
    let alg = MostReliablePaths::new();
    let topo = generators::connected_random(n, 0.35, seed)
        .with_weights(|i, j| alg.edge(0.5 + 0.045 * (((i * 3 + j) % 10) as f64)));
    let adj = AdjacencyMatrix::from_topology(&topo);
    (alg, adj)
}

/// A bounded hop-count (RIP-style) problem on a connected random graph.
pub fn hopcount_network(
    n: usize,
    limit: u64,
    seed: u64,
) -> (BoundedHopCount, AdjacencyMatrix<BoundedHopCount>) {
    let alg = BoundedHopCount::new(limit);
    let shape = generators::connected_random(n, 0.35, seed);
    let adj = AdjacencyMatrix::from_fn(n, |i, j| {
        if shape.has_edge(i, j) {
            Some(1u64)
        } else {
            None
        }
    });
    (alg, adj)
}

/// The path-vector lifting of shortest paths on a connected random graph.
pub fn path_vector_network(
    n: usize,
    seed: u64,
) -> (
    PathVector<ShortestPaths>,
    AdjacencyMatrix<PathVector<ShortestPaths>>,
) {
    let pv = PathVector::new(ShortestPaths::new(), n);
    let topo = generators::connected_random(n, 0.35, seed)
        .with_weights(|i, j| NatInf::fin(((i * 7 + j * 13) % 9 + 1) as u64));
    let adj = lift_topology(&pv, &topo);
    (PathVector::new(ShortestPaths::new(), n), adj)
}

/// A Section 7 policy-rich network: a connected random graph whose every
/// directed edge carries a random (safe-by-design) policy.
pub fn policy_rich_network(n: usize, seed: u64) -> (BgpAlgebra, AdjacencyMatrix<BgpAlgebra>) {
    let alg = BgpAlgebra::new(n);
    let shape = generators::connected_random(n, 0.4, seed);
    let mut rng = SplitMix64::new(seed ^ 0x5EC7);
    let topo = shape.with_weights(|_, _| random_policy(&mut rng, 2));
    let adj = alg.adjacency_from_topology(&topo);
    (alg, adj)
}

/// The same policy-rich network as a policy topology (for the protocol
/// engine).
pub fn policy_rich_topology(n: usize, seed: u64) -> Topology<dbf_bgp::policy::Policy> {
    let shape = generators::connected_random(n, 0.4, seed);
    let mut rng = SplitMix64::new(seed ^ 0x5EC7);
    shape.with_weights(|_, _| random_policy(&mut rng, 2))
}

/// A Gao-Rexford problem on a tiered provider/customer hierarchy.
pub fn gao_rexford_network(
    tiers: &[usize],
    seed: u64,
) -> (
    GaoRexford,
    AdjacencyMatrix<GaoRexford>,
    Topology<TierRelation>,
) {
    let (topo, _tier_of) = generators::tiered_hierarchy(tiers, 0.35, 0.25, seed);
    let alg = GaoRexford::new(topo.node_count());
    let adj = alg.adjacency_from_hierarchy(&topo);
    (alg, adj, topo)
}

/// Random starting states (diagonals kept trivial) drawn from an algebra's
/// route sampler — the "arbitrary starting state" of the convergence
/// theorems.
pub fn random_states<A: SampleableAlgebra>(
    alg: &A,
    n: usize,
    count: usize,
    seed: u64,
) -> Vec<RoutingState<A>> {
    let pool = alg.sample_routes(seed, 64);
    dbf_async::convergence::state_ensemble(alg, n, &pool, count, seed ^ 0x57A7E)
}

/// The length of the synchronous convergence run (`σ` iterations to the
/// fixed point) from the clean state.
pub fn sync_iterations<A: dbf_algebra::RoutingAlgebra>(alg: &A, adj: &AdjacencyMatrix<A>) -> usize {
    let n = adj.node_count();
    let out = iterate_to_fixed_point(alg, adj, &RoutingState::identity(alg, n), 4 * n * n + 32);
    assert!(
        out.converged,
        "workload did not converge within the 4n²+32 budget"
    );
    out.iterations
}

/// Pretty-print a two-column table of (label, value) rows.
pub fn print_table(title: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n== {title} ==");
    println!("{:<44} {}", header.0, header.1);
    for (a, b) in rows {
        println!("{a:<44} {b}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_converge() {
        let (alg, adj) = shortest_paths_network(8, 1);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj) = widest_paths_network(8, 2);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj) = reliability_network(8, 3);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj) = hopcount_network(8, 15, 4);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj) = path_vector_network(6, 5);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj) = policy_rich_network(6, 6);
        assert!(sync_iterations(&alg, &adj) >= 1);
        let (alg, adj, topo) = gao_rexford_network(&[2, 3, 5], 7);
        assert_eq!(adj.node_count(), topo.node_count());
        assert!(sync_iterations(&alg, &adj) >= 1);
    }

    #[test]
    fn random_states_have_trivial_diagonals() {
        let (alg, _) = hopcount_network(6, 10, 9);
        let states = random_states(&alg, 6, 3, 11);
        assert_eq!(states.len(), 4); // clean + 3 random
        for s in &states {
            for i in 0..6 {
                assert_eq!(s.get(i, i), &alg.trivial());
            }
        }
    }
}
