//! The experiment driver: regenerates every table and figure of the paper
//! (and the behavioural claims of its theorems) as printed tables.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dbf-bench --bin experiments             # run everything
//! cargo run -p dbf-bench --bin experiments -- table1   # run one experiment
//! ```
//!
//! Experiment identifiers (see DESIGN.md §3): `table1`, `table2`, `figure1`,
//! `figure2`, `eq1`, `theorem7`, `count_to_infinity`, `theorem11`,
//! `section7`, `gadgets`, `gao_rexford`, `rate`, `robustness`.

use dbf_algebra::combinators::prod::DirectProduct;
use dbf_algebra::instances::longest::LongestPaths;
use dbf_algebra::prelude::*;
use dbf_algebra::properties::PropertyReport;
use dbf_async::convergence::{check_absolute_convergence, schedule_ensemble};
use dbf_async::prelude::*;
use dbf_bench::*;
use dbf_bgp::policy::Policy;
use dbf_bgp::prelude::*;
use dbf_matrix::prelude::*;
use dbf_metric::prelude::*;
use dbf_paths::prelude::*;
use dbf_protocols::prelude::*;
use dbf_topology::generators;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("figure1") {
        figure1();
    }
    if want("figure2") {
        figure2();
    }
    if want("eq1") {
        eq1();
    }
    if want("theorem7") {
        theorem7();
    }
    if want("count_to_infinity") {
        count_to_infinity();
    }
    if want("theorem11") {
        theorem11();
    }
    if want("section7") {
        section7();
    }
    if want("gadgets") {
        gadgets();
    }
    if want("gao_rexford") {
        gao_rexford();
    }
    if want("rate") {
        rate();
    }
    if want("robustness") {
        robustness();
    }
}

/// T1 — Table 1: the algebraic property matrix of every bundled algebra.
fn table1() {
    println!("\n== Experiment T1 (Table 1): algebraic property matrix ==");
    println!("{}", PropertyReport::summary_header());
    let reports = vec![
        PropertyReport::analyse("shortest-paths", &ShortestPaths::new(), 1, 64, 16),
        PropertyReport::analyse("longest-paths", &LongestPaths::new(), 2, 64, 16),
        PropertyReport::analyse("widest-paths", &WidestPaths::new(), 3, 64, 16),
        PropertyReport::analyse("most-reliable-paths", &MostReliablePaths::new(), 4, 64, 16),
        PropertyReport::analyse_exhaustive("bounded-hop-count(15)", &BoundedHopCount::rip(), 5, 16),
        PropertyReport::analyse(
            "filtered-shortest-paths",
            &FilteredShortestPaths::new(),
            6,
            64,
            24,
        ),
        PropertyReport::analyse(
            "stratified-shortest-paths",
            &StratifiedShortestPaths::new(),
            7,
            64,
            24,
        ),
        PropertyReport::analyse("bgp-section7(5)", &BgpAlgebra::new(5), 8, 64, 24),
        PropertyReport::analyse("gao-rexford(5)", &GaoRexford::new(5), 9, 64, 24),
        PropertyReport::analyse(
            "path-vector(shortest,5)",
            &PathVector::new(ShortestPaths::new(), 5),
            10,
            64,
            24,
        ),
        PropertyReport::analyse(
            "direct-product (broken)",
            &DirectProduct::new(WidestPaths::new(), ShortestPaths::new()),
            11,
            48,
            12,
        ),
    ];
    for r in &reports {
        println!("{}", r.summary_row());
    }
    println!(
        "(✓/✗ per property; the direct product demonstrates the checkers rejecting a non-algebra)"
    );
}

/// T2 — Table 2: each example algebra solves its path problem; the fixed
/// point of the distributive algebras equals the exhaustive-path optimum.
fn table2() {
    let mut rows = Vec::new();
    for n in [6usize, 10, 14] {
        {
            let (alg, adj) = shortest_paths_network(n, 21);
            let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
            let matches = n <= 8 && out.state == exhaustive_path_optimum(&alg, &adj);
            rows.push((
                format!("shortest paths, n={n}"),
                format!(
                    "iterations={} converged={} oracle={}",
                    out.iterations,
                    out.converged,
                    if n <= 8 {
                        matches.to_string()
                    } else {
                        "skipped".into()
                    }
                ),
            ));
        }
        {
            let (alg, adj) = widest_paths_network(n, 22);
            let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
            let matches = n <= 8 && out.state == exhaustive_path_optimum(&alg, &adj);
            rows.push((
                format!("widest paths, n={n}"),
                format!(
                    "iterations={} converged={} oracle={}",
                    out.iterations,
                    out.converged,
                    if n <= 8 {
                        matches.to_string()
                    } else {
                        "skipped".into()
                    }
                ),
            ));
        }
        {
            let (alg, adj) = reliability_network(n, 23);
            let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
            rows.push((
                format!("most reliable paths, n={n}"),
                format!("iterations={} converged={}", out.iterations, out.converged),
            ));
        }
        {
            let (alg, adj) = hopcount_network(n, 15, 24);
            let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 200);
            rows.push((
                format!("bounded hop count, n={n}"),
                format!("iterations={} converged={}", out.iterations, out.converged),
            ));
        }
    }
    print_table(
        "Experiment T2 (Table 2): example algebras solve their path problems",
        ("workload", "result"),
        &rows,
    );
}

/// F1 — Figure 1: the implication chain, exercised per algebra.
fn figure1() {
    println!("\n== Experiment F1 (Figure 1): strictly increasing ⇒ ultrametric ⇒ contraction ⇒ absolute convergence ==");
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>12}",
        "algebra", "strictly↑", "ultrametric", "contraction", "abs.conv"
    );

    // Distance-vector instance: bounded hop count.
    {
        let n = 5;
        let (alg, adj) = hopcount_network(n, 8, 31);
        let routes = alg.all_routes();
        let strictly = dbf_algebra::properties::check_strictly_increasing(
            &alg,
            &alg.sample_edges(1, 8),
            &routes,
        )
        .is_ok();
        let metric = HeightMetric::new(alg);
        let ultra = check_ultrametric_axioms::<BoundedHopCount, _>(&metric, &routes).is_ok();
        let states = random_states(&alg, n, 6, 33);
        let contraction =
            check_strictly_contracting_on_orbits(&alg, &adj, &metric, &states).is_ok();
        let schedules = schedule_ensemble(n, 300, 3, 35);
        let absolute = check_absolute_convergence(&alg, &adj, &states, &schedules).is_ok();
        println!(
            "{:<30} {:>10} {:>12} {:>12} {:>12}",
            "hop-count (Theorem 7)", strictly, ultra, contraction, absolute
        );
    }

    // Path-vector instance: the Section 7 algebra.
    {
        let n = 4;
        let (alg, adj) = policy_rich_network(n, 37);
        let routes = alg.sample_routes(2, 48);
        let strictly = dbf_algebra::properties::check_strictly_increasing(
            &alg,
            &alg.sample_edges(2, 16),
            &routes,
        )
        .is_ok();
        let metric = PathVectorMetric::new(alg, &adj);
        let ultra = check_ultrametric_axioms::<BgpAlgebra, _>(&metric, &routes).is_ok();
        let states = random_states(&alg, n, 5, 39);
        let contraction =
            check_strictly_contracting_on_orbits(&alg, &adj, &metric, &states).is_ok();
        let schedules = schedule_ensemble(n, 250, 3, 41);
        let absolute = check_absolute_convergence(&alg, &adj, &states, &schedules).is_ok();
        println!(
            "{:<30} {:>10} {:>12} {:>12} {:>12}",
            "bgp-section7 (Theorem 11)", strictly, ultra, contraction, absolute
        );
    }

    // Negative control: the DISAGREE gadget breaks the chain at the first
    // link and at the last.
    {
        let alg = SppAlgebra::disagree();
        let adj = alg.adjacency();
        let mut routes = vec![alg.trivial(), alg.invalid()];
        routes.push(alg.extend(&alg.edge(1, 0), &alg.trivial()));
        routes.push(alg.extend(&alg.edge(2, 0), &alg.trivial()));
        let edges: Vec<_> = (0..3)
            .flat_map(|i| (0..3).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| alg.edge(i, j))
            .collect();
        let increasing = dbf_algebra::properties::check_increasing(&alg, &edges, &routes).is_ok();
        let x0 = RoutingState::identity(&alg, 3);
        let mut a = Schedule::synchronous(3, 50);
        let mut b = Schedule::synchronous(3, 50);
        for t in 1..=8 {
            a.set_activation(t, 2, false);
            b.set_activation(t, 1, false);
        }
        let absolute = check_absolute_convergence(&alg, &adj, &[x0], &[a, b]).is_ok();
        println!(
            "{:<30} {:>10} {:>12} {:>12} {:>12}",
            "DISAGREE gadget (control)", increasing, "—", "—", absolute
        );
    }
}

/// F2 — Figure 2: the structure of the path-vector ultrametric.
fn figure2() {
    let mut rows = Vec::new();
    for n in [3usize, 4, 5] {
        let (alg, adj) = path_vector_network(n, 43);
        let metric = PathVectorMetric::new(alg, &adj);
        let alg = PathVector::new(ShortestPaths::new(), n);
        let mut routes = alg.sample_routes(5, 48);
        routes.extend(metric.consistent_routes().iter().take(24).cloned());
        let axioms =
            check_ultrametric_axioms::<PathVector<ShortestPaths>, _>(&metric, &routes).is_ok();
        rows.push((
            format!("path-vector(shortest), n={n}"),
            format!(
                "|S_c|=H_c={} H_i={} bound={} M1–M3+bounded={}",
                metric.consistent_height_max(),
                metric.inconsistent_height_max(),
                metric.bound(),
                axioms
            ),
        ));
    }
    print_table(
        "Experiment F2 (Figure 2): consistent/inconsistent ultrametric structure",
        ("metric", "quantities"),
        &rows,
    );
}

/// E1 — the Equation 1 distributivity violation of Section 1.
fn eq1() {
    let alg = FilteredShortestPaths::new();
    let f = FilterPolicy::if_below(5, FilterPolicy::Add(100), FilterPolicy::Add(1));
    let a = NatInf::fin(3);
    let b = NatInf::fin(7);
    let lhs = alg.extend(&f, &alg.choice(&a, &b));
    let rhs = alg.choice(&alg.extend(&f, &a), &alg.extend(&f, &b));
    print_table(
        "Experiment E1 (Section 1, Eq 1): conditional policies violate distributivity",
        ("expression", "value"),
        &[
            ("policy f".into(), "if r < 5 then r+100 else r+1".into()),
            ("a, b".into(), format!("{a:?}, {b:?}")),
            ("sender side   f(a ⊕ b)".into(), format!("{lhs:?}")),
            ("receiver side f(a) ⊕ f(b)".into(), format!("{rhs:?}")),
            ("distributive?".into(), format!("{}", lhs == rhs)),
            (
                "strictly increasing still?".into(),
                format!(
                    "{}",
                    dbf_algebra::properties::check_strictly_increasing(
                        &alg,
                        &[f],
                        &alg.sample_routes(1, 64)
                    )
                    .is_ok()
                ),
            ),
        ],
    );
}

/// E2 — Theorem 7: distance-vector absolute convergence.
fn theorem7() {
    let mut rows = Vec::new();
    for n in [5usize, 8, 12] {
        let (alg, adj) = hopcount_network(n, 15, 51);
        let states = random_states(&alg, n, 4, 53);
        let schedules = schedule_ensemble(n, 400, 4, 55);
        let runs = states.len() * schedules.len();
        let result = check_absolute_convergence(&alg, &adj, &states, &schedules);
        rows.push((
            format!("hop-count(15) on G(n={n})"),
            match result {
                Ok(r) => format!(
                    "unique fixed point over {} runs ({} states × {} schedules)",
                    r.runs,
                    states.len(),
                    schedules.len()
                ),
                Err(e) => format!("FAILED after {runs} runs: {e}"),
            },
        ));
    }
    print_table(
        "Experiment E2 (Theorem 7): finite strictly increasing ⇒ absolute convergence of δ",
        ("workload", "outcome"),
        &rows,
    );
}

/// E3 — count-to-infinity and its cures.
fn count_to_infinity() {
    // unbounded DV
    let alg = ShortestPaths::new();
    let adj = AdjacencyMatrix::<ShortestPaths>::from_fn(3, |i, j| {
        if matches!((i, j), (0, 1) | (1, 0)) {
            Some(NatInf::fin(1))
        } else {
            None
        }
    });
    let mut stale = RoutingState::identity(&alg, 3);
    stale.set(0, 2, NatInf::fin(5));
    stale.set(1, 2, NatInf::fin(5));
    let unbounded = run_delta(&alg, &adj, &stale, &Schedule::synchronous(3, 300));

    // RIP cure
    let mut shape = dbf_topology::Topology::new(3);
    shape.set_link(0, 1, ());
    let rip = RipEngine::new(
        &shape,
        RipConfig {
            split_horizon: SplitHorizon::Off,
            route_timeout: u64::MAX / 4,
            max_time: 20_000,
            ..RipConfig::default()
        },
    )
    .with_stale_route(0, 2, NatInf::fin(5), Some(1))
    .with_stale_route(1, 2, NatInf::fin(5), Some(0))
    .run();

    // path-vector cure
    let pv = PathVector::new(ShortestPaths::new(), 3);
    let mut topo3 = dbf_topology::Topology::new(3);
    topo3.set_link(0, 1, NatInf::fin(1));
    let adj_pv = lift_topology(&pv, &topo3);
    let stale_pv = RoutingState::from_fn(3, |i, j| {
        if i == j {
            pv.trivial()
        } else if j == 2 && i < 2 {
            pv.lift_route(
                NatInf::fin(5),
                SimplePath::from_nodes(vec![i, 1 - i, 2]).unwrap(),
            )
        } else {
            pv.invalid()
        }
    });
    let pv_out = run_delta(&pv, &adj_pv, &stale_pv, &Schedule::synchronous(3, 50));

    print_table(
        "Experiment E3 (Section 5 motivation): count-to-infinity and its cures",
        ("protocol", "behaviour from the stale state"),
        &[
            (
                "unbounded distance-vector".into(),
                format!(
                    "after 300 rounds metric(0→2) = {:?}, stable = {}",
                    unbounded.final_state.get(0, 2),
                    unbounded.sigma_stable
                ),
            ),
            (
                "RIP (hop limit 15)".into(),
                format!(
                    "metric(0→2) = {:?}, converged = {}, table changes = {}",
                    rip.final_state.get(0, 2),
                    rip.converged,
                    rip.stats.table_changes
                ),
            ),
            (
                "path-vector lifting".into(),
                format!(
                    "route(0→2) = {:?}, stable = {}, quiescent from step {:?}",
                    pv_out.final_state.get(0, 2),
                    pv_out.sigma_stable,
                    pv_out.quiescent_from
                ),
            ),
        ],
    );
}

/// E4 — Theorem 11: path-vector absolute convergence from inconsistent
/// states.
fn theorem11() {
    let mut rows = Vec::new();
    for n in [4usize, 6, 8] {
        let (alg, adj) = path_vector_network(n, 61);
        let states = random_states(&alg, n, 3, 63);
        let schedules = schedule_ensemble(n, 350, 3, 65);
        let result = check_absolute_convergence(&alg, &adj, &states, &schedules);
        rows.push((
            format!("path-vector(shortest) on G(n={n})"),
            match result {
                Ok(r) => format!("unique fixed point over {} runs", r.runs),
                Err(e) => format!("FAILED: {e}"),
            },
        ));
    }
    // widest paths is increasing but not strictly — the lifting still works
    {
        let n = 5;
        let pv = PathVector::new(WidestPaths::new(), n);
        let topo = generators::connected_random(n, 0.4, 67)
            .with_weights(|i, j| NatInf::fin(((i + j) % 30 + 5) as u64));
        let adj = lift_topology(&pv, &topo);
        let pv = PathVector::new(WidestPaths::new(), n);
        let states = random_states(&pv, n, 3, 69);
        let schedules = schedule_ensemble(n, 350, 3, 71);
        let result = check_absolute_convergence(&pv, &adj, &states, &schedules);
        rows.push((
            format!("path-vector(widest) on G(n={n})"),
            match result {
                Ok(r) => format!("unique fixed point over {} runs", r.runs),
                Err(e) => format!("FAILED: {e}"),
            },
        ));
    }
    print_table(
        "Experiment E4 (Theorem 11): increasing path algebras ⇒ absolute convergence of δ",
        ("workload", "outcome"),
        &rows,
    );
}

/// E5 — the Section 7 safe-by-design algebra under arbitrary policies,
/// protocol machinery and faults.
fn section7() {
    let mut rows = Vec::new();
    for seed in 0..4u64 {
        let n = 7;
        let (alg, adj) = policy_rich_network(n, 100 + seed);
        let states = random_states(&alg, n, 2, seed);
        let schedules = schedule_ensemble(n, 300, 3, seed ^ 0xF);
        let delta_ok = check_absolute_convergence(&alg, &adj, &states, &schedules).is_ok();

        let topo = policy_rich_topology(n, 100 + seed);
        let engine = BgpEngine::new(
            &topo,
            BgpConfig {
                seed,
                session_resets: 3,
                ..BgpConfig::default()
            },
        )
        .run();
        rows.push((
            format!("random policies (seed {seed}), n={n}"),
            format!(
                "δ absolute convergence = {delta_ok}; engine converged = {} ({} updates, {} withdrawals)",
                engine.converged,
                engine.stats.updates_sent,
                engine.stats.withdrawals_sent
            ),
        ));
    }
    print_table(
        "Experiment E5 (Section 7): the safe-by-design policy language cannot break convergence",
        ("configuration", "outcome"),
        &rows,
    );
}

/// E6 — what unconstrained BGP permits: wedgies and oscillation.
fn gadgets() {
    // DISAGREE under two schedules
    let alg = SppAlgebra::disagree();
    let adj = alg.adjacency();
    let x0 = RoutingState::identity(&alg, 3);
    let mut a = Schedule::synchronous(3, 60);
    let mut b = Schedule::synchronous(3, 60);
    for t in 1..=10 {
        a.set_activation(t, 2, false);
        b.set_activation(t, 1, false);
    }
    let out_a = run_delta(&alg, &adj, &x0, &a);
    let out_b = run_delta(&alg, &adj, &x0, &b);

    // BAD GADGET
    let bad = SppAlgebra::bad_gadget();
    let bad_out = iterate_to_fixed_point(
        &bad,
        &bad.adjacency(),
        &RoutingState::identity(&bad, 4),
        1_000,
    );

    // GOOD GADGET
    let good = SppAlgebra::good_gadget();
    let good_out = iterate_to_fixed_point(
        &good,
        &good.adjacency(),
        &RoutingState::identity(&good, 4),
        1_000,
    );

    print_table(
        "Experiment E6 (Section 1 / related work): unconstrained policies permit wedgies and oscillation",
        ("gadget", "behaviour"),
        &[
            (
                "DISAGREE, node 1 first".into(),
                format!("stable={}, 2→0 via {:?}", out_a.sigma_stable, out_a.final_state.get(2, 0).simple_path().unwrap()),
            ),
            (
                "DISAGREE, node 2 first".into(),
                format!("stable={}, 2→0 via {:?}", out_b.sigma_stable, out_b.final_state.get(2, 0).simple_path().unwrap()),
            ),
            (
                "DISAGREE verdict".into(),
                format!("two distinct stable states (wedgie) = {}", out_a.final_state != out_b.final_state),
            ),
            (
                "BAD GADGET".into(),
                format!("converged after 1000 synchronous rounds = {}", bad_out.converged),
            ),
            (
                "GOOD GADGET".into(),
                format!("converged = {} in {} rounds", good_out.converged, good_out.iterations),
            ),
        ],
    );
}

/// E7 — Gao-Rexford inside the increasing framework.
fn gao_rexford() {
    let mut rows = Vec::new();
    for (tiers, seed) in [(vec![2usize, 4, 8], 81u64), (vec![3, 6, 12, 24], 83)] {
        let (alg, adj, topo) = gao_rexford_network(&tiers, seed);
        let n = topo.node_count();
        let iterations = sync_iterations(&alg, &adj);
        let states = random_states(&alg, n, 2, seed);
        let schedules = schedule_ensemble(n, 400, 2, seed ^ 0x3);
        let absolute = check_absolute_convergence(&alg, &adj, &states, &schedules).is_ok();
        rows.push((
            format!("hierarchy {tiers:?} (n={n})"),
            format!("σ iterations={iterations}, absolute convergence={absolute}"),
        ));
    }
    // Increasing is strictly more general: the GR algebra converges even on
    // a topology with a provider/customer *cycle*, which the original
    // Gao-Rexford argument excludes.
    {
        let n = 3;
        let alg = GaoRexford::new(n);
        let mut adj = AdjacencyMatrix::<GaoRexford>::empty(n);
        // 0 is 1's provider, 1 is 2's provider, 2 is 0's provider: a cycle.
        for (prov, cust) in [(0usize, 1usize), (1, 2), (2, 0)] {
            adj.set(
                prov,
                cust,
                Some(alg.edge(prov, cust, Relationship::Customer)),
            );
            adj.set(
                cust,
                prov,
                Some(alg.edge(cust, prov, Relationship::Provider)),
            );
        }
        let out = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, n), 100);
        rows.push((
            "provider cycle 0→1→2→0 (violates GR's topology assumption)".into(),
            format!(
                "still converges = {} in {} iterations",
                out.converged, out.iterations
            ),
        ));
    }
    print_table(
        "Experiment E7 (Gao-Rexford): GR conditions implemented inside the increasing framework",
        ("configuration", "outcome"),
        &rows,
    );
}

/// E8 — convergence rate (Section 8.1): σ iterations vs n, and path-hunting
/// message complexity after a failure.
fn rate() {
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 16, 20] {
        // distributive reference: shortest paths on a line (diameter n-1)
        let alg = ShortestPaths::new();
        let line = generators::line(n).with_weights(|_, _| NatInf::fin(1));
        let adj = AdjacencyMatrix::from_topology(&line);
        let distributive = sync_iterations(&alg, &adj);

        // policy-rich: the Section 7 algebra on the same line with random
        // policies
        let (bgp_alg, bgp_adj) = {
            let alg = BgpAlgebra::new(n);
            let mut rng = dbf_algebra::algebra::SplitMix64::new(n as u64);
            let topo = generators::line(n)
                .with_weights(|_, _| dbf_bgp::algebra::random_policy(&mut rng, 1));
            let adj = alg.adjacency_from_topology(&topo);
            (alg, adj)
        };
        let policy_rich = sync_iterations(&bgp_alg, &bgp_adj);

        // worst observed over adversarial stale states for the hop-count
        // algebra with limit scaled to n (the count-to-the-limit regime)
        let (hop_alg, hop_adj) = {
            let alg = BoundedHopCount::new(n as u64 + 2);
            let line = generators::line(n);
            let adj = AdjacencyMatrix::<BoundedHopCount>::from_fn(n, |i, j| {
                if line.has_edge(i, j) {
                    Some(1u64)
                } else {
                    None
                }
            });
            (alg, adj)
        };
        let mut worst_from_stale = 0usize;
        for seed in 0..4u64 {
            for x0 in random_states(&hop_alg, n, 2, seed) {
                let out = iterate_to_fixed_point(&hop_alg, &hop_adj, &x0, 8 * n * n + 64);
                if out.converged {
                    worst_from_stale = worst_from_stale.max(out.iterations);
                }
            }
        }

        rows.push((
            format!("n={n}"),
            format!(
                "shortest(line)={distributive}  bgp-policies(line)={policy_rich}  hop-count worst-from-stale={worst_from_stale}"
            ),
        ));
    }
    print_table(
        "Experiment E8 (Section 8.1): synchronous iterations to the fixed point",
        ("network size", "σ iterations"),
        &rows,
    );

    // message complexity of path hunting after a failure in the BGP engine
    let mut rows = Vec::new();
    for n in [4usize, 6, 8, 10] {
        let shape = generators::complete(n);
        let topo = dbf_protocols::bgp::uniform_policies(&shape, Policy::identity());
        let baseline = BgpEngine::new(
            &topo,
            BgpConfig {
                seed: 7,
                ..BgpConfig::default()
            },
        )
        .run();
        rows.push((
            format!("full mesh n={n}"),
            format!(
                "updates={} withdrawals={} table changes={}",
                baseline.stats.updates_sent,
                baseline.stats.withdrawals_sent,
                baseline.stats.table_changes
            ),
        ));
    }
    print_table(
        "Experiment E8b: message complexity of the BGP-like engine on full meshes",
        ("network", "traffic"),
        &rows,
    );
}

/// E9 — robustness of the message-level simulator to loss/duplication
/// sweeps.
fn robustness() {
    let mut rows = Vec::new();
    let (alg, adj) = policy_rich_network(7, 91);
    let reference = iterate_to_fixed_point(&alg, &adj, &RoutingState::identity(&alg, 7), 300);
    for loss in [0.0f64, 0.1, 0.2, 0.3, 0.5] {
        let mut agree = 0;
        let mut messages = 0u64;
        let seeds = 4u64;
        for seed in 0..seeds {
            let cfg = SimConfig {
                loss_prob: loss,
                duplicate_prob: loss / 2.0,
                min_delay: 1,
                max_delay: 15,
                seed,
                ..SimConfig::default()
            };
            let out = EventSim::new(&alg, &adj, cfg).run();
            if out.sigma_stable && out.final_state == reference.state {
                agree += 1;
            }
            messages += out.stats.sent;
        }
        rows.push((
            format!("loss={loss:.1} duplication={:.2}", loss / 2.0),
            format!(
                "agree-with-fixed-point {agree}/{seeds}, mean messages {}",
                messages / seeds
            ),
        ));
    }
    print_table(
        "Experiment E9 (Section 3): convergence under loss/duplication/reordering sweeps",
        ("fault injection", "outcome"),
        &rows,
    );
}
