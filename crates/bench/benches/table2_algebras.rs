//! Bench T2 (Table 2): synchronous fixed-point computation for each of the
//! paper's example algebras on the same reference network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_bench::*;
use dbf_matrix::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_algebras");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    let n = 16;

    group.bench_with_input(BenchmarkId::new("shortest_paths", n), &n, |b, &n| {
        let (alg, adj) = shortest_paths_network(n, 1);
        let x0 = RoutingState::identity(&alg, n);
        b.iter(|| iterate_to_fixed_point(&alg, &adj, &x0, 200))
    });
    group.bench_with_input(BenchmarkId::new("widest_paths", n), &n, |b, &n| {
        let (alg, adj) = widest_paths_network(n, 2);
        let x0 = RoutingState::identity(&alg, n);
        b.iter(|| iterate_to_fixed_point(&alg, &adj, &x0, 200))
    });
    group.bench_with_input(BenchmarkId::new("most_reliable", n), &n, |b, &n| {
        let (alg, adj) = reliability_network(n, 3);
        let x0 = RoutingState::identity(&alg, n);
        b.iter(|| iterate_to_fixed_point(&alg, &adj, &x0, 200))
    });
    group.bench_with_input(BenchmarkId::new("bounded_hop_count", n), &n, |b, &n| {
        let (alg, adj) = hopcount_network(n, 15, 4);
        let x0 = RoutingState::identity(&alg, n);
        b.iter(|| iterate_to_fixed_point(&alg, &adj, &x0, 200))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
