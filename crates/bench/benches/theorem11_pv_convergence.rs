//! Bench E4 (Theorem 11): asynchronous convergence of increasing path
//! algebras (the path-vector lifting and the Section 7 algebra) from
//! inconsistent starting states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_async::prelude::*;
use dbf_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem11_pv_convergence");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for n in [4usize, 6, 8] {
        let (alg, adj) = path_vector_network(n, 61);
        let stale = random_states(&alg, n, 1, 63).pop().unwrap();
        let sched = Schedule::random(n, 300, ScheduleParams::harsh(), 65);
        group.bench_with_input(BenchmarkId::new("pathvec_shortest_delta", n), &n, |b, _| {
            b.iter(|| {
                let out = run_delta(&alg, &adj, &stale, &sched);
                assert!(out.sigma_stable);
                out.activations
            })
        });

        let (bgp, bgp_adj) = policy_rich_network(n, 67);
        let bgp_stale = random_states(&bgp, n, 1, 69).pop().unwrap();
        group.bench_with_input(BenchmarkId::new("bgp_section7_delta", n), &n, |b, _| {
            b.iter(|| {
                let out = run_delta(&bgp, &bgp_adj, &bgp_stale, &sched);
                assert!(out.sigma_stable);
                out.activations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
