//! Bench E5 (Section 7): the BGP-like protocol engine under randomly
//! generated safe-by-design policies, with and without session resets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_bench::*;
use dbf_protocols::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("section7_policy_rich");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    for n in [6usize, 10] {
        let topo = policy_rich_topology(n, 100 + n as u64);
        group.bench_with_input(BenchmarkId::new("bgp_engine_calm", n), &n, |b, _| {
            b.iter(|| {
                let report = BgpEngine::new(
                    &topo,
                    BgpConfig {
                        seed: 1,
                        ..BgpConfig::default()
                    },
                )
                .run();
                assert!(report.converged);
                report.stats.updates_sent
            })
        });
        group.bench_with_input(BenchmarkId::new("bgp_engine_with_resets", n), &n, |b, _| {
            b.iter(|| {
                let report = BgpEngine::new(
                    &topo,
                    BgpConfig {
                        seed: 2,
                        session_resets: 4,
                        ..BgpConfig::default()
                    },
                )
                .run();
                assert!(report.converged);
                report.stats.updates_sent
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
