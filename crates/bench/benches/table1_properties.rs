//! Bench T1 (Table 1): cost of the "efficiently verifiable" algebraic
//! property checks — the paper's desideratum 4 is that these run in
//! polynomial time, and here they are measured directly.

use criterion::{criterion_group, criterion_main, Criterion};
use dbf_algebra::prelude::*;
use dbf_algebra::properties::PropertyReport;
use dbf_bgp::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_properties");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);

    group.bench_function("shortest_paths_sampled", |b| {
        let alg = ShortestPaths::new();
        b.iter(|| PropertyReport::analyse("shortest", &alg, 1, 64, 16))
    });
    group.bench_function("hopcount_exhaustive", |b| {
        let alg = BoundedHopCount::rip();
        b.iter(|| PropertyReport::analyse_exhaustive("hopcount", &alg, 2, 16))
    });
    group.bench_function("bgp_section7_sampled", |b| {
        let alg = BgpAlgebra::new(6);
        b.iter(|| PropertyReport::analyse("bgp", &alg, 3, 48, 16))
    });
    group.bench_function("stratified_sampled", |b| {
        let alg = StratifiedShortestPaths::new();
        b.iter(|| PropertyReport::analyse("stratified", &alg, 4, 64, 16))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
