//! Bench E9 (Section 3): the message-level simulator under increasing
//! loss/duplication/reordering, measuring how much extra work fault
//! injection causes while convergence itself never breaks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_async::prelude::*;
use dbf_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_robustness");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    let (alg, adj) = policy_rich_network(7, 91);
    for loss in [0u32, 10, 30, 50] {
        group.bench_with_input(
            BenchmarkId::new("event_sim_loss_pct", loss),
            &loss,
            |b, &loss| {
                let cfg = SimConfig {
                    loss_prob: loss as f64 / 100.0,
                    duplicate_prob: loss as f64 / 200.0,
                    min_delay: 1,
                    max_delay: 15,
                    seed: 5,
                    ..SimConfig::default()
                };
                b.iter(|| {
                    let out = EventSim::new(&alg, &adj, cfg).run();
                    assert!(out.sigma_stable);
                    out.stats.sent
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
