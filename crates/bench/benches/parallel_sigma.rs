//! Bench: sequential vs. sharded-row-sweep σ fixed-point iteration on
//! leaf-spine fabrics (the `widest-fabric-scaling` workload).
//!
//! On a multi-core machine the `threads=4` rows should show the intra-run
//! speedup the parallel engine exists for; on a single-core CI runner they
//! instead document the (small) sharding overhead.  Either way the
//! *outcomes* are asserted identical — the speedup is free of semantic
//! risk by construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use std::time::Duration;

fn widest_fabric(n: usize) -> (WidestPaths, AdjacencyMatrix<WidestPaths>) {
    let alg = WidestPaths::new();
    let topo = generators::leaf_spine(4, n - 4)
        .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
    (alg, AdjacencyMatrix::from_topology(&topo))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sigma");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(3);

    for n in [100usize, 1000] {
        let (alg, adj) = widest_fabric(n);
        let clean = RoutingState::identity(&alg, n);
        let reference = iterate_to_fixed_point(&alg, &adj, &clean, 4 * n);
        assert!(reference.converged);

        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| iterate_to_fixed_point(&alg, &adj, &clean, 4 * n).iterations)
        });
        for threads in [2usize, 4] {
            let out = par_iterate_to_fixed_point(&alg, &adj, &clean, 4 * n, threads);
            assert_eq!(out.state, reference.state, "bit-identical at t={threads}");
            assert_eq!(out.iterations, reference.iterations);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_t{threads}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        par_iterate_to_fixed_point(&alg, &adj, &clean, 4 * n, threads).iterations
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
