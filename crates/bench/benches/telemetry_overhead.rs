//! Bench: the cost of observation — σ fixed-point iteration bare, through
//! the traced kernel with the disabled [`NoopSink`], and with the
//! [`AggregatingSink`] collecting per-round metrics and settle histograms.
//!
//! The telemetry layer's core promise is *zero cost when off*: the
//! `NoopSink` rows must be indistinguishable from the untraced baseline
//! (the disabled path monomorphizes away behind `enabled()`), and even the
//! aggregating rows should stay within a few percent — the interesting
//! comparison CI watches for.  All three paths are asserted to produce the
//! identical fixed point and iteration count before any timing happens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use dbf_telemetry::{AggregatingSink, NoopSink, TelemetrySink};
use dbf_topology::generators;
use std::time::Duration;

fn widest_fabric(n: usize) -> (WidestPaths, AdjacencyMatrix<WidestPaths>) {
    let alg = WidestPaths::new();
    let topo = generators::leaf_spine(4, n - 4)
        .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
    (alg, AdjacencyMatrix::from_topology(&topo))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(3);

    let n = 1000usize;
    let (alg, adj) = widest_fabric(n);
    let clean = RoutingState::identity(&alg, n);

    // Observation must not perturb: all three paths land on the same
    // fixed point in the same number of rounds.
    let bare = iterate_to_fixed_point(&alg, &adj, &clean, 4 * n);
    assert!(bare.converged);
    let mut noop = NoopSink;
    let quiet = iterate_traced(&alg, &adj, &clean, 4 * n, &mut noop);
    assert_eq!(quiet.state, bare.state);
    assert_eq!(quiet.iterations, bare.iterations);
    let mut agg = AggregatingSink::new();
    agg.run_start("sync", "sync");
    agg.phase_start("bench", n);
    let loud = iterate_traced(&alg, &adj, &clean, 4 * n, &mut agg);
    agg.phase_end("bench");
    assert_eq!(loud.state, bare.state);
    assert_eq!(loud.iterations, bare.iterations);
    let report = agg.finish();
    assert_eq!(report.phases.len(), 1);
    assert_eq!(report.phases[0].rounds, bare.iterations as u64 + 1);

    group.bench_with_input(BenchmarkId::new("untraced", n), &n, |b, _| {
        b.iter(|| iterate_to_fixed_point(&alg, &adj, &clean, 4 * n).iterations)
    });
    group.bench_with_input(BenchmarkId::new("noop_sink", n), &n, |b, _| {
        b.iter(|| {
            let mut tel = NoopSink;
            iterate_traced(&alg, &adj, &clean, 4 * n, &mut tel).iterations
        })
    });
    group.bench_with_input(BenchmarkId::new("aggregating_sink", n), &n, |b, _| {
        b.iter(|| {
            let mut tel = AggregatingSink::new();
            tel.run_start("sync", "sync");
            tel.phase_start("bench", n);
            let out = iterate_traced(&alg, &adj, &clean, 4 * n, &mut tel);
            tel.phase_end("bench");
            out.iterations
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
