//! Bench F1 (Figure 1): cost of checking each link of the implication chain
//! strictly-increasing ⇒ ultrametric conditions ⇒ contraction ⇒ absolute
//! convergence, for the distance-vector (Theorem 7) instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dbf_algebra::prelude::*;
use dbf_async::convergence::{check_absolute_convergence, schedule_ensemble};
use dbf_bench::*;
use dbf_metric::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_implications");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    let n = 5;
    let (alg, adj) = hopcount_network(n, 8, 31);
    let routes = alg.all_routes();
    let edges = alg.sample_edges(1, 8);
    let metric = HeightMetric::new(alg);
    let states = random_states(&alg, n, 6, 33);
    let schedules = schedule_ensemble(n, 200, 2, 35);

    group.bench_function("a_strictly_increasing_check", |b| {
        b.iter(|| dbf_algebra::properties::check_strictly_increasing(&alg, &edges, &routes))
    });
    group.bench_function("b_ultrametric_axioms", |b| {
        b.iter(|| check_ultrametric_axioms::<BoundedHopCount, _>(&metric, &routes))
    });
    group.bench_function("c_strict_contraction_on_orbits", |b| {
        b.iter(|| check_strictly_contracting_on_orbits(&alg, &adj, &metric, &states))
    });
    group.bench_function("d_absolute_convergence_ensemble", |b| {
        b.iter(|| check_absolute_convergence(&alg, &adj, &states, &schedules))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
