//! Bench E2 (Theorem 7): asynchronous convergence of the finite strictly
//! increasing hop-count algebra under harsh schedules, as a function of
//! network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_async::prelude::*;
use dbf_bench::*;
use dbf_matrix::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem7_dv_convergence");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for n in [4usize, 8, 16] {
        let (alg, adj) = hopcount_network(n, 15, 51);
        let garbage = random_states(&alg, n, 1, 53).pop().unwrap();
        let sched = Schedule::random(n, 300, ScheduleParams::harsh(), 55);
        group.bench_with_input(
            BenchmarkId::new("delta_harsh_from_garbage", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let out = run_delta(&alg, &adj, &garbage, &sched);
                    assert!(out.sigma_stable);
                    out.activations
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sigma_from_clean", n), &n, |b, _| {
            let clean = RoutingState::identity(&alg, n);
            b.iter(|| iterate_to_fixed_point(&alg, &adj, &clean, 200).iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
