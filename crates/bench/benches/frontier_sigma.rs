//! Bench: frontier-driven change-phase reconvergence vs. the full-scan
//! baseline it replaced, on the `widest-fabric-scaling` workload.
//!
//! The scenario is the incremental engine's bread and butter: the fabric
//! has converged, one spine–leaf link fails, and the fixed point must be
//! re-established.  The `full_scan` rows recompute every row every round
//! (the pre-frontier σ loop); the `frontier` rows walk the epoch-stamped
//! dirty work queue and touch only rows whose import neighbourhood can
//! actually have changed.  Both reach the **identical** fixed point — the
//! assertions run before any timing — and the frontier side must do at
//! least 2× fewer row recomputations at every size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use std::time::Duration;

fn widest_fabric(n: usize) -> (WidestPaths, AdjacencyMatrix<WidestPaths>) {
    let alg = WidestPaths::new();
    let topo = generators::leaf_spine(4, n - 4)
        .with_weights(|i, j| NatInf::fin(((i * 11 + j * 5) % 90 + 10) as u64));
    (alg, AdjacencyMatrix::from_topology(&topo))
}

/// Drop the bidirectional spine–leaf link `0 — 6`.
fn fail_link(adj: &AdjacencyMatrix<WidestPaths>) -> AdjacencyMatrix<WidestPaths> {
    AdjacencyMatrix::from_fn(adj.node_count(), |i, j| {
        if (i, j) == (0, 6) || (i, j) == (6, 0) {
            None
        } else {
            adj.get(i, j).copied()
        }
    })
}

/// The pre-frontier baseline: recompute **every** row each round until a
/// full sweep changes nothing.  Returns (state, rounds); cost is exactly
/// `n · rounds` row recomputations.
fn full_scan(
    alg: &WidestPaths,
    adj: &AdjacencyMatrix<WidestPaths>,
    x0: &RoutingState<WidestPaths>,
    max_rounds: usize,
) -> (RoutingState<WidestPaths>, usize) {
    let mut cur = x0.clone();
    let mut next = cur.clone();
    for k in 0..max_rounds {
        sigma_into(alg, adj, &cur, &mut next);
        if next == cur {
            return (cur, k);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    (cur, max_rounds)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_sigma");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(3);

    for n in [1_000usize, 10_000] {
        let (alg, adj) = widest_fabric(n);
        let clean = RoutingState::identity(&alg, n);
        let baseline = iterate_to_fixed_point(&alg, &adj, &clean, 4 * n);
        assert!(baseline.converged);

        let changed = fail_link(&adj);
        let dirty = dirty_rows_after_change(&adj, &changed);
        let budget = 4 * n;

        // Outcome parity and the work claim, checked once up front.
        let (scan_state, scan_rounds) = full_scan(&alg, &changed, &baseline.state, budget);
        let frontier =
            iterate_dirty_to_fixed_point(&alg, &changed, &baseline.state, &dirty, budget);
        assert!(frontier.converged, "n={n}: frontier did not converge");
        assert_eq!(
            frontier.state, scan_state,
            "n={n}: frontier and full-scan fixed points differ"
        );
        let scan_work = (n * scan_rounds.max(1)) as u64;
        assert!(
            2 * frontier.row_recomputations <= scan_work,
            "n={n}: frontier did {} row recomputations, full scan {scan_work} — \
             the 2x bookkeeping reduction does not hold",
            frontier.row_recomputations
        );

        group.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| full_scan(&alg, &changed, &baseline.state, budget).1)
        });
        group.bench_with_input(BenchmarkId::new("frontier", n), &n, |b, _| {
            b.iter(|| {
                iterate_dirty_to_fixed_point(&alg, &changed, &baseline.state, &dirty, budget)
                    .row_recomputations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
