//! Bench E7 (Gao-Rexford): convergence of the GR algebra on tiered
//! provider/customer hierarchies of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_async::prelude::*;
use dbf_bench::*;
use dbf_matrix::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gao_rexford");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for (label, tiers) in [
        ("n14", vec![2usize, 4, 8]),
        ("n30", vec![2, 6, 22]),
        ("n45", vec![3, 6, 12, 24]),
    ] {
        let (alg, adj, topo) = gao_rexford_network(&tiers, 81);
        let n = topo.node_count();
        group.bench_with_input(BenchmarkId::new("sigma_fixed_point", label), &n, |b, &n| {
            let clean = RoutingState::identity(&alg, n);
            b.iter(|| {
                let out = iterate_to_fixed_point(&alg, &adj, &clean, 400);
                assert!(out.converged);
                out.iterations
            })
        });
        group.bench_with_input(
            BenchmarkId::new("delta_random_schedule", label),
            &n,
            |b, &n| {
                let clean = RoutingState::identity(&alg, n);
                let sched = Schedule::random(n, 200, ScheduleParams::default(), 83);
                b.iter(|| {
                    let out = run_delta(&alg, &adj, &clean, &sched);
                    assert!(out.sigma_stable);
                    out.activations
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
