//! Bench: the persistent worker pool vs. spawning fresh scoped threads
//! for every parallel epoch.
//!
//! The route server's workload is *many short epochs*: each churn batch
//! is an incremental reconvergence of a few rounds, each round one
//! scoped hand-out of a handful of band jobs.  Before the pool, every
//! round paid a `thread::scope` spawn+join; with parked workers the
//! per-epoch cost is a mutex push and a condvar wake.  The two
//! micro-benchmarks isolate that difference, and the `churn_reconverge`
//! group measures it end-to-end on the serve-shaped workload (repeated
//! single-link flaps on a ring, dirty-row σ reconvergence each time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_matrix::prelude::*;
use dbf_telemetry::NoopSink;
use dbf_topology::generators;
use std::hint::black_box;
use std::time::Duration;

const EPOCHS: usize = 64;
const JOBS_PER_EPOCH: usize = 4;

fn bench_epoch_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_reuse");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    group.bench_function("persistent_pool", |b| {
        let pool = WorkerPool::shared();
        b.iter(|| {
            for _ in 0..EPOCHS {
                pool.scoped(|scope| {
                    for j in 0..JOBS_PER_EPOCH {
                        scope.execute(move || {
                            black_box(j * j);
                        });
                    }
                })
                .expect("no job panics");
            }
        })
    });

    group.bench_function("spawn_per_epoch", |b| {
        b.iter(|| {
            for _ in 0..EPOCHS {
                std::thread::scope(|scope| {
                    for j in 0..JOBS_PER_EPOCH {
                        scope.spawn(move || {
                            black_box(j * j);
                        });
                    }
                });
            }
        })
    });
    group.finish();
}

fn bench_churn_reconverge(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_reconverge");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    let n = 256usize;
    let alg = BoundedHopCount::new(n as u64);
    let up = AdjacencyMatrix::from_topology(&generators::ring(n).with_weights(|_, _| 1u64));
    let down = AdjacencyMatrix::from_topology(&generators::line(n).with_weights(|_, _| 1u64));
    let clean = RoutingState::identity(&alg, n);
    let converged = par_iterate_to_fixed_point(&alg, &up, &clean, 4 * n, 4);
    assert!(converged.converged);

    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("link_flap", threads), &threads, |b, &t| {
            b.iter(|| {
                // One flap = fail the ring-closing link, reconverge the
                // dirty rows, restore it, reconverge again — the route
                // server's per-batch inner loop.
                let mut state = converged.state.clone();
                for (old, new) in [(&up, &down), (&down, &up)] {
                    let dirty = dirty_rows_after_change(old, new);
                    let out = par_iterate_dirty_traced(
                        &alg,
                        new,
                        &state,
                        &dirty,
                        4 * n,
                        t,
                        &mut NoopSink,
                    );
                    assert!(out.converged);
                    state = out.state;
                }
                black_box(state.node_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_cost, bench_churn_reconverge);
criterion_main!(benches);
