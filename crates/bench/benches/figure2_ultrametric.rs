//! Bench F2 (Figure 2): building the two-level path-vector ultrametric
//! (enumerating the consistent routes S_c) and evaluating route/state
//! distances with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_bench::*;
use dbf_matrix::prelude::*;
use dbf_metric::prelude::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_ultrametric");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for n in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("build_metric", n), &n, |b, &n| {
            let (alg, adj) = path_vector_network(n, 43);
            b.iter(|| PathVectorMetric::new(alg, &adj))
        });
    }

    let n = 4;
    let (alg, adj) = path_vector_network(n, 43);
    let metric = PathVectorMetric::new(alg, &adj);
    let alg = dbf_paths::PathVector::new(ShortestPaths::new(), n);
    let routes = alg.sample_routes(5, 64);
    group.bench_function("route_distances_64x64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for x in &routes {
                for y in &routes {
                    acc = acc.max(metric.route_distance(x, y));
                }
            }
            acc
        })
    });

    let x = RoutingState::identity(&alg, n);
    let y = sigma(&alg, &adj, &x);
    group.bench_function("state_distance", |b| {
        b.iter(|| state_distance(&metric, &x, &y))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
