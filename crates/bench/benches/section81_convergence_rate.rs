//! Bench E8 (Section 8.1): how the synchronous convergence time (iterations
//! of σ, and the work per iteration) scales with network size for a
//! distributive algebra versus policy-rich increasing algebras.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbf_algebra::prelude::*;
use dbf_bench::*;
use dbf_matrix::prelude::*;
use dbf_topology::generators;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("section81_convergence_rate");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);

    for n in [8usize, 16, 24] {
        // distributive reference: unit-weight shortest paths on a line
        group.bench_with_input(BenchmarkId::new("distributive_line", n), &n, |b, &n| {
            let alg = ShortestPaths::new();
            let topo = generators::line(n).with_weights(|_, _| NatInf::fin(1));
            let adj = AdjacencyMatrix::from_topology(&topo);
            let clean = RoutingState::identity(&alg, n);
            b.iter(|| iterate_to_fixed_point(&alg, &adj, &clean, 4 * n).iterations)
        });
        // increasing, non-distributive: the Section 7 algebra on the same line
        group.bench_with_input(BenchmarkId::new("policy_rich_line", n), &n, |b, &n| {
            let (alg, adj) = {
                let alg = dbf_bgp::BgpAlgebra::new(n);
                let mut rng = dbf_algebra::algebra::SplitMix64::new(n as u64);
                let topo = generators::line(n)
                    .with_weights(|_, _| dbf_bgp::algebra::random_policy(&mut rng, 1));
                let adj = alg.adjacency_from_topology(&topo);
                (alg, adj)
            };
            let clean = RoutingState::identity(&alg, n);
            b.iter(|| iterate_to_fixed_point(&alg, &adj, &clean, 4 * n * n).iterations)
        });
        // worst-case-from-stale regime: hop limit scaled with n
        group.bench_with_input(BenchmarkId::new("hopcount_from_stale", n), &n, |b, &n| {
            let (alg, adj) = hopcount_network(n, n as u64 + 2, 7);
            let stale = random_states(&alg, n, 1, 9).pop().unwrap();
            b.iter(|| iterate_to_fixed_point(&alg, &adj, &stale, 8 * n * n).iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
