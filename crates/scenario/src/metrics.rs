//! Rendering [`MetricsReport`]s into the `scenarios` CLI's JSON and
//! human-readable output.
//!
//! The report splits into two sections with different determinism
//! contracts, and the renderer keeps them apart:
//!
//! * **`metrics`** — round counts, rows recomputed/changed, dirty-set
//!   peaks, per-node settle histograms and message counters.  Every value
//!   is a pure function of `(spec, seed)`: the section is byte-identical
//!   across `--threads` and `--jobs` values (asserted by
//!   `tests/telemetry.rs`).
//! * **`timing`** — wall-clock nanoseconds and per-band sweep geometry.
//!   Inherently machine- and scheduling-dependent; always emitted as the
//!   *last* top-level key so consumers can strip it textually.

use crate::report::Json;
use dbf_telemetry::{MetricsReport, PhaseMetrics, PhaseTiming};

fn int(v: u64) -> Json {
    Json::Int(v as i64)
}

fn phase_metrics_json(p: &PhaseMetrics) -> Json {
    Json::Obj(vec![
        ("run".into(), Json::str(&p.run)),
        ("phase".into(), Json::str(&p.phase)),
        ("rounds".into(), int(p.rounds)),
        ("rows_recomputed".into(), int(p.rows_recomputed)),
        ("rows_changed".into(), int(p.rows_changed)),
        ("max_scheduled".into(), int(p.max_scheduled)),
        ("peak_frontier".into(), int(p.peak_frontier)),
        (
            "settle".into(),
            p.settle.map_or(Json::Null, |s| {
                Json::Obj(vec![
                    ("count".into(), int(s.count)),
                    ("p50".into(), int(s.p50)),
                    ("p95".into(), int(s.p95)),
                    ("p99".into(), int(s.p99)),
                    ("max".into(), int(s.max)),
                ])
            }),
        ),
        (
            "messages".into(),
            p.messages.map_or(Json::Null, |m| {
                Json::Obj(vec![
                    ("sent".into(), int(m.sent)),
                    ("delivered".into(), int(m.delivered)),
                    ("dropped".into(), int(m.dropped)),
                    ("duplicated".into(), int(m.duplicated)),
                    ("bytes".into(), m.bytes.map_or(Json::Null, int)),
                ])
            }),
        ),
    ])
}

fn phase_timing_json(t: &PhaseTiming) -> Json {
    Json::Obj(vec![
        ("run".into(), Json::str(&t.run)),
        ("phase".into(), Json::str(&t.phase)),
        ("round_wall_ns".into(), int(t.round_wall_ns)),
        (
            "bands".into(),
            Json::Arr(
                t.bands
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("band".into(), int(b.band)),
                            ("sweeps".into(), int(b.sweeps)),
                            ("rows".into(), int(b.rows)),
                            ("weight".into(), int(b.weight)),
                            ("wall_ns".into(), int(b.wall_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The deterministic `metrics` section: byte-identical across thread
/// counts and job counts for the same `(spec, seed)`.
///
/// Schema v2 adds `peak_frontier`: the largest *active* frontier any round
/// carried (rows whose inputs changed), alongside `max_scheduled` (rows the
/// engine swept, frontier plus copies).
pub fn metrics_json(report: &MetricsReport) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Int(2)),
        (
            "phases".into(),
            Json::Arr(report.phases.iter().map(phase_metrics_json).collect()),
        ),
    ])
}

/// The non-deterministic `timing` section: wall times and band geometry.
pub fn timing_json(report: &MetricsReport, threads: usize) -> Json {
    Json::Obj(vec![
        ("threads".into(), Json::Int(threads.max(1) as i64)),
        (
            "phases".into(),
            Json::Arr(report.timing.iter().map(phase_timing_json).collect()),
        ),
    ])
}

/// Append the telemetry sections to a scenario-report JSON object:
/// `metrics` (deterministic) then `timing` (always the final top-level
/// key, so a textual strip of the `timing` block recovers the canonical
/// byte-stable document).
pub fn with_telemetry(scenario_json: Json, report: &MetricsReport, threads: usize) -> Json {
    match scenario_json {
        Json::Obj(mut fields) => {
            fields.push(("metrics".into(), metrics_json(report)));
            fields.push(("timing".into(), timing_json(report, threads)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// A compact human table of the deterministic metrics (`--metrics`).
pub fn metrics_table(report: &MetricsReport) -> String {
    let mut out = String::from(
        "run            phase                rounds  recomputed     changed  maxsched  \
         settle p50/p95/p99/max  messages sent/dropped",
    );
    for p in &report.phases {
        out.push_str(&format!(
            "\n{:<14} {:<20} {:>6} {:>11} {:>11} {:>9}",
            p.run, p.phase, p.rounds, p.rows_recomputed, p.rows_changed, p.max_scheduled
        ));
        match p.settle {
            Some(s) => out.push_str(&format!("  {:>6}/{}/{}/{}", s.p50, s.p95, s.p99, s.max)),
            None => out.push_str("  -"),
        }
        match p.messages {
            Some(m) => out.push_str(&format!("  {}/{}", m.sent, m.dropped)),
            None => out.push_str("  -"),
        }
    }
    out
}

/// The per-phase breakdown table of `scenarios profile`: deterministic
/// counters joined with wall times and the parallel band balance.
pub fn profile_table(report: &MetricsReport) -> String {
    let mut out = String::from(
        "run            phase                rounds     wall_ms  rows/round  settle p95",
    );
    for (p, t) in report.phases.iter().zip(report.timing.iter()) {
        let wall_ms = t.round_wall_ns as f64 / 1e6;
        let rows_per_round = if p.rounds > 0 {
            p.rows_recomputed as f64 / p.rounds as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "\n{:<14} {:<20} {:>6} {:>11.3} {:>11.1}",
            p.run, p.phase, p.rounds, wall_ms, rows_per_round
        ));
        match p.settle {
            Some(s) => out.push_str(&format!(" {:>11}", s.p95)),
            None => out.push_str(&format!(" {:>11}", "-")),
        }
        if !t.bands.is_empty() {
            let total_wall: u64 = t.bands.iter().map(|b| b.wall_ns).sum();
            for b in &t.bands {
                let share = if total_wall > 0 {
                    100.0 * b.wall_ns as f64 / total_wall as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "\n    band {:<3} rows={:<8} weight={:<10} wall={:.3}ms ({:.0}%)",
                    b.band,
                    b.rows,
                    b.weight,
                    b.wall_ns as f64 / 1e6,
                    share
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbf_telemetry::{AggregatingSink, TelemetrySink};

    fn sample_report() -> MetricsReport {
        let mut sink = AggregatingSink::new();
        sink.run_start("sync", "sync");
        sink.phase_start("baseline", 3);
        sink.round_start(1, 3, 2);
        sink.band_sweep(1, 0, 2, 9, 120);
        sink.band_sweep(1, 1, 1, 4, 60);
        sink.round_end(1, 3, 2, 200);
        for node in 0..3 {
            sink.node_settled(node, 1);
        }
        sink.phase_end("baseline");
        sink.finish()
    }

    #[test]
    fn metrics_json_has_the_deterministic_fields_only() {
        let text = metrics_json(&sample_report()).to_string();
        assert!(text.contains("\"schema_version\": 2"));
        assert!(text.contains("\"rounds\": 1"));
        assert!(text.contains("\"rows_recomputed\": 3"));
        assert!(text.contains("\"peak_frontier\": 2"));
        assert!(text.contains("\"p95\": 1"));
        assert!(text.contains("\"messages\": null"));
        assert!(!text.contains("wall"), "no wall clocks in metrics: {text}");
        assert!(!text.contains("band"), "no band geometry in metrics");
    }

    #[test]
    fn timing_json_carries_bands_and_threads() {
        let text = timing_json(&sample_report(), 2).to_string();
        assert!(text.contains("\"threads\": 2"));
        assert!(text.contains("\"round_wall_ns\": 200"));
        assert!(text.contains("\"weight\": 9"));
    }

    #[test]
    fn with_telemetry_appends_timing_last() {
        let base = Json::Obj(vec![("scenario".into(), Json::str("s"))]);
        let text = with_telemetry(base, &sample_report(), 1).to_string();
        let metrics_at = text.find("\"metrics\"").expect("metrics present");
        let timing_at = text.find("\"timing\"").expect("timing present");
        assert!(metrics_at < timing_at);
        assert!(
            text.rfind("\"timing\"") == Some(timing_at),
            "timing is the final top-level key"
        );
    }

    #[test]
    fn tables_render_without_panicking() {
        let m = metrics_table(&sample_report());
        assert!(m.contains("sync"));
        assert!(m.contains("baseline"));
        let p = profile_table(&sample_report());
        assert!(p.contains("band 0"));
        assert!(p.contains("%"));
    }
}
