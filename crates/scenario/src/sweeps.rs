//! The built-in sweep library.
//!
//! Each sweep reproduces one "convergence as a function of …" claim:
//! scaling curves over topology size, robustness curves over fault rates,
//! and sensitivity to the schedule's delay bound.  `smoke` is deliberately
//! tiny — it is the CI gate and the determinism fixture.

use crate::spec::{
    AlgebraSpec, ChangeSpec, EngineKind, Expectation, FaultSpec, PhaseSpec, Scenario, TopologySpec,
    WeightRule,
};
use crate::sweep::{Axis, AxisParam, AxisValue, Sweep};

fn ints(values: &[u64]) -> Vec<AxisValue> {
    values.iter().map(|&v| AxisValue::Int(v)).collect()
}

fn floats(values: &[f64]) -> Vec<AxisValue> {
    values.iter().map(|&v| AxisValue::Float(v)).collect()
}

/// Reconvergence cost after a link failure as the ring grows: the
/// count-to-infinity workload of the RIP literature, measured across the
/// synchronous, δ-schedule and simulator engines with the differential
/// checker on at every size.
pub fn count_to_infinity_scaling() -> Sweep {
    Sweep {
        name: "count-to-infinity-scaling".into(),
        description: "Work and messages to reconverge after a ring link failure, as a \
                      function of ring size, under the bounded hop-count algebra."
            .into(),
        base: Scenario {
            name: "ring-link-failure".into(),
            description: "A ring link fails; hop-count routes must re-form the long way \
                          round (or count up to the limit)."
                .into(),
            topology: TopologySpec::Ring { n: 8 },
            algebra: AlgebraSpec::Hopcount { limit: 16 },
            engines: vec![EngineKind::Sync, EngineKind::Delta, EngineKind::Sim],
            seeds: vec![1],
            phases: vec![
                PhaseSpec::quiet("baseline"),
                PhaseSpec {
                    label: "link 0-1 fails".into(),
                    changes: vec![ChangeSpec::FailLink { a: 0, b: 1 }],
                    faults: FaultSpec::default(),
                },
            ],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 3,
        axes: vec![Axis {
            param: AxisParam::N,
            values: ints(&[8, 16, 32, 64]),
        }],
    }
}

/// Message cost of convergence as the loss rate climbs: the paper's
/// theorems say loss can never change the fixed point, only the price of
/// reaching it — so every grid point must still agree.
pub fn loss_rate_robustness() -> Sweep {
    Sweep {
        name: "loss-rate-robustness".into(),
        description: "Messages and work to converge on random connected graphs as the \
                      simulator's message-loss probability rises; agreement must hold \
                      at every loss rate."
            .into(),
        base: Scenario {
            name: "lossy-random-graph".into(),
            description: "Shortest paths on a connected random graph under configurable \
                          loss (replicates sample fresh graphs)."
                .into(),
            topology: TopologySpec::ConnectedRandom {
                n: 12,
                p: 0.3,
                seed: 7,
            },
            algebra: AlgebraSpec::Shortest {
                weights: WeightRule::varied(),
            },
            engines: vec![EngineKind::Sync, EngineKind::Sim],
            seeds: vec![1],
            phases: vec![PhaseSpec {
                label: "storm".into(),
                changes: vec![],
                faults: FaultSpec {
                    duplicate: 0.1,
                    ..FaultSpec::default()
                },
            }],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 5,
        axes: vec![Axis {
            param: AxisParam::Loss,
            values: floats(&[0.0, 0.1, 0.2, 0.3, 0.4]),
        }],
    }
}

/// Scaling on a low-diameter fabric up to 10⁴ nodes, with a mid-run spine
/// link failure: the sparse σ engine converges in O(diameter) rounds, the
/// incremental dirty-row engine must reconverge after the failure touching
/// only the perturbed region, and the δ/sim engines ride along at the
/// small sizes until their registry-declared `max_recommended_n` drops
/// them from the larger grid points automatically.
pub fn widest_fabric_scaling() -> Sweep {
    Sweep {
        name: "widest-fabric-scaling".into(),
        description: "Widest-path (bottleneck bandwidth) routing on a 4-spine leaf-spine \
                      fabric, scaled from 10 to 10,000 nodes, with a spine link failing \
                      mid-run; σ rounds stay O(diameter) while per-round cost grows with \
                      n·|E|, and the incremental engine reconverges after the failure in \
                      work proportional to the perturbed region."
            .into(),
        base: Scenario {
            name: "widest-leaf-spine".into(),
            description: "Bottleneck-bandwidth routing on a leaf-spine fabric with a \
                          spine link failure."
                .into(),
            topology: TopologySpec::LeafSpine {
                spines: 4,
                leaves: 6,
            },
            algebra: AlgebraSpec::Widest {
                weights: WeightRule {
                    mul_i: 11,
                    mul_j: 5,
                    modulus: 90,
                    base: 10,
                },
            },
            engines: vec![
                EngineKind::Sync,
                EngineKind::Incremental,
                EngineKind::Delta,
                EngineKind::Sim,
            ],
            seeds: vec![1],
            phases: vec![
                PhaseSpec::quiet("scale"),
                PhaseSpec {
                    label: "spine 0 loses leaf 5".into(),
                    changes: vec![ChangeSpec::FailLink { a: 0, b: 5 }],
                    faults: FaultSpec::default(),
                },
            ],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 2,
        axes: vec![Axis {
            param: AxisParam::N,
            values: ints(&[10, 100, 1000, 10_000]),
        }],
    }
}

/// Sensitivity to the schedule's staleness bound: larger delay bounds mean
/// staler data and more wasted work, but (Theorem 7) never a different
/// answer.
pub fn delay_bound_stress() -> Sweep {
    Sweep {
        name: "delay-bound-stress".into(),
        description: "Work to converge on a ring as the maximum message delay (the \
                      schedule lag bound) grows; stale data costs activations but \
                      cannot change the fixed point."
            .into(),
        base: Scenario {
            name: "delayed-ring".into(),
            description: "Hop-count routing on a ring with duplication, reordering and a \
                          configurable delay bound."
                .into(),
            topology: TopologySpec::Ring { n: 8 },
            algebra: AlgebraSpec::Hopcount { limit: 16 },
            engines: vec![EngineKind::Sync, EngineKind::Delta, EngineKind::Sim],
            seeds: vec![1],
            phases: vec![PhaseSpec {
                label: "jitter".into(),
                changes: vec![],
                faults: FaultSpec {
                    duplicate: 0.2,
                    reorder: 0.3,
                    ..FaultSpec::default()
                },
            }],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 3,
        axes: vec![Axis {
            param: AxisParam::MaxDelay,
            values: ints(&[1, 5, 15, 40]),
        }],
    }
}

/// The first *algebra-parameter* axis: reconvergence cost after a ring
/// link failure as a function of the bounded hop-count limit.  A small
/// limit caps how far bad news can count up (cheap, but distant
/// destinations become unreachable); RIP's classic 16 lets the
/// count-to-infinity episode run longer.  Theorem 7 applies at every
/// limit — the algebra stays finite and strictly increasing — so every
/// grid point must still converge and agree.
pub fn hop_limit_scaling() -> Sweep {
    Sweep {
        name: "hop-limit-scaling".into(),
        description: "Work and messages to reconverge after a ring link failure as a \
                      function of the hop-count limit (the algebra parameter, not a \
                      fault knob); agreement must hold at every limit."
            .into(),
        base: Scenario {
            name: "hop-limited-ring".into(),
            description: "A 16-node ring loses a link; the hop limit bounds both the \
                          detour length and the count-to-infinity episode."
                .into(),
            topology: TopologySpec::Ring { n: 16 },
            algebra: AlgebraSpec::Hopcount { limit: 16 },
            engines: vec![
                EngineKind::Sync,
                EngineKind::Incremental,
                EngineKind::Delta,
                EngineKind::Sim,
            ],
            seeds: vec![1],
            phases: vec![
                PhaseSpec::quiet("baseline"),
                PhaseSpec {
                    label: "link 0-1 fails".into(),
                    changes: vec![ChangeSpec::FailLink { a: 0, b: 1 }],
                    faults: FaultSpec::default(),
                },
            ],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 3,
        axes: vec![Axis {
            param: AxisParam::HopLimit,
            values: ints(&[4, 8, 16, 32]),
        }],
    }
}

/// A deliberately tiny sweep (2×2 grid, 2 replicates, seconds to run):
/// the CI smoke gate and the `--jobs` determinism fixture.
pub fn smoke() -> Sweep {
    Sweep {
        name: "smoke".into(),
        description: "A tiny 2x2 grid over ring size and loss rate; used by CI as the \
                      sweep smoke test and by the determinism tests."
            .into(),
        base: Scenario {
            name: "smoke-ring".into(),
            description: "Hop-count routing on a small ring.".into(),
            topology: TopologySpec::Ring { n: 4 },
            algebra: AlgebraSpec::Hopcount { limit: 16 },
            engines: vec![EngineKind::Sync, EngineKind::Sim],
            seeds: vec![1],
            phases: vec![PhaseSpec::quiet("run")],
            expect: Expectation::default(),
        },
        base_ref: None,
        replicates: 2,
        axes: vec![
            Axis {
                param: AxisParam::N,
                values: ints(&[4, 6]),
            },
            Axis {
                param: AxisParam::Loss,
                values: floats(&[0.0, 0.2]),
            },
        ],
    }
}

/// All built-in sweeps, in presentation order.
pub fn all() -> Vec<Sweep> {
    vec![
        smoke(),
        count_to_infinity_scaling(),
        loss_rate_robustness(),
        delay_bound_stress(),
        hop_limit_scaling(),
        widest_fabric_scaling(),
    ]
}

/// Look up a built-in sweep by name.
pub fn by_name(name: &str) -> Option<Sweep> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_sweeps_validate_and_have_unique_names() {
        let sweeps = all();
        assert!(sweeps.len() >= 4, "the library promises >= 4 sweeps");
        let mut names: Vec<&str> = sweeps.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "names must be unique");
        for s in &sweeps {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{} needs a description", s.name);
        }
        assert!(by_name("smoke").is_some());
        assert!(by_name("no-such-sweep").is_none());
    }

    #[test]
    fn builtin_sweeps_round_trip_through_toml() {
        for s in all() {
            let text = s.to_toml_string();
            let back = Sweep::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n---\n{text}", s.name));
            assert_eq!(s, back, "{} must round-trip", s.name);
        }
    }

    #[test]
    fn the_hop_limit_sweep_varies_the_algebra_parameter() {
        let sweep = hop_limit_scaling();
        let grid = sweep.grid();
        assert_eq!(grid.len(), 4);
        for (point, expected) in grid.iter().zip([4u64, 8, 16, 32]) {
            let s = sweep.derive_scenario(point, 0).unwrap();
            assert_eq!(
                s.algebra,
                AlgebraSpec::Hopcount { limit: expected },
                "{}",
                point.label()
            );
        }
        // The axis is an algebra parameter, so it must round-trip through
        // TOML like any other.
        let text = sweep.to_toml_string();
        assert!(text.contains("hop_limit"), "{text}");
        assert_eq!(Sweep::from_toml_str(&text).unwrap(), sweep);
    }

    #[test]
    fn the_scaling_sweep_reaches_ten_thousand_nodes() {
        let sweep = widest_fabric_scaling();
        let max_n = sweep.axes[0]
            .values
            .iter()
            .filter_map(|v| v.as_u64())
            .max()
            .unwrap();
        assert!(max_n >= 10_000, "the ROADMAP promises n = 10^4+");
    }
}
