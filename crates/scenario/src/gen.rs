//! Seeded random generation of complete [`Scenario`] specs and [`Sweep`]
//! grids — the input side of the fuzzing oracle (see [`crate::fuzz`]).
//!
//! The paper's convergence theorems are universally quantified: *every*
//! strictly-increasing algebra reaches the same fixed point under *any*
//! admissible schedule, fault pattern and topology-change script.  That
//! makes the differential checker an oracle for unbounded random inputs:
//! this module samples the quantifier.  Every generated spec
//!
//! * uses a **strictly increasing** algebra (shortest paths, bounded hop
//!   count, the Section 7 BGP algebra, or Gao-Rexford) — the hypothesis of
//!   Theorems 7/11.  Widest paths is deliberately excluded: `min`/`max` is
//!   increasing but not *strictly* (an edge of capacity ≥ the route leaves
//!   it unchanged), so the uniqueness half of the theorem does not apply
//!   and cross-engine disagreement would not witness a bug;
//! * draws a topology family and size, a timed script of
//!   [`ChangeSpec`] edits (including deliberately redundant ones —
//!   removing absent edges, re-adding existing links — which must be
//!   defined no-ops), and per-phase fault profiles covering loss,
//!   duplication, reordering, delay bounds and worst-case
//!   [`ScheduleSpec::AdversarialStale`] staleness;
//! * is valid by construction: [`scenario_case`] output always passes
//!   [`Scenario::validate`].
//!
//! Generation is a pure function of the seed, so a failing case is
//! reproducible from its seed alone.

use crate::spec::{
    AlgebraSpec, ChangeSpec, EngineKind, Expectation, FaultSpec, PhaseSpec, Scenario, ScheduleSpec,
    TopologySpec, WeightRule,
};
use crate::sweep::{Axis, AxisParam, AxisValue, Sweep};
use dbf_algebra::algebra::SplitMix64;

/// The seed of fuzz case `index` in the stream rooted at `root`: a pure
/// function, so one case can be re-run without regenerating its
/// predecessors (`scenarios fuzz --seed S --case K`).
pub fn case_seed(root: u64, index: u64) -> u64 {
    let mut rng = SplitMix64::new(root ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    rng.next_u64()
}

fn pick(rng: &mut SplitMix64, bound: usize) -> usize {
    rng.next_below(bound.max(1) as u64) as usize
}

fn range_u64(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo + 1)
}

fn range_f64(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// A random sized topology family on `n ∈ [3, 8]` nodes.
fn random_topology(rng: &mut SplitMix64) -> TopologySpec {
    let n = 3 + pick(rng, 6); // 3..=8
    match pick(rng, 7) {
        0 => TopologySpec::Line { n },
        1 => TopologySpec::Ring { n },
        2 => TopologySpec::Star { n },
        3 => TopologySpec::Complete {
            n: 3 + pick(rng, 3),
        },
        4 => TopologySpec::Grid {
            rows: 2 + pick(rng, 2),
            cols: 2 + pick(rng, 2),
        },
        5 => TopologySpec::ConnectedRandom {
            n,
            p: range_f64(rng, 0.1, 0.5),
            seed: rng.next_u64(),
        },
        _ => TopologySpec::LeafSpine {
            spines: 2 + pick(rng, 2),
            leaves: 2 + pick(rng, 3),
        },
    }
}

/// A random strictly-increasing algebra (see the module docs for why
/// widest paths and the SPP gadgets are excluded).
fn random_algebra(rng: &mut SplitMix64) -> AlgebraSpec {
    match pick(rng, 4) {
        0 => AlgebraSpec::Shortest {
            weights: if rng.next_bool(0.5) {
                WeightRule::varied()
            } else {
                WeightRule::uniform(1 + rng.next_below(4))
            },
        },
        1 => AlgebraSpec::Hopcount {
            limit: range_u64(rng, 4, 16),
        },
        2 => AlgebraSpec::Bgp {
            policy_depth: pick(rng, 3),
            policy_seed: rng.next_u64(),
        },
        _ => AlgebraSpec::GaoRexford,
    }
}

/// A random fault profile.  Horizons are generous enough that every
/// generated spec converges within them (a too-short horizon would read as
/// a convergence failure and poison the oracle with false positives).
fn random_faults(rng: &mut SplitMix64, n: usize) -> FaultSpec {
    let min_delay = range_u64(rng, 1, 2);
    let schedule = if rng.next_bool(1.0 / 6.0) {
        ScheduleSpec::AdversarialStale {
            victim: pick(rng, n),
            period: range_u64(rng, 2, 4),
        }
    } else {
        ScheduleSpec::Random
    };
    FaultSpec {
        loss: range_f64(rng, 0.0, 0.3),
        duplicate: range_f64(rng, 0.0, 0.3),
        reorder: range_f64(rng, 0.0, 0.4),
        activation: range_f64(rng, 0.3, 1.0),
        min_delay,
        max_delay: min_delay + rng.next_below(7),
        horizon: range_u64(rng, 200, 400) as usize,
        schedule,
    }
}

/// Which change-script vocabulary an algebra admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChangePolicy {
    /// Additions and removals (finite algebras: reconvergence after a
    /// disconnection is bounded by the carrier).
    Any,
    /// Removals only (the Gao-Rexford constraint: relationships of fresh
    /// links would be ambiguous).
    RemovalsOnly,
    /// Additions only.  Used for unbounded metrics (plain shortest paths):
    /// a removal that disconnects a destination causes genuine
    /// count-to-infinity — the algebra is not finite, so Theorem 7's
    /// convergence-in-bounded-time hypothesis does not hold and a
    /// non-converging run would be a false positive, not an engine bug.
    AdditionsOnly,
}

/// A random change script entry on an `n`-node topology.
fn random_change(rng: &mut SplitMix64, n: usize, policy: ChangePolicy) -> ChangeSpec {
    let two_nodes = |rng: &mut SplitMix64| {
        let a = pick(rng, n);
        let mut b = pick(rng, n);
        if a == b {
            b = (a + 1) % n;
        }
        (a, b)
    };
    let variant = match policy {
        ChangePolicy::Any => pick(rng, 5),
        ChangePolicy::RemovalsOnly => pick(rng, 2),
        ChangePolicy::AdditionsOnly => 2 + pick(rng, 3),
    };
    match variant {
        0 => {
            let (a, b) = two_nodes(rng);
            ChangeSpec::FailLink { a, b }
        }
        1 => {
            let (from, to) = two_nodes(rng);
            ChangeSpec::RemoveEdge { from, to }
        }
        2 => {
            let (a, b) = two_nodes(rng);
            ChangeSpec::SetLink { a, b }
        }
        3 => {
            let (from, to) = two_nodes(rng);
            ChangeSpec::SetEdge { from, to }
        }
        _ => ChangeSpec::AddNode,
    }
}

/// Generate a complete random scenario from a seed.
///
/// The output is deterministic in the seed, always validates, and always
/// uses a strictly-increasing algebra, so the differential-checker
/// invariant (`converges && agreement`) must hold for every output — any
/// failure is an engine bug (or a real counterexample to the theorems).
pub fn scenario_case(seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(seed);
    let algebra = random_algebra(&mut rng);
    let topology = match algebra {
        AlgebraSpec::GaoRexford => TopologySpec::Tiered {
            tiers: vec![
                1 + pick(&mut rng, 2),
                2 + pick(&mut rng, 2),
                2 + pick(&mut rng, 3),
            ],
            p_peer: range_f64(&mut rng, 0.2, 0.5),
            p_extra: range_f64(&mut rng, 0.1, 0.4),
            seed: rng.next_u64(),
        },
        _ => random_topology(&mut rng),
    };
    let policy = match algebra {
        AlgebraSpec::GaoRexford => ChangePolicy::RemovalsOnly,
        AlgebraSpec::Shortest { .. } | AlgebraSpec::Widest { .. } => ChangePolicy::AdditionsOnly,
        AlgebraSpec::Hopcount { .. } | AlgebraSpec::Bgp { .. } | AlgebraSpec::Spp { .. } => {
            ChangePolicy::Any
        }
    };
    let mut nodes = topology
        .initial_nodes()
        .expect("generated families are sized");

    let phase_count = 1 + pick(&mut rng, 3); // 1..=3
    let mut phases = Vec::with_capacity(phase_count);
    for k in 0..phase_count {
        let change_count = if k == 0 { 0 } else { pick(&mut rng, 4) }; // 0..=3
        let mut changes = Vec::with_capacity(change_count);
        for _ in 0..change_count {
            let c = random_change(&mut rng, nodes, policy);
            if matches!(c, ChangeSpec::AddNode) {
                nodes += 1;
            }
            changes.push(c);
        }
        phases.push(PhaseSpec {
            label: format!("phase-{k}"),
            changes,
            faults: random_faults(&mut rng, nodes),
        });
    }

    let mut engines = vec![EngineKind::Sync, EngineKind::Delta, EngineKind::Sim];
    // The incremental dirty-row σ works on every algebra; sample it often
    // so change-script reconvergence is fuzzed against the full iteration.
    if rng.next_bool(0.5) {
        engines.push(EngineKind::Incremental);
    }
    // The protocol engines are algebra-gated (the registry's `supports`
    // would reject anything else), so only matching specs sample them.
    match algebra {
        AlgebraSpec::Hopcount { .. } if rng.next_bool(0.25) => engines.push(EngineKind::Rip),
        AlgebraSpec::Bgp { .. } if rng.next_bool(0.25) => engines.push(EngineKind::Bgp),
        _ => {}
    }
    if nodes <= 6 && rng.next_bool(1.0 / 8.0) {
        engines.push(EngineKind::Threaded);
    }
    let seeds = if rng.next_bool(0.5) {
        vec![rng.next_below(1 << 32)]
    } else {
        vec![rng.next_below(1 << 32), rng.next_below(1 << 32)]
    };

    let scenario = Scenario {
        name: format!("fuzz-{seed:016x}"),
        description: "randomly generated fuzz case".into(),
        topology,
        algebra,
        engines,
        seeds,
        phases,
        expect: Expectation::default(),
    };
    debug_assert!(
        scenario.validate().is_ok(),
        "generated scenario must validate: {:?}",
        scenario.validate()
    );
    scenario
}

/// Generate a small random sweep from a seed: a quiet base scenario on a
/// resizable topology plus an `n × loss` (or `n × max_delay`) grid — the
/// cheap batch driver for coverage of size/fault combinations.
pub fn sweep_case(seed: u64) -> Sweep {
    let mut rng = SplitMix64::new(seed);
    let algebra = match pick(&mut rng, 3) {
        0 => AlgebraSpec::Shortest {
            weights: WeightRule::varied(),
        },
        1 => AlgebraSpec::Hopcount {
            limit: range_u64(&mut rng, 6, 16),
        },
        _ => AlgebraSpec::Bgp {
            policy_depth: pick(&mut rng, 2),
            policy_seed: rng.next_u64(),
        },
    };
    // Only families the `n` axis can resize, and no change scripts: the
    // grid resizes the topology, which would invalidate node references.
    let topology = match pick(&mut rng, 3) {
        0 => TopologySpec::Ring { n: 4 },
        1 => TopologySpec::Line { n: 4 },
        _ => TopologySpec::Star { n: 4 },
    };
    let base = Scenario {
        name: format!("fuzz-sweep-base-{seed:016x}"),
        description: "randomly generated sweep base".into(),
        topology,
        algebra,
        engines: vec![EngineKind::Sync, EngineKind::Delta, EngineKind::Sim],
        seeds: vec![1],
        phases: vec![PhaseSpec {
            label: "run".into(),
            changes: Vec::new(),
            faults: random_faults(&mut rng, 4),
        }],
        expect: Expectation::default(),
    };
    let n_values: Vec<AxisValue> = {
        let lo = 3 + pick(&mut rng, 3) as u64; // 3..=5
        vec![AxisValue::Int(lo), AxisValue::Int(lo + 2)]
    };
    let second = if rng.next_bool(0.5) {
        Axis {
            param: AxisParam::Loss,
            values: vec![
                AxisValue::Float(0.0),
                AxisValue::Float(range_f64(&mut rng, 0.05, 0.25)),
            ],
        }
    } else {
        Axis {
            param: AxisParam::MaxDelay,
            values: vec![AxisValue::Int(2), AxisValue::Int(range_u64(&mut rng, 5, 9))],
        }
    };
    let sweep = Sweep {
        name: format!("fuzz-sweep-{seed:016x}"),
        description: "randomly generated fuzz sweep".into(),
        base,
        base_ref: None,
        replicates: 1 + pick(&mut rng, 2),
        axes: vec![
            Axis {
                param: AxisParam::N,
                values: n_values,
            },
            second,
        ],
    };
    debug_assert!(
        sweep.validate().is_ok(),
        "generated sweep must validate: {:?}",
        sweep.validate()
    );
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_always_validate() {
        for i in 0..500 {
            let s = scenario_case(case_seed(42, i));
            s.validate()
                .unwrap_or_else(|e| panic!("case {i} invalid: {e}\n{s:?}"));
        }
    }

    #[test]
    fn generated_sweeps_always_validate() {
        for i in 0..100 {
            let s = sweep_case(case_seed(7, i));
            s.validate()
                .unwrap_or_else(|e| panic!("sweep case {i} invalid: {e}\n{s:?}"));
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(scenario_case(99), scenario_case(99));
        assert_eq!(sweep_case(99), sweep_case(99));
        assert_ne!(scenario_case(1), scenario_case(2));
        assert_eq!(case_seed(1, 5), case_seed(1, 5));
        assert_ne!(case_seed(1, 5), case_seed(1, 6));
        assert_ne!(case_seed(1, 5), case_seed(2, 5));
    }

    #[test]
    fn generated_specs_round_trip_through_toml() {
        for i in 0..50 {
            let s = scenario_case(case_seed(3, i));
            let back = Scenario::from_toml_str(&s.to_toml_string())
                .unwrap_or_else(|e| panic!("case {i} reparse failed: {e}"));
            assert_eq!(s, back);
        }
    }

    #[test]
    fn the_generator_reaches_the_interesting_corners() {
        let mut saw_adversarial = false;
        let mut saw_add_node = false;
        let mut saw_gao = false;
        let mut saw_threaded = false;
        let mut saw_incremental = false;
        let mut saw_rip = false;
        let mut saw_bgp = false;
        for i in 0..300 {
            let s = scenario_case(case_seed(11, i));
            saw_gao |= matches!(s.algebra, AlgebraSpec::GaoRexford);
            saw_threaded |= s.engines.contains(&EngineKind::Threaded);
            saw_incremental |= s.engines.contains(&EngineKind::Incremental);
            saw_rip |= s.engines.contains(&EngineKind::Rip);
            saw_bgp |= s.engines.contains(&EngineKind::Bgp);
            for p in &s.phases {
                saw_adversarial |=
                    matches!(p.faults.schedule, ScheduleSpec::AdversarialStale { .. });
                saw_add_node |= p.changes.iter().any(|c| matches!(c, ChangeSpec::AddNode));
            }
        }
        assert!(saw_adversarial, "adversarial schedules are generated");
        assert!(saw_add_node, "growing networks are generated");
        assert!(saw_gao, "gao-rexford specs are generated");
        assert!(saw_threaded, "the threaded engine is sometimes requested");
        assert!(saw_incremental, "the incremental engine is sampled");
        assert!(saw_rip, "the rip protocol engine is sampled");
        assert!(saw_bgp, "the bgp protocol engine is sampled");
    }
}
