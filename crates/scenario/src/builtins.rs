//! The built-in scenario library.
//!
//! Each scenario is a self-contained demonstration of one phenomenon the
//! paper discusses; together they cover the positive theorems (cross-engine
//! agreement for strictly-increasing algebras under loss, duplication,
//! reordering, partitions, healing, growth and policy richness) and the
//! negative controls (the DISAGREE wedgie and the BAD GADGET oscillation
//! that non-increasing algebras permit).

use crate::spec::{
    AlgebraSpec, ChangeSpec, EngineKind, Expectation, FaultSpec, PhaseSpec, Scenario, SppGadget,
    TopologySpec, WeightRule,
};

/// Fill a scenario's engine list with **every registered engine that
/// supports it** (algebra capability and recommended size both consulted).
/// The positive builtins go through this, so a newly registered engine is
/// automatically subjected to the whole differential suite — engine lists
/// are data derived from the registry, not code.
fn on_all_supported_engines(mut s: Scenario) -> Scenario {
    let all: Vec<EngineKind> = EngineKind::all().collect();
    s.engines = crate::engine::eligible_engines(&s, &all, false);
    s
}

fn phase(label: &str, changes: Vec<ChangeSpec>, faults: FaultSpec) -> PhaseSpec {
    PhaseSpec {
        label: label.into(),
        changes,
        faults,
    }
}

/// RIP-style count-to-infinity, cured by the hop limit: a destination
/// becomes unreachable and the stale routes must count up to the limit
/// before every engine agrees it is gone (Theorem 7 in its most hostile
/// classical setting).
pub fn count_to_infinity() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "count-to-infinity".into(),
        description: "A destination becomes unreachable; the finite strictly-increasing \
                      hop-count algebra counts the stale routes up to the limit and every \
                      engine agrees the destination is gone."
            .into(),
        topology: TopologySpec::Explicit {
            nodes: 4,
            links: vec![(0, 1), (1, 2), (2, 3), (0, 2)],
        },
        algebra: AlgebraSpec::Hopcount { limit: 16 },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![1, 2],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "node 3 cut off",
                vec![ChangeSpec::FailLink { a: 2, b: 3 }],
                FaultSpec::default(),
            ),
        ],
        expect: Expectation::default(),
    })
}

/// The RFC 4264 BGP wedgie: the DISAGREE gadget has two stable states and
/// which one a run reaches depends on message timing — the differential
/// checker must observe *disagreement* between seeds.
pub fn bgp_wedgie() -> Scenario {
    Scenario {
        name: "bgp-wedgie".into(),
        description: "The DISAGREE gadget (two stable states): runs stabilise, but \
                      different schedules reach different fixed points — the wedgie \
                      behaviour that strictly-increasing algebras rule out."
            .into(),
        topology: TopologySpec::Gadget,
        algebra: AlgebraSpec::Spp {
            gadget: SppGadget::Disagree,
        },
        engines: vec![EngineKind::Delta],
        seeds: vec![0, 1, 2, 3, 4, 5, 6, 7],
        phases: vec![phase("race", vec![], FaultSpec::adversarial())],
        expect: Expectation {
            converges: true,
            agreement: false,
        },
    }
}

/// The BAD GADGET: no stable state at all — the synchronous iterate
/// oscillates forever, so the run must report non-convergence.
pub fn bad_gadget() -> Scenario {
    Scenario {
        name: "bad-gadget".into(),
        description: "The Griffin–Shepherd–Wilfong BAD GADGET has no stable state; the \
                      σ-iteration oscillates and the checker reports non-convergence."
            .into(),
        topology: TopologySpec::Gadget,
        algebra: AlgebraSpec::Spp {
            gadget: SppGadget::Bad,
        },
        engines: vec![EngineKind::Sync],
        seeds: vec![1],
        phases: vec![phase("oscillate", vec![], FaultSpec::default())],
        expect: Expectation {
            converges: false,
            agreement: false,
        },
    }
}

/// A link that flaps twice: fail → heal → fail → heal, reconverging each
/// time (the dynamic-network semantics of Section 3.2 / the 2020 paper).
pub fn flapping_link() -> Scenario {
    let flap_faults = FaultSpec {
        loss: 0.1,
        duplicate: 0.1,
        ..FaultSpec::default()
    };
    on_all_supported_engines(Scenario {
        name: "flapping-link".into(),
        description: "A ring link fails, heals, fails and heals again; every epoch \
                      reconverges from the stale state of the previous one."
            .into(),
        topology: TopologySpec::Ring { n: 6 },
        algebra: AlgebraSpec::Hopcount { limit: 16 },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![3],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "flap down",
                vec![ChangeSpec::FailLink { a: 0, b: 5 }],
                flap_faults,
            ),
            phase(
                "flap up",
                vec![ChangeSpec::SetLink { a: 0, b: 5 }],
                flap_faults,
            ),
            phase(
                "down again",
                vec![ChangeSpec::FailLink { a: 0, b: 5 }],
                flap_faults,
            ),
            phase(
                "up again",
                vec![ChangeSpec::SetLink { a: 0, b: 5 }],
                FaultSpec::default(),
            ),
        ],
        expect: Expectation::default(),
    })
}

/// A ring partitions into two components and later heals; unreachable
/// destinations go invalid, then recover.
pub fn partition_and_heal() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "partition-and-heal".into(),
        description: "Two link failures partition a ring; destinations across the cut \
                      become invalid everywhere, then the partition heals and all \
                      engines reconverge to the original fixed point."
            .into(),
        topology: TopologySpec::Ring { n: 6 },
        algebra: AlgebraSpec::Hopcount { limit: 16 },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![5],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "partition",
                vec![
                    ChangeSpec::FailLink { a: 1, b: 2 },
                    ChangeSpec::FailLink { a: 4, b: 5 },
                ],
                FaultSpec::default(),
            ),
            phase(
                "heal",
                vec![
                    ChangeSpec::SetLink { a: 1, b: 2 },
                    ChangeSpec::SetLink { a: 4, b: 5 },
                ],
                FaultSpec::default(),
            ),
        ],
        expect: Expectation::default(),
    })
}

/// Heavy loss, duplication and reordering on a random graph: the faults
/// cost work but never change the answer.
pub fn adversarial_loss() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "adversarial-loss".into(),
        description: "Shortest paths on a random connected graph under 25% loss, 25% \
                      duplication and heavy reordering: every engine still reaches the \
                      unique fixed point."
            .into(),
        topology: TopologySpec::ConnectedRandom {
            n: 8,
            p: 0.35,
            seed: 7,
        },
        algebra: AlgebraSpec::Shortest {
            weights: WeightRule::varied(),
        },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![1, 2, 3],
        phases: vec![phase("storm", vec![], FaultSpec::adversarial())],
        expect: Expectation::default(),
    })
}

/// Widest paths (increasing but not strictly) on a leaf-spine fabric.
pub fn widest_fabric() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "widest-fabric".into(),
        description: "Bottleneck-bandwidth (widest-paths) routing on a leaf–spine \
                      fabric with a spine failure mid-run."
            .into(),
        topology: TopologySpec::LeafSpine {
            spines: 3,
            leaves: 5,
        },
        algebra: AlgebraSpec::Widest {
            weights: WeightRule {
                mul_i: 11,
                mul_j: 5,
                modulus: 90,
                base: 10,
            },
        },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![2],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "spine 0 loses leaf 3",
                vec![ChangeSpec::FailLink { a: 0, b: 6 }],
                FaultSpec {
                    loss: 0.15,
                    duplicate: 0.15,
                    ..FaultSpec::default()
                },
            ),
        ],
        expect: Expectation::default(),
    })
}

/// The network grows mid-computation: a node joins and is wired into the
/// ring (the dynamic case of the 2020 follow-up paper).
pub fn growing_network() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "growing-network".into(),
        description: "A line network gains a node mid-run and closes into a ring; \
                      states grow with the network and all engines agree on the new \
                      fixed point."
            .into(),
        topology: TopologySpec::Line { n: 5 },
        algebra: AlgebraSpec::Hopcount { limit: 16 },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![4],
        phases: vec![
            phase("line", vec![], FaultSpec::default()),
            phase(
                "node joins",
                vec![ChangeSpec::AddNode, ChangeSpec::SetLink { a: 4, b: 5 }],
                FaultSpec::default(),
            ),
            phase(
                "ring closes",
                vec![ChangeSpec::SetLink { a: 5, b: 0 }],
                FaultSpec::default(),
            ),
        ],
        expect: Expectation::default(),
    })
}

/// The Section 7 policy-rich BGP algebra with random safe-by-design
/// policies: convergence is impossible to break by construction.
pub fn policy_rich_bgp() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "policy-rich-bgp".into(),
        description: "Random safe-by-design Section 7 policies on a random graph, \
                      with a policy-relevant link failing mid-run: Theorem 11 says no \
                      expressible policy can prevent agreement."
            .into(),
        topology: TopologySpec::ConnectedRandom {
            n: 6,
            p: 0.4,
            seed: 5,
        },
        algebra: AlgebraSpec::Bgp {
            policy_depth: 2,
            policy_seed: 0xBEEF,
        },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![1, 2],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "link 0-1 fails",
                vec![ChangeSpec::FailLink { a: 0, b: 1 }],
                FaultSpec {
                    loss: 0.2,
                    duplicate: 0.2,
                    ..FaultSpec::default()
                },
            ),
        ],
        expect: Expectation::default(),
    })
}

/// Shortest paths on a preferential-attachment AS graph: the heavy-tailed
/// degree profile (a few hubs, many degree-`m` leaves) is the shape the
/// row-ordering and frontier machinery is built for, and failing the
/// link between the two oldest (best-connected) nodes forces a global
/// change-phase reconvergence through the hubs.
pub fn as_hierarchy() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "as-hierarchy".into(),
        description: "Shortest paths on a preferential-attachment AS graph; the \
                      hub–hub link between the two oldest nodes fails mid-run and \
                      every engine reconverges through the remaining hubs."
            .into(),
        topology: TopologySpec::AsGraph {
            n: 64,
            m: 2,
            seed: 9,
        },
        algebra: AlgebraSpec::Shortest {
            weights: WeightRule::varied(),
        },
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![1, 2],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "hub link 0-1 fails",
                vec![ChangeSpec::FailLink { a: 0, b: 1 }],
                FaultSpec::default(),
            ),
        ],
        expect: Expectation::default(),
    })
}

/// Gao-Rexford routing over a provider/customer hierarchy, with a peering
/// link failing mid-run.
pub fn gao_rexford_mesh() -> Scenario {
    on_all_supported_engines(Scenario {
        name: "gao-rexford-mesh".into(),
        description: "Valley-free customer/peer/provider routing on a tiered AS \
                      hierarchy; strictly increasing, so all engines agree before and \
                      after a link failure."
            .into(),
        topology: TopologySpec::Tiered {
            tiers: vec![2, 3, 5],
            p_peer: 0.35,
            p_extra: 0.25,
            seed: 11,
        },
        algebra: AlgebraSpec::GaoRexford,
        engines: Vec::new(), // derived from the registry by on_all_supported_engines
        seeds: vec![1, 2],
        phases: vec![
            phase("baseline", vec![], FaultSpec::default()),
            phase(
                "top peering lost",
                vec![ChangeSpec::FailLink { a: 0, b: 1 }],
                FaultSpec {
                    loss: 0.1,
                    duplicate: 0.1,
                    ..FaultSpec::default()
                },
            ),
        ],
        expect: Expectation::default(),
    })
}

/// All built-in scenarios, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        count_to_infinity(),
        bgp_wedgie(),
        bad_gadget(),
        flapping_link(),
        partition_and_heal(),
        adversarial_loss(),
        widest_fabric(),
        growing_network(),
        as_hierarchy(),
        policy_rich_bgp(),
        gao_rexford_mesh(),
    ]
}

/// Look up a built-in scenario by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate_and_have_unique_names() {
        let scenarios = all();
        assert!(
            scenarios.len() >= 8,
            "the library promises at least 8 scenarios"
        );
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "names must be unique");
        for s in &scenarios {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{} needs a description", s.name);
        }
        assert!(by_name("count-to-infinity").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn builtins_round_trip_through_toml() {
        for s in all() {
            let text = s.to_toml_string();
            let back = Scenario::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n---\n{text}", s.name));
            assert_eq!(s, back, "{} must round-trip", s.name);
        }
    }
}
