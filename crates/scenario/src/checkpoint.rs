//! Crash-safe persistence for the route server: snapshots + write-ahead
//! log.
//!
//! The durability contract mirrors a classic redo log.  Every churn event
//! is appended to the WAL *before* it is applied, and every `N` events the
//! server writes a full snapshot (the converged table, the topology shape,
//! the weight overrides, the still-pending batch, the lifetime counters
//! and the answers-digest state) and truncates the WAL.  Recovery loads
//! the snapshot, replays the WAL tail through the *normal* submit path,
//! and resumes the trace at `snapshot.offset + wal.len()` — because the
//! serve algebras are strictly increasing the fixed point is unique, so a
//! recovered replay lands on byte-identical digests (`BENCH_serve.json`
//! minus `timing`) no matter where the process died.
//!
//! Integrity is enforced at both granularities:
//!
//! * the snapshot carries a trailing FNV-1a digest over its entire body —
//!   any tampering is detected and recovery refuses the file;
//! * each WAL record carries a per-record checksum.  A damaged *final*
//!   record is a torn write: it is dropped, which is safe because the
//!   trace re-supplies the event at that offset.  A damaged *interior*
//!   record means silent history loss, so recovery fails with a
//!   structured error instead of diverging.
//!
//! Formats are versioned line-oriented text (`# dbf-checkpoint v1`,
//! `# dbf-wal v1`), written atomically (temp file + rename) for the
//! snapshot and append-plus-flush for the WAL.

use crate::report::Digest;
use dbf_algebra::prelude::NatInf;
use std::fs;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};

/// Header line (and version gate) of the snapshot file.
const SNAPSHOT_HEADER: &str = "# dbf-checkpoint v1";
/// Header line (and version gate) of the write-ahead log.
const WAL_HEADER: &str = "# dbf-wal v1";
/// Snapshot file name inside the checkpoint directory.
const SNAPSHOT_FILE: &str = "snapshot.ckpt";
/// WAL file name inside the checkpoint directory.
const WAL_FILE: &str = "events.wal";

/// Route types the snapshot can persist: a whitespace-free text codec
/// whose round trip is exact (`decode(encode(r)) == r`).
pub trait PersistRoute: Sized {
    /// Render the route as a single whitespace-free token.
    fn encode(&self) -> String;
    /// Parse a token produced by [`PersistRoute::encode`].
    fn decode(s: &str) -> Option<Self>;
}

/// Both serve algebras (bounded hop count, shortest paths) route over
/// `ℕ∞`: finite values are decimal, infinity is `inf`.
impl PersistRoute for NatInf {
    fn encode(&self) -> String {
        match self.as_fin() {
            Some(v) => v.to_string(),
            None => "inf".to_string(),
        }
    }
    fn decode(s: &str) -> Option<Self> {
        if s == "inf" {
            Some(NatInf::Inf)
        } else {
            s.parse::<u64>().ok().map(NatInf::fin)
        }
    }
}

/// Everything a route server needs to resume exactly where it stopped.
///
/// The routing rows are kept as encoded tokens so the document stays
/// algebra-agnostic; [`PersistRoute`] does the typed round trip at the
/// serve layer.  Note the *pending* batch is persisted rather than
/// force-flushed: batching alignment (and hence `stats.batches`) stays
/// identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The next trace event index to process.
    pub offset: u64,
    /// Algebra tag (`hopcount <limit>` / `shortest`) — recovery refuses a
    /// snapshot taken under a different algebra.
    pub algebra: String,
    /// Node count of shape and state.
    pub nodes: usize,
    /// Directed edges of the weightless shape, sorted.
    pub edges: Vec<(usize, usize)>,
    /// Per-edge weight overrides (`set_weight` events), sorted.
    pub overrides: Vec<(usize, usize, u64)>,
    /// The pending (unflushed) batch, one change per line in the trace
    /// vocabulary.
    pub pending: Vec<String>,
    /// Deterministic lifetime counters, in the order
    /// `[changes, queries, batches, naive_dirty_rows, batch_dirty_rows,
    ///   rounds, row_recomputations, worst_flush_rounds,
    ///   worst_flush_bound, bound_ok]`.
    pub stats: [u64; 10],
    /// The FNV state of the answers digest at `offset`.
    pub answers_state: u64,
    /// The converged routing table, row-major, encoded per
    /// [`PersistRoute`].
    pub rows: Vec<Vec<String>>,
}

impl Snapshot {
    /// Render the snapshot body (everything before the `digest` line).
    fn body(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("offset {}\n", self.offset));
        out.push_str(&format!("algebra {}\n", self.algebra));
        out.push_str(&format!("nodes {}\n", self.nodes));
        let stats: Vec<String> = self.stats.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("stats {}\n", stats.join(" ")));
        out.push_str(&format!("answers {}\n", self.answers_state));
        for (a, b) in &self.edges {
            out.push_str(&format!("edge {a} {b}\n"));
        }
        for (a, b, w) in &self.overrides {
            out.push_str(&format!("override {a} {b} {w}\n"));
        }
        for line in &self.pending {
            out.push_str(&format!("pending {line}\n"));
        }
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("row {i} {}\n", row.join(" ")));
        }
        out
    }

    /// Render the full document: body plus trailing integrity digest.
    pub fn to_text(&self) -> String {
        let body = self.body();
        let mut d = Digest::default();
        d.update(&body);
        format!("{body}digest {}\n", d.finish())
    }

    /// Parse and verify a snapshot document.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let digest_at = text
            .rfind("digest ")
            .ok_or("checkpoint has no integrity digest")?;
        let (body, tail) = text.split_at(digest_at);
        let claimed = tail
            .trim_start_matches("digest ")
            .trim_end_matches('\n')
            .trim();
        let mut d = Digest::default();
        d.update(body);
        if d.finish() != claimed {
            return Err(format!(
                "checkpoint integrity digest mismatch (file says {claimed}, body hashes to {})",
                d.finish()
            ));
        }
        let mut lines = body.lines();
        match lines.next() {
            Some(l) if l.trim() == SNAPSHOT_HEADER => {}
            other => return Err(format!("not a checkpoint (header {other:?})")),
        }
        let mut offset = None;
        let mut algebra = None;
        let mut nodes = None;
        let mut stats = None;
        let mut answers = None;
        let mut edges = Vec::new();
        let mut overrides = Vec::new();
        let mut pending = Vec::new();
        let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
        for (k, raw) in lines.enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let bad = |msg: &str| format!("checkpoint line {}: {msg}", k + 2);
            let toks: Vec<&str> = line.split_whitespace().collect();
            let num = |pos: usize| -> Result<u64, String> {
                toks.get(pos)
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad(&format!("bad numeric operand at position {pos}")))
            };
            match toks[0] {
                "offset" => offset = Some(num(1)?),
                "algebra" => algebra = Some(toks[1..].join(" ")),
                "nodes" => nodes = Some(num(1)? as usize),
                "stats" => {
                    if toks.len() != 11 {
                        return Err(bad("stats takes 10 counters"));
                    }
                    let mut s = [0u64; 10];
                    for (i, slot) in s.iter_mut().enumerate() {
                        *slot = num(i + 1)?;
                    }
                    stats = Some(s);
                }
                "answers" => answers = Some(num(1)?),
                "edge" => edges.push((num(1)? as usize, num(2)? as usize)),
                "override" => {
                    overrides.push((num(1)? as usize, num(2)? as usize, num(3)?));
                }
                "pending" => pending.push(toks[1..].join(" ")),
                "row" => {
                    let i = num(1)? as usize;
                    rows.push((i, toks[2..].iter().map(|t| t.to_string()).collect()));
                }
                other => return Err(bad(&format!("unknown record {other:?}"))),
            }
        }
        let nodes = nodes.ok_or("checkpoint has no nodes line")?;
        if rows.len() != nodes || rows.iter().enumerate().any(|(k, (i, _))| k != *i) {
            return Err("checkpoint rows are missing or out of order".into());
        }
        if rows.iter().any(|(_, r)| r.len() != nodes) {
            return Err("checkpoint row width disagrees with the node count".into());
        }
        Ok(Snapshot {
            offset: offset.ok_or("checkpoint has no offset line")?,
            algebra: algebra.ok_or("checkpoint has no algebra line")?,
            nodes,
            edges,
            overrides,
            pending,
            stats: stats.ok_or("checkpoint has no stats line")?,
            answers_state: answers.ok_or("checkpoint has no answers line")?,
            rows: rows.into_iter().map(|(_, r)| r).collect(),
        })
    }
}

/// How loading the WAL failed.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// The file exists but cannot be read.
    Io(String),
    /// An *interior* record is damaged — history was lost, recovery must
    /// not proceed.
    Corrupt {
        /// 1-based line number of the damaged record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "WAL unreadable: {m}"),
            WalError::Corrupt { line, message } => {
                write!(f, "WAL record at line {line} is corrupt: {message}")
            }
        }
    }
}

/// The on-disk home of one server's snapshot and WAL.
pub struct CheckpointStore {
    dir: PathBuf,
    wal: Option<io::BufWriter<fs::File>>,
}

/// Per-record WAL checksum: FNV over `"<offset> <event line>"`, rendered
/// as 8 hex digits.
fn wal_checksum(offset: u64, line: &str) -> String {
    let mut d = Digest::default();
    d.update(&format!("{offset} {line}"));
    format!("{:08x}", d.value() & 0xffff_ffff)
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: &Path) -> io::Result<CheckpointStore> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            wal: None,
        })
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Atomically persist a snapshot (temp file + rename), then truncate
    /// the WAL — the snapshot subsumes everything logged so far.
    pub fn write_snapshot(&mut self, snap: &Snapshot) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, snap.to_text())?;
        fs::rename(&tmp, self.snapshot_path())?;
        self.wal = None;
        fs::write(self.wal_path(), format!("{WAL_HEADER}\n"))?;
        Ok(())
    }

    /// Load the snapshot, if one was ever written.  A present-but-damaged
    /// snapshot is an error, never silently ignored.
    pub fn load_snapshot(&self) -> Result<Option<Snapshot>, String> {
        let path = self.snapshot_path();
        match fs::read_to_string(&path) {
            Ok(text) => Snapshot::parse(&text).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read {path:?}: {e}")),
        }
    }

    /// Append one event to the WAL and flush it to the OS before the
    /// event is applied (write-ahead ordering).
    pub fn append_wal(&mut self, offset: u64, line: &str) -> io::Result<()> {
        if self.wal.is_none() {
            let path = self.wal_path();
            let fresh = !path.exists();
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            let mut w = io::BufWriter::new(file);
            if fresh {
                w.write_all(format!("{WAL_HEADER}\n").as_bytes())?;
            }
            self.wal = Some(w);
        }
        let w = self.wal.as_mut().expect("just opened");
        w.write_all(format!("e {offset} {} {line}\n", wal_checksum(offset, line)).as_bytes())?;
        w.flush()
    }

    /// Read the WAL back as `(offset, event line)` records.
    ///
    /// A missing file is an empty log.  A damaged **final** record is a
    /// torn write and is dropped (the trace re-supplies that event); a
    /// damaged interior record is [`WalError::Corrupt`].
    pub fn load_wal(&self) -> Result<Vec<(u64, String)>, WalError> {
        let path = self.wal_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(WalError::Io(format!("cannot read {path:?}: {e}"))),
        };
        let ended_clean = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() || lines[0].trim() != WAL_HEADER {
            return Err(WalError::Corrupt {
                line: 1,
                message: format!("missing header {WAL_HEADER:?}"),
            });
        }
        let mut out = Vec::new();
        let last = lines.len() - 1;
        for (k, raw) in lines.iter().enumerate().skip(1) {
            let is_final = k == last;
            let parsed = parse_wal_record(raw);
            match parsed {
                Ok(rec) if is_final && !ended_clean => {
                    // A record without its newline is mid-write; whether
                    // its checksum happens to hold or not, treat it as
                    // torn and let the trace re-supply the event.
                    let _ = rec;
                }
                Ok(rec) => out.push(rec),
                Err(message) if is_final => {
                    // Torn final write: tolerated by design.
                    let _ = message;
                }
                Err(message) => {
                    return Err(WalError::Corrupt {
                        line: k + 1,
                        message,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Rewrite the WAL to exactly `records` — used after recovery so a
    /// tolerated torn tail does not get glued onto subsequent appends.
    pub fn reset_wal(&mut self, records: &[(u64, String)]) -> io::Result<()> {
        self.wal = None;
        let mut text = format!("{WAL_HEADER}\n");
        for (offset, line) in records {
            text.push_str(&format!(
                "e {offset} {} {line}\n",
                wal_checksum(*offset, line)
            ));
        }
        fs::write(self.wal_path(), text)
    }

    /// Chaos tool: chop `bytes` off the end of the WAL (simulates a crash
    /// mid-write / lost sectors).
    pub fn tamper_truncate(&mut self, bytes: u64) -> io::Result<()> {
        self.wal = None;
        let path = self.wal_path();
        let len = fs::metadata(&path)?.len();
        let file = fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len.saturating_sub(bytes))?;
        Ok(())
    }

    /// Chaos tool: flip one byte at `pos` (counted from just after the
    /// header line) — lands in an interior record when the log is long
    /// enough, which recovery must refuse.
    pub fn tamper_corrupt(&mut self, pos: u64) -> io::Result<()> {
        self.wal = None;
        let path = self.wal_path();
        let mut bytes = fs::read(&path)?;
        let header_len = WAL_HEADER.len() as u64 + 1;
        let at = (header_len + pos).min(bytes.len().saturating_sub(1) as u64) as usize;
        bytes[at] ^= 0x01;
        let mut file = fs::OpenOptions::new().write(true).open(&path)?;
        file.seek(io::SeekFrom::Start(0))?;
        file.write_all(&bytes)?;
        file.set_len(bytes.len() as u64)?;
        Ok(())
    }
}

/// Parse one `e <offset> <checksum> <event line>` record.
fn parse_wal_record(raw: &str) -> Result<(u64, String), String> {
    let toks: Vec<&str> = raw.split_whitespace().collect();
    if toks.len() < 4 || toks[0] != "e" {
        return Err(format!("malformed record {raw:?}"));
    }
    let offset = toks[1]
        .parse::<u64>()
        .map_err(|e| format!("bad offset {:?}: {e}", toks[1]))?;
    let line = toks[3..].join(" ");
    if wal_checksum(offset, &line) != toks[2] {
        return Err(format!("checksum mismatch on record {raw:?}"));
    }
    Ok((offset, line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> (PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!("dbf-ckpt-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open store");
        (dir, store)
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            offset: 42,
            algebra: "hopcount 24".into(),
            nodes: 2,
            edges: vec![(0, 1), (1, 0)],
            overrides: vec![(0, 1, 9)],
            pending: vec!["set_link 0 1".into()],
            stats: [5, 2, 1, 10, 4, 7, 30, 7, 100, 1],
            answers_state: 0xdead_beef,
            rows: vec![vec!["0".into(), "1".into()], vec!["1".into(), "0".into()]],
        }
    }

    #[test]
    fn snapshots_round_trip_and_detect_tampering() {
        let snap = sample_snapshot();
        let text = snap.to_text();
        assert_eq!(Snapshot::parse(&text).expect("own output parses"), snap);
        // Flip one byte of the body: the integrity digest must catch it.
        let tampered = text.replace("answers 3735928559", "answers 3735928560");
        assert_ne!(tampered, text, "the replacement must hit");
        let err = Snapshot::parse(&tampered).expect_err("tampering detected");
        assert!(err.contains("integrity digest"), "{err}");
    }

    #[test]
    fn the_wal_round_trips_and_tolerates_a_torn_tail() {
        let (dir, mut store) = temp_store("torn");
        store.append_wal(0, "set_link 1 2").unwrap();
        store.append_wal(1, "query 0 3").unwrap();
        store.append_wal(2, "fail_link 4 5").unwrap();
        assert_eq!(
            store.load_wal().expect("clean log"),
            vec![
                (0, "set_link 1 2".to_string()),
                (1, "query 0 3".to_string()),
                (2, "fail_link 4 5".to_string()),
            ]
        );
        // Tear the final record mid-write: it must be dropped, silently.
        store.tamper_truncate(5).unwrap();
        assert_eq!(
            store.load_wal().expect("torn tail tolerated"),
            vec![
                (0, "set_link 1 2".to_string()),
                (1, "query 0 3".to_string()),
            ]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_wal_corruption_is_refused() {
        let (dir, mut store) = temp_store("corrupt");
        store.append_wal(0, "set_link 1 2").unwrap();
        store.append_wal(1, "query 0 3").unwrap();
        store.tamper_corrupt(2).unwrap();
        match store.load_wal() {
            Err(WalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected interior corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_truncate_the_wal_they_subsume() {
        let (dir, mut store) = temp_store("subsume");
        store.append_wal(0, "set_link 1 2").unwrap();
        store.write_snapshot(&sample_snapshot()).unwrap();
        assert_eq!(store.load_wal().expect("fresh log"), Vec::new());
        let back = store.load_snapshot().expect("readable").expect("present");
        assert_eq!(back, sample_snapshot());
        // Appends after the snapshot land in the fresh log.
        store.append_wal(42, "query 0 1").unwrap();
        assert_eq!(
            store.load_wal().expect("clean log"),
            vec![(42, "query 0 1".to_string())]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_missing_store_is_an_empty_store() {
        let (dir, store) = temp_store("empty");
        assert_eq!(store.load_snapshot().expect("no snapshot"), None);
        assert_eq!(store.load_wal().expect("no wal"), Vec::new());
        fs::remove_dir_all(&dir).ok();
    }
}
