//! Property-based scenario fuzzing through the cross-engine differential
//! checker, with failure minimization.
//!
//! The invariant under test is the paper's headline result made executable
//! (Theorems 7/11): **any strictly-increasing spec must agree across all
//! engines** — every run of every engine converges, and all runs land on
//! the same σ-stable fixed point.  [`run_fuzz`] hurls seeded random specs
//! (and random sweep grids, the cheap batch driver) from [`crate::gen`] at
//! [`run_scenario`] and checks exactly that, with no per-case expectations
//! to hand-maintain.
//!
//! When a case fails, [`shrink_scenario`] greedily minimizes it — dropping
//! phases and script entries, shrinking the topology, simplifying fault
//! profiles, and thinning engines/seeds — while re-checking that every
//! candidate still fails.  The minimized spec is written to a corpus
//! directory as a self-describing TOML with its exact reproduction
//! command, so a failure found by an overnight fuzz run is a one-command
//! regression test.
//!
//! Determinism contract: the same `(seed, cases)` pair produces the same
//! cases, the same verdicts and byte-identical [`FuzzReport::to_json`]
//! output regardless of `--jobs` (execution fans out through the
//! order-preserving, chunk-dispatched [`crate::pool::parallel_map_chunked`]).

use crate::gen::{case_seed, scenario_case, sweep_case};
use crate::pool::parallel_map_chunked;
use crate::report::Json;
use crate::run::run_scenario;
use crate::spec::{FaultSpec, Scenario, ScheduleSpec, SpecError, TopologySpec};
use crate::sweep::{run_sweep, SweepRunOptions};
use std::path::{Path, PathBuf};

/// Every `SWEEP_EVERY`-th case is a sweep grid instead of a single
/// scenario.
const SWEEP_EVERY: u64 = 8;

/// Cases handed to a worker per queue round-trip.  Small enough that an
/// unlucky chunk of slow cases cannot starve the other workers, large
/// enough to amortise the channel/lock overhead of dispatching cases that
/// often run in single-digit milliseconds.
const FUZZ_DISPATCH_CHUNK: usize = 4;

/// Options for [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// How many cases to generate and run.
    pub cases: usize,
    /// The root seed of the case stream.
    pub seed: u64,
    /// Worker threads (`0`/`1` runs inline).
    pub jobs: usize,
    /// Run only this case index (reproduction mode).
    pub case: Option<usize>,
    /// Where minimized failures are written (`None` disables writing).
    pub corpus: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            cases: 100,
            seed: 1,
            jobs: 1,
            case: None,
            corpus: Some(PathBuf::from("corpus")),
        }
    }
}

/// The outcome of one fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCaseResult {
    /// Case index in the stream.
    pub index: usize,
    /// The case's derived seed (`gen::case_seed(root, index)`).
    pub case_seed: u64,
    /// `"scenario"` or `"sweep"`.
    pub kind: &'static str,
    /// The generated spec's name.
    pub name: String,
    /// Did the differential invariant hold?
    pub ok: bool,
    /// Compact description of the verdict (deterministic; no timings).
    pub detail: String,
}

/// A minimized failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Case index in the stream.
    pub index: usize,
    /// The case's derived seed.
    pub case_seed: u64,
    /// The minimized failing spec, as TOML.
    pub minimized_toml: String,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// The exact command that reproduces the minimized failure.
    pub repro: String,
    /// Where the corpus file was written, if writing was enabled.
    pub written_to: Option<String>,
}

/// The full report of a fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The root seed.
    pub seed: u64,
    /// How many cases ran.
    pub cases: usize,
    /// Per-case outcomes, in case order.
    pub results: Vec<FuzzCaseResult>,
    /// Minimized failures, in case order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Did every case uphold the invariant?
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.results.iter().all(|r| r.ok)
    }

    /// Render as a JSON value.  Deliberately contains no wall-clock data,
    /// so the output is byte-identical for any `--jobs` value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Int(self.seed as i64)),
            ("cases".into(), Json::Int(self.cases as i64)),
            ("ok".into(), Json::Bool(self.ok())),
            (
                "results".into(),
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("case".into(), Json::Int(r.index as i64)),
                                (
                                    "case_seed".into(),
                                    Json::str(format!("{:#018x}", r.case_seed)),
                                ),
                                ("kind".into(), Json::str(r.kind)),
                                ("name".into(), Json::str(&r.name)),
                                ("ok".into(), Json::Bool(r.ok)),
                                ("detail".into(), Json::str(&r.detail)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "failures".into(),
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("case".into(), Json::Int(f.index as i64)),
                                (
                                    "case_seed".into(),
                                    Json::str(format!("{:#018x}", f.case_seed)),
                                ),
                                ("shrink_steps".into(), Json::Int(f.shrink_steps as i64)),
                                ("repro".into(), Json::str(&f.repro)),
                                (
                                    "written_to".into(),
                                    match &f.written_to {
                                        Some(p) => Json::str(p),
                                        None => Json::Null,
                                    },
                                ),
                                ("minimized_toml".into(), Json::str(&f.minimized_toml)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let failed = self.results.iter().filter(|r| !r.ok).count();
        let mut out = format!(
            "fuzz seed={} cases={} ok={} failed={} {}",
            self.seed,
            self.cases,
            self.results.len() - failed,
            failed,
            if self.ok() { "OK" } else { "FAILURES" },
        );
        for f in &self.failures {
            out.push_str(&format!(
                "\n  case #{} (seed {:#018x}) minimized in {} steps: {}",
                f.index, f.case_seed, f.shrink_steps, f.repro
            ));
        }
        out
    }
}

/// Does a spec violate the fuzz invariant?  (Invalid specs do not count as
/// failures — the shrinker uses this to discard over-aggressive
/// candidates.)
///
/// The invariant has three legs: every run converges, every run agrees on
/// the fixed point, and every bound-annotated phase converges within its
/// predicted round bound — so a bound violation is shrunk and recorded in
/// the corpus exactly like a differential failure.
pub fn violates_invariant(spec: &Scenario) -> bool {
    if spec.validate().is_err() {
        return false;
    }
    match run_scenario(spec) {
        Ok(report) => {
            !(report.verdict.converges && report.verdict.agreement && report.verdict.bounds_ok)
        }
        Err(_) => false,
    }
}

/// Execute a fuzz run: generate `opts.cases` cases from `opts.seed`, fan
/// them out over `opts.jobs` workers, check the differential invariant on
/// each, and shrink + record any failures.
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzReport, SpecError> {
    let indices: Vec<usize> = (0..opts.cases)
        .filter(|i| opts.case.is_none_or(|want| *i == want))
        .collect();
    if indices.is_empty() {
        return Err(match opts.case {
            Some(case) => SpecError::new(format!(
                "--case {case} is out of range (the run has {} cases)",
                opts.cases
            )),
            None => SpecError::new("--cases must be at least 1"),
        });
    }
    // Chunked dispatch: most cases are a few milliseconds of work, so
    // grouping a handful per queue round-trip keeps the workers fed
    // instead of contending on the channel (results stay in input order,
    // which is what keeps the JSON byte-identical across --jobs).
    let results = parallel_map_chunked(opts.jobs, FUZZ_DISPATCH_CHUNK, indices, |index| {
        let seed = case_seed(opts.seed, index as u64);
        if (index as u64) % SWEEP_EVERY == SWEEP_EVERY - 1 {
            let sweep = sweep_case(seed);
            let outcome = run_sweep(
                &sweep,
                &SweepRunOptions {
                    jobs: 1,
                    threads: 1,
                    ..SweepRunOptions::default()
                },
            );
            match outcome {
                Ok(report) => {
                    let failures: Vec<(usize, usize)> = report
                        .points
                        .iter()
                        .flat_map(|p| p.failures.iter().map(|f| (p.index, f.replicate)))
                        .collect();
                    let ok = report.ok();
                    let detail = if ok {
                        format!("grid={} all cells agree", report.points.len())
                    } else {
                        format!("failing cells: {failures:?}")
                    };
                    (index, seed, "sweep", sweep.name.clone(), ok, detail, {
                        // Map the first failing cell back to a concrete
                        // scenario so the shrinker has something to chew on.
                        failures.first().and_then(|&(point, replicate)| {
                            let grid = sweep.grid();
                            grid.iter()
                                .find(|p| p.index == point)
                                .and_then(|p| sweep.derive_scenario(p, replicate).ok())
                        })
                    })
                }
                Err(e) => (
                    index,
                    seed,
                    "sweep",
                    format!("fuzz-sweep-{seed:016x}"),
                    false,
                    format!("sweep error: {e}"),
                    None,
                ),
            }
        } else {
            let scenario = scenario_case(seed);
            match run_scenario(&scenario) {
                Ok(report) => {
                    let ok = report.verdict.converges
                        && report.verdict.agreement
                        && report.verdict.bounds_ok;
                    let detail = format!(
                        "converges={} agreement={} bounds_ok={} runs={}",
                        report.verdict.converges,
                        report.verdict.agreement,
                        report.verdict.bounds_ok,
                        report.runs.len()
                    );
                    let failing = (!ok).then(|| scenario.clone());
                    (
                        index,
                        seed,
                        "scenario",
                        scenario.name.clone(),
                        ok,
                        detail,
                        failing,
                    )
                }
                Err(e) => (
                    index,
                    seed,
                    "scenario",
                    scenario.name.clone(),
                    false,
                    format!("spec error: {e}"),
                    None,
                ),
            }
        }
    });

    let mut report = FuzzReport {
        seed: opts.seed,
        cases: opts.cases,
        results: Vec::with_capacity(results.len()),
        failures: Vec::new(),
    };
    // Shrinking runs sequentially after the parallel sweep so the corpus
    // and report stay deterministic in case order.
    for (index, seed, kind, name, ok, detail, failing) in results {
        report.results.push(FuzzCaseResult {
            index,
            case_seed: seed,
            kind,
            name,
            ok,
            detail,
        });
        if let Some(spec) = failing {
            let (minimized, steps) = shrink_scenario(&spec, &violates_invariant);
            report
                .failures
                .push(record_failure(index, seed, minimized, steps, opts));
        }
    }
    Ok(report)
}

fn record_failure(
    index: usize,
    seed: u64,
    minimized: Scenario,
    steps: usize,
    opts: &FuzzOptions,
) -> FuzzFailure {
    let toml = minimized.to_toml_string();
    let (repro, written_to) = match &opts.corpus {
        Some(dir) => {
            let path = dir.join(format!("fuzz-{seed:016x}.min.toml"));
            let repro = format!("scenarios run {}", path.display());
            let header = format!(
                "# Minimized failing spec found by `scenarios fuzz --seed {} --cases {} --case {index}`.\n\
                 # The differential invariant (all engines converge to one fixed point) was violated.\n\
                 # Reproduce with: {repro}\n",
                opts.seed, opts.cases
            );
            let written = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, format!("{header}{toml}")))
                .map(|()| path.display().to_string());
            match written {
                Ok(p) => (repro, Some(p)),
                Err(e) => (
                    format!("scenarios fuzz --seed {} --cases {} --case {index} (corpus write failed: {e})",
                        opts.seed, opts.cases),
                    None,
                ),
            }
        }
        None => (
            format!(
                "scenarios fuzz --seed {} --cases {} --case {index}",
                opts.seed, opts.cases
            ),
            None,
        ),
    };
    FuzzFailure {
        index,
        case_seed: seed,
        minimized_toml: toml,
        shrink_steps: steps,
        repro,
        written_to,
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// The size score the shrinker minimizes: a weighted sum over everything
/// that makes a spec expensive to read or run.
pub fn spec_size(s: &Scenario) -> usize {
    let changes: usize = s.phases.iter().map(|p| p.changes.len()).sum();
    let horizon: usize = s.phases.iter().map(|p| p.faults.horizon).sum();
    let knobs: usize = s
        .phases
        .iter()
        .map(|p| {
            let f = &p.faults;
            (f.loss > 0.0) as usize
                + (f.duplicate > 0.0) as usize
                + (f.reorder > 0.0) as usize
                + (f.schedule != ScheduleSpec::Random) as usize
        })
        .sum();
    let n = s.topology.initial_nodes().unwrap_or(0);
    s.phases.len() * 1000
        + changes * 200
        + n * 50
        + (s.engines.len() + s.seeds.len()) * 30
        + horizon / 10
        + knobs * 5
}

/// Candidate single-step reductions of a spec, most aggressive first.
/// Every candidate is structurally smaller under [`spec_size`]; invalid
/// candidates are filtered by the failure predicate (which treats them as
/// non-failing).
fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // 1. Drop whole phases.
    if s.phases.len() > 1 {
        for k in 0..s.phases.len() {
            let mut c = s.clone();
            c.phases.remove(k);
            out.push(c);
        }
    }
    // 2. Bisect the change scripts: all, first half, second half, singles.
    for (k, phase) in s.phases.iter().enumerate() {
        let m = phase.changes.len();
        if m == 0 {
            continue;
        }
        let mut drop_range = |lo: usize, hi: usize| {
            let mut c = s.clone();
            c.phases[k].changes.drain(lo..hi);
            out.push(c);
        };
        drop_range(0, m);
        if m > 1 {
            drop_range(0, m / 2);
            drop_range(m / 2, m);
            for i in 0..m {
                drop_range(i, i + 1);
            }
        }
    }
    // 3. Shrink the topology: halve toward the family minimum, and try the
    //    simplest family outright.
    for t in shrink_topology(&s.topology) {
        let mut c = s.clone();
        c.topology = t;
        out.push(c);
    }
    // 4. Thin engines and seeds.
    if s.engines.len() > 1 {
        for k in 0..s.engines.len() {
            let mut c = s.clone();
            c.engines.remove(k);
            out.push(c);
        }
    }
    if s.seeds.len() > 1 {
        for k in 0..s.seeds.len() {
            let mut c = s.clone();
            c.seeds.remove(k);
            out.push(c);
        }
    }
    // 5. Simplify fault profiles.
    for (k, phase) in s.phases.iter().enumerate() {
        let f = &phase.faults;
        if *f != FaultSpec::default() {
            let mut c = s.clone();
            c.phases[k].faults = FaultSpec::default();
            out.push(c);
        }
        if f.loss > 0.0 || f.duplicate > 0.0 || f.reorder > 0.0 {
            let mut c = s.clone();
            c.phases[k].faults.loss = 0.0;
            c.phases[k].faults.duplicate = 0.0;
            c.phases[k].faults.reorder = 0.0;
            out.push(c);
        }
        if f.schedule != ScheduleSpec::Random {
            let mut c = s.clone();
            c.phases[k].faults.schedule = ScheduleSpec::Random;
            out.push(c);
        }
        if f.horizon > 100 {
            let mut c = s.clone();
            c.phases[k].faults.horizon = (f.horizon / 2).max(50);
            out.push(c);
        }
    }
    out
}

/// Topology reductions: halve the size toward the family minimum, then try
/// collapsing to a plain line.
fn shrink_topology(t: &TopologySpec) -> Vec<TopologySpec> {
    let mut out = Vec::new();
    let halved = |n: usize, min: usize| {
        let h = (n / 2).max(min);
        (h < n).then_some(h)
    };
    match *t {
        TopologySpec::Line { n } => {
            if let Some(h) = halved(n, 2) {
                out.push(TopologySpec::Line { n: h });
            }
        }
        TopologySpec::Ring { n } => {
            if let Some(h) = halved(n, 3) {
                out.push(TopologySpec::Ring { n: h });
            }
            out.push(TopologySpec::Line { n });
        }
        TopologySpec::Star { n } => {
            if let Some(h) = halved(n, 2) {
                out.push(TopologySpec::Star { n: h });
            }
            out.push(TopologySpec::Line { n });
        }
        TopologySpec::Complete { n } => {
            if let Some(h) = halved(n, 2) {
                out.push(TopologySpec::Complete { n: h });
            }
            out.push(TopologySpec::Line { n });
        }
        TopologySpec::Grid { rows, cols } => {
            if rows > 1 {
                out.push(TopologySpec::Grid {
                    rows: rows / 2,
                    cols,
                });
            }
            if cols > 1 {
                out.push(TopologySpec::Grid {
                    rows,
                    cols: cols / 2,
                });
            }
            out.push(TopologySpec::Line { n: rows * cols });
        }
        TopologySpec::ConnectedRandom { n, p, seed } => {
            if let Some(h) = halved(n, 3) {
                out.push(TopologySpec::ConnectedRandom { n: h, p, seed });
            }
            out.push(TopologySpec::Line { n });
        }
        TopologySpec::AsGraph { n, m, seed } => {
            if let Some(h) = halved(n, m + 1) {
                out.push(TopologySpec::AsGraph { n: h, m, seed });
            }
            if m > 1 {
                out.push(TopologySpec::AsGraph { n, m: m / 2, seed });
            }
            out.push(TopologySpec::Line { n });
        }
        TopologySpec::LeafSpine { spines, leaves } => {
            if leaves > 1 {
                out.push(TopologySpec::LeafSpine {
                    spines,
                    leaves: leaves / 2,
                });
            }
            if spines > 1 {
                out.push(TopologySpec::LeafSpine {
                    spines: spines / 2,
                    leaves,
                });
            }
            out.push(TopologySpec::Line { n: spines + leaves });
        }
        TopologySpec::Tiered {
            ref tiers,
            p_peer,
            p_extra,
            seed,
        } => {
            for (k, &size) in tiers.iter().enumerate() {
                if size > 1 {
                    let mut smaller = tiers.clone();
                    smaller[k] = size / 2;
                    out.push(TopologySpec::Tiered {
                        tiers: smaller,
                        p_peer,
                        p_extra,
                        seed,
                    });
                }
            }
            if tiers.len() > 2 {
                out.push(TopologySpec::Tiered {
                    tiers: tiers[..tiers.len() - 1].to_vec(),
                    p_peer,
                    p_extra,
                    seed,
                });
            }
        }
        TopologySpec::Explicit { nodes, ref links } => {
            for k in 0..links.len() {
                let mut fewer = links.clone();
                fewer.remove(k);
                out.push(TopologySpec::Explicit {
                    nodes,
                    links: fewer,
                });
            }
        }
        TopologySpec::Gadget => {}
    }
    out
}

/// Greedily minimize a failing spec: repeatedly take the first candidate
/// reduction that is smaller and still fails, until none improves (or the
/// evaluation budget runs out).  Returns the minimized spec and the number
/// of accepted reductions.
///
/// `fails` must answer `false` for invalid specs — [`violates_invariant`]
/// does; a custom predicate used in tests should too.
pub fn shrink_scenario(spec: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> (Scenario, usize) {
    let mut current = spec.clone();
    let mut accepted = 0usize;
    let mut evaluations = 0usize;
    const MAX_EVALUATIONS: usize = 400;
    loop {
        let before = spec_size(&current);
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            if spec_size(&candidate) >= before {
                continue;
            }
            evaluations += 1;
            if fails(&candidate) {
                current = candidate;
                accepted += 1;
                improved = true;
                break;
            }
            if evaluations >= MAX_EVALUATIONS {
                return (current, accepted);
            }
        }
        if !improved {
            return (current, accepted);
        }
    }
}

/// The outcome of replaying one corpus case.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The corpus file that was replayed.
    pub path: PathBuf,
    /// Did the differential verdict match the spec's expectation?
    pub expectation_met: bool,
    /// Per engine run, in run order: `(run label, total logical rounds
    /// across all phases)`.  A convergence-time fingerprint of the case —
    /// a regression that slows convergence shows up here even when the
    /// verdict still matches.
    pub rounds: Vec<(String, u64)>,
}

/// Replay every `*.toml` spec in a corpus directory through the
/// differential checker, returning a [`ReplayOutcome`] per file.  Used by
/// CI to keep previously minimized failures fixed.
pub fn replay_corpus(dir: &Path) -> Result<Vec<ReplayOutcome>, SpecError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| SpecError::new(format!("cannot read corpus dir {dir:?}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    entries.sort();
    let mut out = Vec::with_capacity(entries.len());
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError::new(format!("cannot read {path:?}: {e}")))?;
        let spec = Scenario::from_toml_str(&text)
            .map_err(|e| SpecError::new(format!("{}: {e}", path.display())))?;
        let report = run_scenario(&spec)?;
        out.push(ReplayOutcome {
            path,
            expectation_met: report.expectation_met(),
            rounds: report
                .runs
                .iter()
                .map(|run| {
                    (
                        run.engine.clone(),
                        run.phases.iter().map(|p| p.rounds).sum(),
                    )
                })
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgebraSpec, ChangeSpec, EngineKind, Expectation, PhaseSpec, SppGadget};

    #[test]
    fn spec_size_orders_reductions() {
        let big = scenario_case(1);
        let mut smaller = big.clone();
        smaller.phases.truncate(1);
        assert!(spec_size(&smaller) < spec_size(&big) || big.phases.len() == 1);
    }

    #[test]
    fn shrinking_respects_a_synthetic_predicate() {
        // "Fails" iff the topology is a ring with n >= 6: the shrinker must
        // halve n down to the boundary without ever accepting a passing
        // candidate.
        let spec = Scenario {
            name: "t-shrink".into(),
            description: String::new(),
            topology: TopologySpec::Ring { n: 24 },
            algebra: AlgebraSpec::Hopcount { limit: 16 },
            engines: vec![EngineKind::Sync, EngineKind::Delta, EngineKind::Sim],
            seeds: vec![1, 2, 3],
            phases: vec![
                PhaseSpec::quiet("a"),
                PhaseSpec {
                    label: "b".into(),
                    changes: vec![
                        ChangeSpec::FailLink { a: 0, b: 1 },
                        ChangeSpec::SetLink { a: 0, b: 1 },
                    ],
                    faults: FaultSpec::adversarial(),
                },
            ],
            expect: Expectation::default(),
        };
        let fails = |s: &Scenario| {
            s.validate().is_ok() && matches!(s.topology, TopologySpec::Ring { n } if n >= 6)
        };
        let (min, steps) = shrink_scenario(&spec, &fails);
        assert!(steps > 0, "the shrinker must make progress");
        assert!(fails(&min), "the minimized spec still fails");
        assert_eq!(min.phases.len(), 1, "irrelevant phases are dropped");
        assert_eq!(min.seeds.len(), 1, "irrelevant seeds are dropped");
        assert_eq!(min.engines.len(), 1, "irrelevant engines are dropped");
        let TopologySpec::Ring { n } = min.topology else {
            panic!("the failing family is kept");
        };
        assert!(
            (6..=11).contains(&n),
            "n halves toward the boundary, got {n}"
        );
    }

    #[test]
    fn shrinking_a_real_checker_failure_produces_a_smaller_failing_spec() {
        // The SPP BAD GADGET is the catalogue's deliberately non-increasing
        // algebra: it oscillates forever, so the fuzz invariant (converge +
        // agree) genuinely fails on it.  Wrap it in noise and let the
        // shrinker strip the noise away.  (The event simulator is left out:
        // on a never-converging spec every sim evaluation runs to its event
        // cap, which makes shrink evaluations needlessly slow.)
        let bad = Scenario {
            name: "t-bad-gadget-noisy".into(),
            description: "deliberately failing fuzz-style case".into(),
            topology: TopologySpec::Gadget,
            algebra: AlgebraSpec::Spp {
                gadget: SppGadget::Bad,
            },
            engines: vec![EngineKind::Sync, EngineKind::Delta],
            seeds: vec![1, 2, 3, 4],
            phases: vec![
                PhaseSpec::quiet("one"),
                PhaseSpec::quiet("two"),
                PhaseSpec {
                    label: "three".into(),
                    changes: Vec::new(),
                    faults: FaultSpec {
                        horizon: 150,
                        ..FaultSpec::adversarial()
                    },
                },
            ],
            expect: Expectation::default(),
        };
        assert!(
            violates_invariant(&bad),
            "the bad gadget must fail the oracle"
        );
        let (min, steps) = shrink_scenario(&bad, &violates_invariant);
        assert!(steps > 0);
        assert!(violates_invariant(&min), "the minimized spec still fails");
        assert!(
            spec_size(&min) < spec_size(&bad),
            "minimized ({}) must be smaller than original ({})",
            spec_size(&min),
            spec_size(&bad)
        );
        assert_eq!(min.phases.len(), 1, "two of three phases are noise");
        assert_eq!(min.seeds.len(), 1, "three of four seeds are noise");
        // The minimized spec round-trips, so it can be written to a corpus
        // file and replayed with `scenarios run`.
        let back = Scenario::from_toml_str(&min.to_toml_string()).unwrap();
        assert_eq!(min, back);
    }

    #[test]
    fn invalid_candidates_never_count_as_failing() {
        let mut s = scenario_case(5);
        s.topology = TopologySpec::Gadget; // invalid with a non-SPP algebra
        assert!(!violates_invariant(&s));
    }
}
